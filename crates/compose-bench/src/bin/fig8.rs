//! **Figure 8**: log10(time in ms) to compose each model with every other
//! model, 187-model corpus, in ascending size order (size = nodes + edges).
//!
//! The paper composes every ordered pair starting from
//! (smallest, smallest) up to (largest, largest) and reports per-pair
//! composition time; the observed complexity is O(nm).
//!
//! Usage: `cargo run --release -p compose-bench --bin fig8 [--quick]`
//! (`--quick` strides the pair grid 7× for a fast smoke run.)
//!
//! Output: `results/fig8.csv` with one row per composed pair.

use compose_bench::{correlation, log10_ms, stats, time_median, write_csv};
use sbml_compose::Composer;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let stride = if quick { 7 } else { 1 };

    eprintln!("generating the 187-model corpus ...");
    let corpus = biomodels_corpus::corpus_187();
    let sizes: Vec<usize> = corpus.iter().map(|m| m.size()).collect();
    let composer = Composer::default();

    let mut rows = Vec::new();
    let mut nm_series = Vec::new();
    let mut time_series = Vec::new();
    let total = (corpus.len() / stride) * (corpus.len() / stride);
    eprintln!("composing ~{total} ordered pairs (stride {stride}) ...");

    let started = std::time::Instant::now();
    let mut pair_index = 0usize;
    for i in (0..corpus.len()).step_by(stride) {
        for j in (0..corpus.len()).step_by(stride) {
            let (a, b) = (&corpus[i], &corpus[j]);
            // Fast pairs are repeated for a stable median; slow ones once.
            let runs = if sizes[i] + sizes[j] < 100 { 5 } else { 1 };
            let secs = time_median(runs, || {
                std::hint::black_box(composer.compose(a, b));
            });
            let nm = (sizes[i].max(1) * sizes[j].max(1)) as f64;
            rows.push(format!(
                "{pair_index},{i},{j},{},{},{nm},{:.6},{:.4}",
                sizes[i],
                sizes[j],
                secs * 1e3,
                log10_ms(secs)
            ));
            nm_series.push(nm);
            time_series.push(secs);
            pair_index += 1;
        }
        if i % 21 == 0 {
            eprintln!(
                "  outer model {i:3} (size {:3}) done, elapsed {:.1}s",
                sizes[i],
                started.elapsed().as_secs_f64()
            );
        }
    }

    let path = write_csv(
        "fig8.csv",
        "pair,i,j,size_i,size_j,nm,time_ms,log10_time_ms",
        &rows,
    );

    // Summary: the paper's claim is O(nm) growth.
    let t = stats(&time_series.iter().map(|s| s * 1e3).collect::<Vec<_>>());
    let r_nm = correlation(&nm_series, &time_series);
    let log_nm: Vec<f64> = nm_series.iter().map(|v| v.log10()).collect();
    let log_t: Vec<f64> = time_series.iter().map(|s| log10_ms(*s)).collect();
    let r_log = correlation(&log_nm, &log_t);

    println!("Figure 8 — all-pairs composition over the 187-model corpus");
    println!("  pairs composed      : {pair_index}");
    println!("  time per pair (ms)  : min {:.4}  median {:.4}  mean {:.4}  max {:.3}", t.min, t.median, t.mean, t.max);
    println!("  corr(time, n*m)     : {r_nm:.3}");
    println!("  corr(log t, log nm) : {r_log:.3}   (≈1 ⇒ power-law in n·m, the paper's O(nm))");
    println!("  series written to   : {}", path.display());
}
