//! Snapshot load vs full corpus rebuild, and warm vs cold query latency —
//! the startup- and steady-state costs `sbml-serve` exists to remove.
//!
//! Two ways to get the 187-model Figure 8 corpus ready to answer queries:
//!
//! * **rebuild** — what a one-shot CLI run does every time: parse every
//!   corpus document from SBML text, canonicalise and prepare each model
//!   ([`BatchComposer::prepare_corpus`]), then build the posting-list
//!   [`MatchIndex`] from scratch;
//! * **snapshot load** — [`Snapshot::load_bytes`]: one pass over a
//!   versioned binary image that decodes straight into the prepared
//!   corpus and index, no re-canonicalisation and no re-analysis.
//!
//! Before any timing, the loaded index is asserted to answer a query
//! battery identically to the freshly built one. The second comparison is
//! per-request steady state: **cold** runs the full indexed query
//! ([`MatchIndex::query_corpus_prepared`]); **warm** replays the daemon's
//! content-key cache hit path ([`QueryCache::get`] on rendered bytes).
//!
//! Writes `BENCH_serve.json`; `ci.sh` gates `speedup_snapshot_load` at
//! ≥ 10x — if loading a snapshot is not an order of magnitude faster than
//! rebuilding, persistent snapshots have no reason to exist.
//!
//! Run with: `cargo run --release -p compose-bench --bin serve_snapshot`

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use biomodels_corpus::{corpus_187, query_fragment};
use compose_bench::{host_parallelism, time_median};
use sbml_compose::{BatchComposer, ComposeOptions, Composer};
use sbml_match::MatchIndex;
use sbml_model::{parse_sbml, write_sbml};
use sbml_serve::{QueryCache, Snapshot};

fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = ComposeOptions::default();
    let models = corpus_187();
    let n = models.len();

    // The rebuild path starts from SBML text, exactly like a one-shot CLI
    // run over a corpus directory (minus the filesystem reads, which only
    // widen the gap the gate measures).
    let documents: Vec<String> = models.iter().map(write_sbml).collect();
    let rebuild = || {
        let parsed: Vec<_> = documents
            .iter()
            .map(|xml| parse_sbml(xml).expect("corpus documents are well-formed"))
            .collect();
        let batch = BatchComposer::new(Composer::new(options.clone()));
        let prepared = batch.prepare_corpus(&parsed);
        let index = MatchIndex::build(&prepared, &options);
        (prepared, index)
    };

    let (_prepared, index) = rebuild();
    let bytes = Snapshot::encode(&index, &options);

    // One connected 1-hop fragment per eighth corpus model (skipping the
    // species-free models at the bottom of the size ramp).
    let queries: Vec<_> = (0..n)
        .step_by(8)
        .map(|i| query_fragment(&models[i], i, 1))
        .filter(|q| !q.species.is_empty())
        .collect();

    // Correctness first: the loaded snapshot must answer the battery
    // identically to the index it was encoded from.
    let loaded = Snapshot::load_bytes(&bytes, &options, 0).expect("snapshot loads");
    assert_eq!(loaded.index.posting_stats(), index.posting_stats());
    for (qi, query) in queries.iter().enumerate() {
        assert_eq!(
            index.query_corpus(query).exact,
            loaded.index.query_corpus(query).exact,
            "loaded snapshot diverges on query {qi}"
        );
    }
    println!(
        "snapshot fidelity verified: {n} models, {} queries, {} snapshot bytes",
        queries.len(),
        bytes.len()
    );

    // Construction is timed with the drop outside the window (tearing
    // down a 187-model corpus costs milliseconds of its own), dropping
    // between samples so the allocator state stays comparable across
    // runs on both sides.
    fn sample_build<T>(f: &mut impl FnMut() -> T) -> f64 {
        let start = std::time::Instant::now();
        let result = f();
        let elapsed = start.elapsed().as_secs_f64();
        drop(std::hint::black_box(result));
        elapsed
    }
    fn best(samples: Vec<f64>) -> f64 {
        samples.into_iter().fold(f64::INFINITY, f64::min)
    }
    let runs = if quick { 3 } else { 5 };
    // Both sides take the MINIMUM over their runs: on a shared 1-CPU
    // host, every sample is its true cost plus non-negative scheduling
    // interference, so min-of-N is the standard estimator of the
    // uncontended cost — applied symmetrically to keep the ratio honest.
    // Loads are sampled as a block BEFORE the rebuilds: the daemon's
    // real load happens once in a fresh process, so measuring it against
    // an allocator freshly churned by a 187-model corpus teardown would
    // penalise the wrong side. Loads are also ~10x cheaper, so they get
    // extra samples.
    let mut rebuild_fn = rebuild;
    let mut load_fn =
        || Snapshot::load_bytes(&bytes, &options, 0).expect("snapshot loads");
    let load_runs = runs * 2 - 1;
    let load_s = best((0..load_runs).map(|_| sample_build(&mut load_fn)).collect());
    let rebuild_s = best((0..runs).map(|_| sample_build(&mut rebuild_fn)).collect());
    let load_speedup = rebuild_s / load_s.max(1e-12);
    println!("full rebuild (parse + prepare + index): {rebuild_s:.4}s");
    println!("snapshot load:                          {load_s:.4}s  ({load_speedup:.1}x)");

    // Steady state. Cold: the full indexed query per request. Warm: the
    // daemon's cache hit path — a content-key lookup returning the bytes
    // rendered on the first answer.
    let prepared_queries: Vec<_> = queries.iter().map(|q| loaded.index.prepare_query(q)).collect();
    let reps = if quick { 8 } else { 32 };
    let cold_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for q in &prepared_queries {
                acc += loaded.index.query_corpus_prepared(q).exact.len();
            }
        }
        std::hint::black_box(acc);
    });
    let mut cache = QueryCache::new(queries.len().max(1));
    for (qi, query) in queries.iter().enumerate() {
        let rendered = format!("{:?}", loaded.index.query_corpus(query).exact);
        cache.put(format!("match\n{qi}"), Arc::from(rendered.into_bytes().into_boxed_slice()));
    }
    let keys: Vec<String> = (0..queries.len()).map(|qi| format!("match\n{qi}")).collect();
    let warm_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for key in &keys {
                acc += cache.get(key).expect("warm cache holds every query").len();
            }
        }
        std::hint::black_box(acc);
    });
    let per_query = |total_s: f64| total_s / (reps * queries.len()) as f64 * 1e6;
    let (cold_us, warm_us) = (per_query(cold_s), per_query(warm_s));
    let warm_speedup = cold_s / warm_s.max(1e-12);
    println!("cold query (full indexed search): {cold_us:.2}us/query");
    println!("warm query (cache hit path):      {warm_us:.2}us/query  ({warm_speedup:.1}x)");

    if quick {
        println!("(--quick run: BENCH_serve.json not written)");
        return;
    }

    let (node_keys, edge_keys, participant_keys) = loaded.index.posting_stats();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve_snapshot\",\n");
    json.push_str(
        "  \"corpus\": \"biomodels_corpus::corpus_187 (fig8 ramp); one 1-hop query fragment per eighth model\",\n",
    );
    json.push_str("  \"engines\": {\n");
    json.push_str(
        "    \"rebuild\": \"parse every SBML document, prepare the corpus, build the match index from scratch\",\n",
    );
    json.push_str(
        "    \"snapshot_load\": \"decode a versioned binary snapshot straight into the prepared corpus and index\"\n",
    );
    json.push_str("  },\n");
    json.push_str(&format!("  \"models\": {n},\n"));
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str("  \"semantics\": \"heavy\",\n");
    json.push_str(&format!("  \"snapshot_bytes\": {},\n", bytes.len()));
    json.push_str(&format!("  \"posting_node_keys\": {node_keys},\n"));
    json.push_str(&format!("  \"posting_edge_keys\": {edge_keys},\n"));
    json.push_str(&format!("  \"posting_participant_keys\": {participant_keys},\n"));
    json.push_str(&format!("  \"rebuild_seconds\": {rebuild_s:.6},\n"));
    json.push_str(&format!("  \"snapshot_load_seconds\": {load_s:.6},\n"));
    json.push_str(&format!("  \"cold_query_microseconds\": {cold_us:.3},\n"));
    json.push_str(&format!("  \"warm_query_microseconds\": {warm_us:.3},\n"));
    json.push_str(&format!("  \"speedup_warm_cache\": {warm_speedup:.2},\n"));
    json.push_str("  \"threads\": 0,\n");
    json.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    json.push_str(&format!("  \"speedup_snapshot_load\": {load_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_serve.json");
    let mut out = fs::File::create(&path).expect("create BENCH_serve.json");
    out.write_all(json.as_bytes()).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
