//! Figure 8 at batch scale: the all-pairs composition of the 187-model
//! corpus, run the way the seed API forces it (every pair re-derives both
//! models' analysis from scratch) versus the prepared-model API (each
//! model analysed once, the preparation shared — `Arc` — across all of
//! its 186 pairs, optionally fanned out over worker threads).
//!
//! The two serial engines are timed **interleaved by corpus row** (row
//! `i` = pairs `(i, i+1..n)`): each row is measured for the baseline and
//! then for the prepared engine, so slow machine-speed drift over the
//! minutes-long run hits both engines equally instead of whichever ran
//! second.
//!
//! Writes `BENCH_fig8.json` at the workspace root; `ci.sh` gates on the
//! recorded prepared-reuse speedup. Run with:
//! `cargo run --release -p compose-bench --bin all_pairs [--quick]`
//! (`--quick` restricts the corpus to the first 60 models for a smoke
//! run — the JSON is only written for the full corpus).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sbml_compose::{BatchComposer, ComposeOptions, Composer};
use sbml_model::Model;

/// Workspace root (grandparent of this crate's manifest dir).
fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let corpus: Vec<Model> =
        if quick { biomodels_corpus::corpus_slice(0..60) } else { biomodels_corpus::corpus_187() };
    let n = corpus.len();
    let pair_count = n * (n - 1) / 2;
    let composer = Composer::new(ComposeOptions::default());
    println!("all-pairs composition — {n} models, {pair_count} unordered pairs");

    // Prepared once, shared across every pair (and charged to the
    // prepared engine's wall time below).
    let serial = BatchComposer::new(composer.clone()).with_threads(1);
    let prepare_started = Instant::now();
    let prepared = serial.prepare_corpus(&corpus);
    let prepare_seconds = prepare_started.elapsed().as_secs_f64();

    // Row-interleaved serial comparison: baseline (per-pair recompute,
    // the seed behaviour) vs prepared reuse over identical pair rows.
    let mut baseline_seconds = 0.0;
    let mut prepared_seconds = prepare_seconds;
    let mut baseline_components = 0usize;
    let mut prepared_components = 0usize;
    for i in 0..n {
        let t0 = Instant::now();
        for j in i + 1..n {
            let result = composer.compose(&corpus[i], &corpus[j]);
            baseline_components += result.model.component_count();
        }
        baseline_seconds += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for j in i + 1..n {
            let result = composer.compose_prepared(&prepared[i], &prepared[j]);
            prepared_components += result.model.component_count();
        }
        prepared_seconds += t0.elapsed().as_secs_f64();
    }
    println!("  per-pair recompute (seed) : {baseline_seconds:>9.3}s");
    println!(
        "  prepared, shared, serial  : {prepared_seconds:>9.3}s  (of which prepare: {prepare_seconds:.3}s)"
    );

    // The same workload through BatchComposer's thread-per-shard fan-out
    // (auto thread count); on a single-core host this tracks the serial
    // number, on multi-core hosts it divides by the worker count.
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let fanned = BatchComposer::new(composer.clone());
    let started = Instant::now();
    let prepared_threaded = fanned.prepare_corpus(&corpus);
    let summaries = fanned.all_pairs(&prepared_threaded);
    let threaded_seconds = started.elapsed().as_secs_f64();
    println!("  BatchComposer, {threads} worker(s): {threaded_seconds:>9.3}s");

    // The engines must agree: identical per-pair component totals between
    // baseline, serial prepared and the batch fan-out.
    assert_eq!(
        baseline_components, prepared_components,
        "prepared all-pairs diverged from the per-pair recompute baseline"
    );
    let batch_components: usize = summaries.iter().map(|s| s.components).sum();
    assert_eq!(baseline_components, batch_components, "batch fan-out diverged");

    let reuse_speedup = baseline_seconds / prepared_seconds.max(1e-12);
    let threaded_speedup = baseline_seconds / threaded_seconds.max(1e-12);
    println!(
        "  speedup: {reuse_speedup:.2}x from prepared reuse, {threaded_speedup:.2}x with fan-out"
    );

    if quick {
        println!("(--quick run: BENCH_fig8.json not written)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        compose_bench::host_parallelism()
    ));
    json.push_str("  \"benchmark\": \"fig8_all_pairs\",\n");
    json.push_str("  \"corpus\": \"biomodels_corpus::corpus_187 (deterministic synthetic)\",\n");
    json.push_str(&format!("  \"models\": {n},\n"));
    json.push_str(&format!("  \"pairs\": {pair_count},\n"));
    json.push_str("  \"engines\": {\n");
    json.push_str("    \"baseline\": \"Composer::compose per pair: both models' keys, indexes and initial values re-derived for every pair (seed behaviour)\",\n");
    json.push_str("    \"prepared\": \"Composer::compose_prepared over Arc<PreparedModel>: each model analysed once, preparation shared across all of its pairs (timed row-interleaved with the baseline)\",\n");
    json.push_str("    \"batch\": \"BatchComposer::all_pairs: same prepared engine behind the thread-per-shard fan-out\"\n");
    json.push_str("  },\n");
    json.push_str(&format!("  \"baseline_seconds\": {baseline_seconds:.6},\n"));
    json.push_str(&format!("  \"prepare_seconds\": {prepare_seconds:.6},\n"));
    json.push_str(&format!("  \"prepared_seconds\": {prepared_seconds:.6},\n"));
    json.push_str(&format!("  \"batch_threaded_seconds\": {threaded_seconds:.6},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"speedup_threaded\": {threaded_speedup:.2},\n"));
    json.push_str(&format!("  \"speedup_prepared_reuse\": {reuse_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_fig8.json");
    let mut out = fs::File::create(&path).expect("create BENCH_fig8.json");
    out.write_all(json.as_bytes()).expect("write BENCH_fig8.json");
    println!("\nwrote {}", path.display());
}
