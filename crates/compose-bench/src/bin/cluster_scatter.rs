//! Scatter-gather costs of the cluster at the 10k-model **scale tier**:
//! what does a client pay for going through `sbml-cluster`'s coordinator
//! and shard daemons instead of one process?
//!
//! Two questions, both over loopback TCP with result caches off (every
//! request pays the full scatter):
//!
//! * **query latency, 1 vs 4 shard daemons** — the same 24-fragment
//!   battery as `index_scale`, sent as `MATCH` frames through a
//!   coordinator fronting 1 and then 4 shard daemons. Before timing,
//!   every answer at both widths is asserted byte-identical to a
//!   single-process daemon over the same corpus. The gate demands the
//!   4-shard cluster stays within 1.5x of the 1-shard cluster: the
//!   scatter fans out concurrently, so fan-out overhead must not eat
//!   the partitioning.
//! * **incremental `UPSERT` vs rebuild** — absorbing a 100-model batch
//!   through the coordinator (parse, prepare, route, evict) versus the
//!   non-cluster alternative: re-preparing the corpus and rebuilding
//!   the whole 10k index. Preparation is *included* on the rebuild side
//!   because the `UPSERT` side cannot exclude it — each frame carries
//!   SBML XML the daemon must parse and prepare; comparing against a
//!   rebuild over already-prepared models would time unequal pipelines.
//!   The gate demands >= 10x — the entire point of serving writes
//!   through the cluster instead of re-snapshotting.
//!
//! Writes `BENCH_cluster.json`; `ci.sh` gates
//! `latency_ratio_cluster_4_vs_1` at <= 1.5 and `speedup_cluster_upsert`
//! at >= 10.
//!
//! Run with: `cargo run --release -p compose-bench --bin cluster_scatter`
//! (`--quick` shrinks the tier and skips the JSON).

use std::fs;
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Instant;

use biomodels_corpus::{corpus_scale, query_fragment, scale_model};
use compose_bench::host_parallelism;
use sbml_cluster::{carve_all, Coordinator, CoordinatorConfig};
use sbml_compose::{BatchComposer, ComposeOptions, Composer};
use sbml_match::MatchIndex;
use sbml_model::{write_sbml, Model};
use sbml_serve::{Client, Request, Response, Server, ServerConfig};

fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn best(samples: Vec<f64>) -> f64 {
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

/// A live cluster: shard daemons plus a coordinator, caches off.
struct Cluster {
    coordinator: SocketAddr,
    daemons: Vec<SocketAddr>,
    handles: Vec<thread::JoinHandle<()>>,
}

fn spawn_cluster(index: &MatchIndex, options: &ComposeOptions) -> Cluster {
    let carved = carve_all(index, options, 0).expect("carve every shard");
    let mut daemons = Vec::new();
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for (local, identity) in carved {
        let config = ServerConfig { cache_capacity: 0, ..ServerConfig::default() };
        let server = Server::bind_shard("127.0.0.1:0", local, options.clone(), config, identity)
            .expect("bind shard daemon");
        daemons.push(server.local_addr());
        addrs.push(server.local_addr().to_string());
        handles.push(thread::spawn(move || {
            let _ = server.run();
        }));
    }
    let config = CoordinatorConfig { cache_capacity: 0, ..CoordinatorConfig::default() };
    let coordinator = Coordinator::bind("127.0.0.1:0", &addrs, config).expect("bind coordinator");
    let addr = coordinator.local_addr();
    handles.push(thread::spawn(move || {
        let _ = coordinator.run();
    }));
    Cluster { coordinator: addr, daemons, handles }
}

fn shutdown(cluster: Cluster) {
    for addr in std::iter::once(cluster.coordinator).chain(cluster.daemons) {
        if let Ok(mut client) = Client::connect(addr) {
            let _ = client.roundtrip(&Request::Shutdown);
        }
    }
    for handle in cluster.handles {
        let _ = handle.join();
    }
}

fn roundtrip_all(addr: SocketAddr, frames: &[Request]) -> Vec<Vec<u8>> {
    let mut client = Client::connect(addr).expect("connect");
    frames.iter().map(|r| client.roundtrip_raw(r).expect("roundtrip")).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = ComposeOptions::default();
    let (top, runs, upserts) = if quick { (1000, 3, 25) } else { (10_000, 5, 100) };

    let t0 = Instant::now();
    let mut models = corpus_scale(top);
    models.extend((top..top + upserts).map(scale_model));
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    println!("prepared {} models in {:.2}s", prepared.len(), t0.elapsed().as_secs_f64());

    let queries: Vec<Model> = (0..24)
        .map(|qi| {
            let i = qi * (top / 24).max(1);
            query_fragment(&models[i], i, 1)
        })
        .filter(|q| !q.species.is_empty())
        .collect();
    let battery: Vec<Request> =
        queries.iter().map(|q| Request::Match { query_xml: write_sbml(q) }).collect();

    // --- correctness before any timing: both cluster widths answer the
    // battery byte-identically to a single-process daemon.
    let single = Server::bind(
        "127.0.0.1:0",
        MatchIndex::build_sharded(&prepared[..top], &options, 0, 1),
        options.clone(),
        ServerConfig { cache_capacity: 0, ..ServerConfig::default() },
    )
    .expect("bind single-process daemon");
    let single_addr = single.local_addr();
    let single_handle = thread::spawn(move || {
        let _ = single.run();
    });
    let reference = roundtrip_all(single_addr, &battery);
    if let Ok(mut client) = Client::connect(single_addr) {
        let _ = client.roundtrip(&Request::Shutdown);
    }
    let _ = single_handle.join();

    let mut latency = Vec::new();
    for shards in [1usize, 4] {
        let index = MatchIndex::build_sharded(&prepared[..top], &options, 0, shards);
        let cluster = spawn_cluster(&index, &options);
        let answers = roundtrip_all(cluster.coordinator, &battery);
        assert_eq!(
            answers, reference,
            "{shards}-shard cluster answers diverge from the single process"
        );
        let mut client = Client::connect(cluster.coordinator).expect("connect");
        let seconds = best(
            (0..runs)
                .map(|_| {
                    let start = Instant::now();
                    for request in &battery {
                        std::hint::black_box(
                            client.roundtrip_raw(request).expect("timed roundtrip"),
                        );
                    }
                    start.elapsed().as_secs_f64()
                })
                .collect(),
        );
        let us = seconds / battery.len() as f64 * 1e6;
        println!("MATCH latency through {shards} shard daemon(s): {us:.1}us/query");
        latency.push((shards, us));
        shutdown(cluster);
    }
    let ratio = latency[1].1 / latency[0].1.max(1e-12);
    println!("4-shard vs 1-shard cluster latency ratio: {ratio:.2} (gate: <= 1.5)");

    // --- incremental UPSERT through the coordinator vs full rebuild.
    // The rebuild starts from source models (prepare + build), matching
    // the UPSERT pipeline, which prepares every arriving document too.
    let rebuild_runs = runs.min(3);
    let rebuild_s = best(
        (0..rebuild_runs)
            .map(|_| {
                let start = Instant::now();
                let fresh =
                    BatchComposer::new(Composer::new(options.clone())).prepare_corpus(&models[..top]);
                let index = MatchIndex::build_sharded(&fresh, &options, 0, 4);
                let elapsed = start.elapsed().as_secs_f64();
                drop(std::hint::black_box(index));
                elapsed
            })
            .collect(),
    );
    let index = MatchIndex::build_sharded(&prepared[..top], &options, 0, 4);
    let cluster = spawn_cluster(&index, &options);
    let mut client = Client::connect(cluster.coordinator).expect("connect");
    let frames: Vec<Request> = models[top..top + upserts]
        .iter()
        .map(|m| Request::Upsert { model_xml: write_sbml(m), slot: None })
        .collect();
    let start = Instant::now();
    for request in &frames {
        match client.roundtrip(request).expect("upsert roundtrip") {
            Response::Ok { code: 0, .. } => {}
            other => panic!("UPSERT failed: {other:?}"),
        }
    }
    let upsert_s = start.elapsed().as_secs_f64();
    shutdown(cluster);
    let upsert_speedup = rebuild_s / upsert_s.max(1e-12);
    let upsert_us = upsert_s / upserts as f64 * 1e6;
    println!("full rebuild ({top} models, prepare + 4-shard build): {rebuild_s:.4}s");
    println!(
        "coordinator UPSERT ({upserts}-model batch): {upsert_s:.4}s  \
         ({upsert_us:.0}us/model, {upsert_speedup:.0}x cheaper than rebuild)"
    );

    if quick {
        println!("(--quick run: BENCH_cluster.json not written)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"cluster_scatter\",\n");
    json.push_str(
        "  \"corpus\": \"biomodels_corpus::corpus_scale; 24 1-hop query fragments as MATCH frames over loopback TCP, caches off\",\n",
    );
    json.push_str("  \"engines\": {\n");
    json.push_str(
        "    \"cluster\": \"sbml-cluster coordinator scatter-gathering shard daemons (Server::bind_shard)\",\n",
    );
    json.push_str(
        "    \"rebuild\": \"prepare_corpus + MatchIndex::build_sharded from source models (UPSERT also pays parse+prepare per frame)\"\n",
    );
    json.push_str("  },\n");
    json.push_str(&format!("  \"models\": {top},\n"));
    json.push_str(&format!("  \"queries\": {},\n", battery.len()));
    json.push_str(&format!("  \"upsert_batch_models\": {upserts},\n"));
    json.push_str("  \"match_microseconds_by_shards\": {\n");
    json.push_str(
        &latency
            .iter()
            .map(|(k, us)| format!("    \"{k}\": {us:.3}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str("\n  },\n");
    json.push_str(&format!("  \"rebuild_seconds\": {rebuild_s:.6},\n"));
    json.push_str(&format!("  \"upsert_batch_seconds\": {upsert_s:.6},\n"));
    json.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    json.push_str(&format!("  \"latency_ratio_cluster_4_vs_1\": {ratio:.3},\n"));
    json.push_str(&format!("  \"speedup_cluster_upsert\": {upsert_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_cluster.json");
    let mut out = fs::File::create(&path).expect("create BENCH_cluster.json");
    out.write_all(json.as_bytes()).expect("write BENCH_cluster.json");
    println!("wrote {}", path.display());
}
