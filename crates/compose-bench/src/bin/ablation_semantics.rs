//! **Semantics-level ablation** (the paper's §5): "We plan on reducing the
//! semantic reliability of the current SBML method to only require light
//! semantics ... This comparison can be further extended by creating a
//! generic method that requires no semantics."
//!
//! Composes corpus pairs under heavy / light / no semantics and reports
//! both cost (time) and matching power (how many of the second model's
//! species were recognised as shared). Also runs the fully generic
//! label-graph composition from `bio-graph` as the no-SBML-at-all extreme.
//!
//! Usage: `cargo run --release -p compose-bench --bin ablation_semantics`
//! Output: `results/ablation_semantics.csv`.

use bio_graph::{compose as graph_compose, species_reaction_graph, LightSemantics, NoSemantics};
use compose_bench::{time_median, write_csv};
use sbml_compose::{ComposeOptions, Composer};

fn main() {
    let corpus = biomodels_corpus::corpus_187();
    // Overlapping neighbour pairs across the size range.
    let picks = [10usize, 40, 80, 120, 150, 180];

    let engines = [
        ("heavy", ComposeOptions::heavy()),
        ("light", ComposeOptions::light()),
        ("none", ComposeOptions::none()),
    ];

    let mut rows = Vec::new();
    println!(
        "{:>5} {:>5}  {:>10} {:>8}  {:>10} {:>8}  {:>10} {:>8}  {:>10}",
        "sizeA", "sizeB", "heavy_ms", "shared", "light_ms", "shared", "none_ms", "shared", "graph_ms"
    );
    for &i in &picks {
        let a = &corpus[i];
        let b = &corpus[i - 1];
        let mut cols: Vec<(f64, usize)> = Vec::new();
        for (_, opts) in &engines {
            let composer = Composer::new(opts.clone());
            let secs = time_median(5, || {
                std::hint::black_box(composer.compose(a, b));
            });
            let result = composer.compose(a, b);
            // Matching power: species of b recognised as already present.
            let shared = a.species.len() + b.species.len() - result.model.species.len();
            cols.push((secs * 1e3, shared));
        }
        // Generic graph composition (no SBML semantics at all).
        let (ga, gb) = (species_reaction_graph(a), species_reaction_graph(b));
        let g_light = LightSemantics::with_builtins();
        let graph_secs = time_median(5, || {
            std::hint::black_box(graph_compose(&ga, &gb, &g_light));
        });
        let _ = graph_compose(&ga, &gb, &NoSemantics); // exercise both matchers

        println!(
            "{:>5} {:>5}  {:>10.4} {:>8}  {:>10.4} {:>8}  {:>10.4} {:>8}  {:>10.4}",
            a.size(),
            b.size(),
            cols[0].0,
            cols[0].1,
            cols[1].0,
            cols[1].1,
            cols[2].0,
            cols[2].1,
            graph_secs * 1e3
        );
        rows.push(format!(
            "{},{},{:.6},{},{:.6},{},{:.6},{},{:.6}",
            a.size(),
            b.size(),
            cols[0].0,
            cols[0].1,
            cols[1].0,
            cols[1].1,
            cols[2].0,
            cols[2].1,
            graph_secs * 1e3
        ));
    }
    let path = write_csv(
        "ablation_semantics.csv",
        "size_a,size_b,heavy_ms,heavy_shared,light_ms,light_shared,none_ms,none_shared,graph_ms",
        &rows,
    );
    println!("series written to {}", path.display());

    // ------------------------------------------------------------------
    // Matching power on synonym-divergent twins: the same pathway curated
    // independently (ids prefixed, names replaced by synonyms, commutative
    // operands reversed). Heavy semantics should recover full sharing;
    // id-based matching should recover none.
    // ------------------------------------------------------------------
    println!("\nsynonym-divergent twins (matching power):");
    println!(
        "{:>8} {:>9} {:>14} {:>14} {:>14}",
        "model", "species", "heavy_shared", "light_shared", "none_shared"
    );
    let mut twin_rows = Vec::new();
    for &i in &[20usize, 60, 100, 140] {
        let a = &corpus[i];
        let b = biomodels_corpus::synonym_variant(a);
        let mut shared_counts = Vec::new();
        for (_, opts) in &engines {
            let composer = Composer::new(opts.clone());
            let result = composer.compose(a, &b);
            let shared = a.species.len() + b.species.len() - result.model.species.len();
            shared_counts.push(shared);
        }
        println!(
            "{:>8} {:>9} {:>14} {:>14} {:>14}",
            i,
            a.species.len(),
            shared_counts[0],
            shared_counts[1],
            shared_counts[2]
        );
        twin_rows.push(format!(
            "{},{},{},{},{}",
            i, a.species.len(), shared_counts[0], shared_counts[1], shared_counts[2]
        ));
    }
    let twin_path = write_csv(
        "ablation_semantics_twins.csv",
        "model,species,heavy_shared,light_shared,none_shared",
        &twin_rows,
    );
    println!("series written to {}", twin_path.display());
}
