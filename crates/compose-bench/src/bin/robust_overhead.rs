//! Guard-rail overhead: what fault containment and budget governance
//! cost on the fast path.
//!
//! The robustness layer promises that `push_guarded` with an unlimited
//! [`Meter`] is bit-for-bit identical to `push` — and close to free. This
//! binary times both entry points over the same corpus chain and writes
//! `BENCH_robust.json` at the workspace root; `ci.sh` gates
//! `guard_overhead_pct` at ≤ 5%.
//!
//! Run with: `cargo run --release -p compose-bench --bin robust_overhead`
//!
//! [`Meter`]: sbml_compose::guard::Meter

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use compose_bench::time_median_interleaved;
use sbml_compose::guard::Budget;
use sbml_compose::{ComposeOptions, CompositionSession};
use sbml_model::Model;

const CHAIN_LENGTH: usize = 64;
const RUNS: usize = 7;

/// Workspace root (grandparent of this crate's manifest dir).
fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_plain(options: &ComposeOptions, chain: &[Model]) -> Model {
    let mut session = CompositionSession::new(options);
    for m in chain {
        session.push(m);
    }
    session.finish().model
}

fn run_guarded(options: &ComposeOptions, chain: &[Model]) -> Model {
    let budget = Budget::unlimited();
    let meter = budget.start();
    let mut session = CompositionSession::new(options);
    for m in chain {
        session.push_guarded(m, Some(&meter)).expect("unlimited budget never fails");
    }
    session.finish().model
}

fn main() {
    let corpus = biomodels_corpus::corpus_187();
    // Ascending size order, starts with empty models: skip ahead so every
    // push does real merge work.
    let chain: Vec<Model> = corpus.iter().skip(30).take(CHAIN_LENGTH).cloned().collect();
    let options = ComposeOptions::default();

    // The guarantee the overhead number is only meaningful under.
    let plain = run_plain(&options, &chain);
    let guarded = run_guarded(&options, &chain);
    assert_eq!(plain, guarded, "guarded output diverged from plain push");

    // Interleaved rounds: on a loaded single-CPU host, sampling all plain
    // runs before all guarded runs lets scheduling drift masquerade as
    // guard overhead (or hide it).
    let (plain_seconds, guarded_seconds) = time_median_interleaved(
        RUNS,
        || {
            std::hint::black_box(run_plain(&options, &chain));
        },
        || {
            std::hint::black_box(run_guarded(&options, &chain));
        },
    );
    let overhead_pct = (guarded_seconds / plain_seconds.max(1e-12) - 1.0) * 100.0;

    println!("guard overhead — push vs push_guarded(unlimited meter), length-{CHAIN_LENGTH} chain");
    println!("  plain   : {plain_seconds:.6} s");
    println!("  guarded : {guarded_seconds:.6} s");
    println!("  overhead: {overhead_pct:.2} %");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        compose_bench::host_parallelism()
    ));
    json.push_str("  \"benchmark\": \"robust_overhead\",\n");
    json.push_str("  \"corpus\": \"biomodels_corpus::corpus_187 (deterministic synthetic)\",\n");
    json.push_str(&format!("  \"chain_length\": {CHAIN_LENGTH},\n"));
    json.push_str("  \"engines\": {\n");
    json.push_str("    \"plain\": \"CompositionSession::push — no containment, no metering\",\n");
    json.push_str("    \"guarded\": \"CompositionSession::push_guarded with an unlimited Meter: per-push step charge + deadline check + degradation-ladder plumbing\"\n");
    json.push_str("  },\n");
    json.push_str(&format!("  \"plain_seconds\": {plain_seconds:.6},\n"));
    json.push_str(&format!("  \"guarded_seconds\": {guarded_seconds:.6},\n"));
    json.push_str(&format!("  \"guard_overhead_pct\": {overhead_pct:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_robust.json");
    let mut out = fs::File::create(&path).expect("create BENCH_robust.json");
    out.write_all(json.as_bytes()).expect("write BENCH_robust.json");
    println!("\nwrote {}", path.display());
}
