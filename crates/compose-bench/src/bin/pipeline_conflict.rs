//! Conflict-heavy composition: pipelined merge passes + incremental
//! mapped-key renaming vs the serial/full-recompute engine.
//!
//! The workload is [`biomodels_corpus::corpus_conflict`]: every push
//! renames every shared parameter (value conflicts) and maps every alias
//! species by name, so the in-flight mapping table is hot from the
//! species pass onwards and **every** math-bearing component must
//! revalidate its cached content key under live mappings. That isolates
//! exactly the two costs this PR removes:
//!
//! * the **serial** engine (`merge_pipeline=false`,
//!   `incremental_key_rename=false`) runs the Fig. 4 passes strictly in
//!   order and rebuilds each dirty key by full re-canonicalisation of the
//!   formula (the pre-PR behaviour);
//! * the **pipelined** engine (the default path, pinned to
//!   `pipeline_threads = 4`) executes the passes as a dependency DAG on
//!   scoped workers and revalidates dirty keys by incremental rename of
//!   the cached canonical text (O(touched leaves), dirty commutative
//!   groups only). `pipeline_threads` is an upper bound — the engine caps
//!   workers at the host's parallelism, so on a single-core host the DAG
//!   executes its cost-priority schedule on the calling thread and the
//!   gate is carried by the rename path; on multicore hosts the two
//!   compound.
//!
//! The gated metric is the **chain** composition of the whole corpus
//! (one `compose_many_prepared` session — the shape where per-push merge
//! cost, not per-pair base adoption, dominates); the all-pairs sweep is
//! reported alongside. Both engines share one prepared corpus
//! (pipeline/key-rename knobs are fingerprint-neutral) and are asserted
//! bit-for-bit identical before any timing. Writes `BENCH_pipeline.json`
//! at the workspace root with the pinned `threads` and the
//! `host_parallelism` it actually ran under; `ci.sh` gates the chain
//! speedup at ≥ 1.5x.
//!
//! Run with: `cargo run --release -p compose-bench --bin pipeline_conflict`

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use biomodels_corpus::corpus_conflict;
use compose_bench::time_median;
use sbml_compose::{compose_many_prepared, ComposeOptions, Composer, PreparedModel};

/// Models in the conflict corpus.
const MODELS: usize = 12;
/// Pipeline worker threads the pipelined engine is pinned to (upper
/// bound; capped at host parallelism by the engine).
const THREADS: usize = 4;

fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn chain(composer: &Composer, prepared: &[Arc<PreparedModel>]) -> usize {
    compose_many_prepared(composer, prepared.iter().map(Arc::as_ref)).model.species.len()
}

fn pairs(composer: &Composer, prepared: &[Arc<PreparedModel>]) -> usize {
    let mut acc = 0usize;
    for i in 0..prepared.len() {
        for j in (i + 1)..prepared.len() {
            acc += composer.compose_prepared(&prepared[i], &prepared[j]).model.species.len();
        }
    }
    acc
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let models = corpus_conflict(if quick { 5 } else { MODELS });
    let n = models.len();

    // Shared analysis fingerprint: the two engines differ only in
    // execution-detail knobs, so one prepared corpus serves both.
    let serial_options = ComposeOptions::default()
        .with_parallel_push_threshold(0)
        .with_merge_pipeline(false)
        .with_incremental_key_rename(false);
    let pipelined_options = ComposeOptions::default()
        .with_parallel_push_threshold(0)
        .with_pipeline_threads(THREADS);
    assert_eq!(serial_options.fingerprint(), pipelined_options.fingerprint());

    let serial = Composer::new(serial_options);
    let pipelined = Composer::new(pipelined_options);
    let prepared: Vec<Arc<PreparedModel>> =
        models.iter().map(|m| Arc::new(serial.prepare(m))).collect();

    // Bit-for-bit identity before any timing: the full chain and a few
    // representative pairs.
    {
        let a = compose_many_prepared(&serial, prepared.iter().map(Arc::as_ref));
        let b = compose_many_prepared(&pipelined, prepared.iter().map(Arc::as_ref));
        assert_eq!(a.model, b.model, "chain model diverged");
        assert_eq!(a.log.events, b.log.events, "chain log diverged");
        assert_eq!(a.mappings, b.mappings, "chain mappings diverged");
        for (i, j) in [(0usize, 1usize), (0, n - 1), (n / 2, n / 2 + 1)] {
            let a = serial.compose_prepared(&prepared[i], &prepared[j]);
            let b = pipelined.compose_prepared(&prepared[i], &prepared[j]);
            assert_eq!(a.model, b.model, "pair ({i},{j}) diverged");
            assert_eq!(a.log.events, b.log.events, "pair ({i},{j}) log diverged");
            assert_eq!(a.mappings, b.mappings, "pair ({i},{j}) mappings diverged");
        }
    }

    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "conflict corpus: {n} models, {} keyed components each; host parallelism {host_parallelism}, pipeline threads {THREADS}",
        models[0].species.len()
            + models[0].reactions.len()
            + models[0].rules.len()
            + models[0].constraints.len()
            + models[0].events.len()
            + models[0].function_definitions.len()
            + models[0].compartments.len(),
    );

    let runs = if quick { 3 } else { 5 };
    let chain_serial = time_median(runs, || {
        std::hint::black_box(chain(&serial, &prepared));
    });
    let chain_pipelined = time_median(runs, || {
        std::hint::black_box(chain(&pipelined, &prepared));
    });
    let chain_speedup = chain_serial / chain_pipelined.max(1e-12);
    println!(
        "chain ({n} pushes):   serial {chain_serial:.4}s  pipelined {chain_pipelined:.4}s  speedup {chain_speedup:.2}x"
    );

    let pair_runs = if quick { 1 } else { 3 };
    let pairs_serial = time_median(pair_runs, || {
        std::hint::black_box(pairs(&serial, &prepared));
    });
    let pairs_pipelined = time_median(pair_runs, || {
        std::hint::black_box(pairs(&pipelined, &prepared));
    });
    let pairs_speedup = pairs_serial / pairs_pipelined.max(1e-12);
    println!(
        "all-pairs ({} pairs): serial {pairs_serial:.4}s  pipelined {pairs_pipelined:.4}s  speedup {pairs_speedup:.2}x",
        n * (n - 1) / 2
    );

    if quick {
        println!("(--quick run: BENCH_pipeline.json not written)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"pipeline_conflict\",\n");
    json.push_str(
        "  \"corpus\": \"biomodels_corpus::corpus_conflict (deterministic; every push renames every shared parameter and maps every alias species by name)\",\n",
    );
    json.push_str(&format!("  \"models\": {n},\n"));
    json.push_str("  \"engines\": {\n");
    json.push_str(
        "    \"serial\": \"merge_pipeline=false, incremental_key_rename=false: Fig. 4 passes strictly in order, dirty cached keys rebuilt by full re-canonicalisation (pre-PR behaviour)\",\n",
    );
    json.push_str(
        "    \"pipelined\": \"merge-pass dependency DAG (pipeline_threads=4, capped at host parallelism) + cached keys revalidated by incremental rename of canonical text (dirty commutative groups only)\"\n",
    );
    json.push_str("  },\n");
    json.push_str(&format!("  \"threads\": {THREADS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!("  \"chain_serial_seconds\": {chain_serial:.6},\n"));
    json.push_str(&format!("  \"chain_pipelined_seconds\": {chain_pipelined:.6},\n"));
    json.push_str(&format!("  \"pairs_serial_seconds\": {pairs_serial:.6},\n"));
    json.push_str(&format!("  \"pairs_pipelined_seconds\": {pairs_pipelined:.6},\n"));
    json.push_str(&format!("  \"speedup_pairs\": {pairs_speedup:.2},\n"));
    json.push_str(&format!("  \"speedup_pipelined_vs_serial\": {chain_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_pipeline.json");
    let mut out = fs::File::create(&path).expect("create BENCH_pipeline.json");
    out.write_all(json.as_bytes()).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
