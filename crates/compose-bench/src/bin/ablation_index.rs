//! **Index-structure ablation** (the paper's future-work item 7): does the
//! lookup index take composition from O(nm) to O(n+m)?
//!
//! Composes same-size model pairs of growing size under three index
//! structures: hash map (the paper's implementation), B-tree, and a
//! deliberate linear scan (no index). The linear scan exhibits the O(nm)
//! growth the paper measured; the hash map grows ~linearly in n+m.
//!
//! Usage: `cargo run --release -p compose-bench --bin ablation_index`
//! Output: `results/ablation_index.csv`.

use compose_bench::{time_median, write_csv};
use sbml_compose::{ComposeOptions, Composer, IndexKind};

fn main() {
    let corpus = biomodels_corpus::corpus_187();
    // Pick models spanning the size range; pair each with its neighbour.
    let picks = [20usize, 60, 100, 130, 155, 170, 180, 186];
    let kinds =
        [("hashmap", IndexKind::HashMap), ("btree", IndexKind::BTree), ("linear", IndexKind::LinearScan)];

    let mut rows = Vec::new();
    println!("index ablation over {} size points", picks.len());
    println!("{:>6} {:>6} {:>12} {:>12} {:>12}", "size_a", "size_b", "hashmap_ms", "btree_ms", "linear_ms");
    for &i in &picks {
        let a = &corpus[i];
        let b = &corpus[i - 1];
        let mut cells = Vec::new();
        for (_, kind) in kinds {
            let composer = Composer::new(ComposeOptions::default().with_index(kind));
            let secs = time_median(5, || {
                std::hint::black_box(composer.compose(a, b));
            });
            cells.push(secs * 1e3);
        }
        println!(
            "{:>6} {:>6} {:>12.4} {:>12.4} {:>12.4}",
            a.size(),
            b.size(),
            cells[0],
            cells[1],
            cells[2]
        );
        rows.push(format!(
            "{},{},{:.6},{:.6},{:.6}",
            a.size(),
            b.size(),
            cells[0],
            cells[1],
            cells[2]
        ));
    }
    let path = write_csv("ablation_index.csv", "size_a,size_b,hashmap_ms,btree_ms,linear_ms", &rows);
    println!("series written to {}", path.display());
}
