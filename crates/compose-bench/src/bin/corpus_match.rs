//! Corpus matching: indexed candidate generation vs naïve per-model VF2
//! over the 187-model Figure 8 corpus.
//!
//! The workload is the corpus-search question the matching subsystem
//! exists for: "which corpus models contain this pathway fragment?" for a
//! deterministic battery of query fragments
//! ([`biomodels_corpus::query_fragment`], one per fourth corpus model).
//! Two engines answer it:
//!
//! * **naïve** — [`MatchIndex::naive_hits`]: run the VF2 refiner against
//!   every one of the 187 models, no pruning (the per-model subgraph
//!   search a system without an index would do);
//! * **indexed** — posting-list candidate generation
//!   ([`MatchIndex::candidates`]: intersect the node-key and edge-key
//!   postings) followed by VF2 refinement of the survivors only
//!   ([`MatchIndex::query_corpus`], pinned to one thread so the gate
//!   measures the index, not the fan-out).
//!
//! Before any timing, the indexed exact hit set is asserted equal to the
//! naïve hit set for **every query under every semantics level** — the
//! acceptance property of the subsystem. Writes `BENCH_match.json` with
//! corpus size, query count, per-query candidate statistics, thread
//! configuration and host parallelism; `ci.sh` gates
//! `speedup_candidate_generation` (pure candidate generation vs the full
//! naïve scan) at ≥ 5x and the end-to-end `speedup_query_vs_naive` is
//! reported alongside.
//!
//! Run with: `cargo run --release -p compose-bench --bin corpus_match`

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use biomodels_corpus::{corpus_187, query_fragment};
use compose_bench::{host_parallelism, time_median};
use sbml_compose::{BatchComposer, ComposeOptions, Composer};
use sbml_match::MatchIndex;
use sbml_model::Model;

fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn build_index(models: &[Model], options: &ComposeOptions, threads: usize) -> MatchIndex {
    let batch = BatchComposer::new(Composer::new(options.clone())).with_threads(threads);
    MatchIndex::build_with_threads(&batch.prepare_corpus(models), options, threads)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let models = corpus_187();
    let n = models.len();

    // One connected 1-hop fragment per fourth corpus model (skipping the
    // species-free models at the bottom of the size ramp).
    let queries: Vec<Model> = (0..n)
        .step_by(4)
        .map(|i| query_fragment(&models[i], i, 1))
        .filter(|q| !q.species.is_empty())
        .collect();

    // Correctness first: indexed exact hits ≡ naïve hits for every query
    // under every semantics level (the subsystem's acceptance property).
    for options in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()] {
        let index = build_index(&models, &options, 0);
        for (qi, query) in queries.iter().enumerate() {
            let naive = index.naive_hits(query);
            let exact: Vec<usize> =
                index.query_corpus(query).exact.iter().map(|h| h.model).collect();
            assert_eq!(
                exact, naive,
                "hit-set divergence on query {qi} under {:?}",
                options.semantics
            );
            let candidates = index.candidates(query);
            assert!(
                naive.iter().all(|h| candidates.contains(h)),
                "candidate pruning dropped a hit on query {qi} under {:?}",
                options.semantics
            );
        }
    }
    println!("hit-set equivalence verified: {} queries x 3 semantics levels", queries.len());

    // Timing runs under the default (heavy) semantics, single-threaded so
    // the gate isolates the index from the fan-out. Queries are prepared
    // once up front ([`MatchIndex::prepare_query`]) — both engines consume
    // the identical prepared artefact, so the comparison is pure
    // scan-vs-index.
    let options = ComposeOptions::default();
    let index = build_index(&models, &options, 1);
    let prepared_queries: Vec<_> = queries.iter().map(|q| index.prepare_query(q)).collect();
    let (node_keys, edge_keys, participant_keys) = index.posting_stats();
    let candidate_total: usize =
        prepared_queries.iter().map(|q| index.candidates_prepared(q).len()).sum();
    let hit_total: usize =
        prepared_queries.iter().map(|q| index.naive_hits_prepared(q).len()).sum();
    println!(
        "corpus {n} models; {} queries; postings: {node_keys} node keys, {edge_keys} edge keys, \
         {participant_keys} participant keys; {candidate_total} candidates, {hit_total} hits",
        queries.len()
    );

    // Each timed sample sweeps the whole query battery REPS times so the
    // sample is milliseconds, not timer noise; REPS cancels out of every
    // reported speedup.
    let reps = if quick { 8 } else { 32 };
    let runs = if quick { 3 } else { 5 };
    let naive_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for q in &prepared_queries {
                acc += index.naive_hits_prepared(q).len();
            }
        }
        std::hint::black_box(acc);
    });
    let candgen_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for q in &prepared_queries {
                acc += index.candidates_prepared(q).len();
            }
        }
        std::hint::black_box(acc);
    });
    let query_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for q in &prepared_queries {
                acc += index.query_corpus_prepared(q).exact.len();
            }
        }
        std::hint::black_box(acc);
    });
    let threaded_index = build_index(&models, &options, 0);
    let query_threaded_s = time_median(runs, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            for q in &prepared_queries {
                acc += threaded_index.query_corpus_prepared(q).exact.len();
            }
        }
        std::hint::black_box(acc);
    });

    let candgen_speedup = naive_s / candgen_s.max(1e-12);
    let query_speedup = naive_s / query_s.max(1e-12);
    println!("naive per-model VF2:      {naive_s:.4}s");
    println!("candidate generation:     {candgen_s:.4}s  ({candgen_speedup:.1}x vs naive)");
    println!("indexed query (1 thread): {query_s:.4}s  ({query_speedup:.1}x vs naive)");
    println!("indexed query (threads):  {query_threaded_s:.4}s");

    if quick {
        println!("(--quick run: BENCH_match.json not written)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"corpus_match\",\n");
    json.push_str(
        "  \"corpus\": \"biomodels_corpus::corpus_187 (fig8 ramp); one 1-hop query fragment per fourth model\",\n",
    );
    json.push_str("  \"engines\": {\n");
    json.push_str(
        "    \"naive\": \"VF2 subgraph search against every corpus model, no pruning\",\n",
    );
    json.push_str(
        "    \"indexed\": \"posting-list intersection (node keys + edge keys) to candidates, then VF2 on survivors only\"\n",
    );
    json.push_str("  },\n");
    json.push_str(&format!("  \"models\": {n},\n"));
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str(&format!("  \"semantics\": \"heavy\",\n"));
    json.push_str(&format!("  \"posting_node_keys\": {node_keys},\n"));
    json.push_str(&format!("  \"posting_edge_keys\": {edge_keys},\n"));
    json.push_str(&format!("  \"posting_participant_keys\": {participant_keys},\n"));
    json.push_str(&format!("  \"candidates_total\": {candidate_total},\n"));
    json.push_str(&format!(
        "  \"candidates_mean\": {:.2},\n",
        candidate_total as f64 / queries.len() as f64
    ));
    json.push_str(&format!("  \"exact_hits_total\": {hit_total},\n"));
    json.push_str("  \"threads\": 1,\n");
    json.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    json.push_str(&format!("  \"naive_seconds\": {naive_s:.6},\n"));
    json.push_str(&format!("  \"candidate_generation_seconds\": {candgen_s:.6},\n"));
    json.push_str(&format!("  \"indexed_query_seconds\": {query_s:.6},\n"));
    json.push_str(&format!(
        "  \"indexed_query_threaded_seconds\": {query_threaded_s:.6},\n"
    ));
    json.push_str(&format!("  \"speedup_query_vs_naive\": {query_speedup:.2},\n"));
    json.push_str(&format!("  \"speedup_candidate_generation\": {candgen_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_match.json");
    let mut out = fs::File::create(&path).expect("create BENCH_match.json");
    out.write_all(json.as_bytes()).expect("write BENCH_match.json");
    println!("wrote {}", path.display());
}
