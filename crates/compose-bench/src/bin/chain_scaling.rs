//! Chain-composition scaling: the workload the incremental
//! [`CompositionSession`] engine exists for.
//!
//! Subnetwork-hierarchy and flux-mode work composes dozens-to-hundreds of
//! subnetworks left-to-right. The paper's pairwise algorithm redoes the
//! whole accumulator every step (clone + index rebuild + content-key
//! recomputation), so an *n*-model chain costs O(n²) accumulator work;
//! the session does each piece once. This binary times both engines on
//! chains of length {2, 8, 32, 128} drawn from the deterministic
//! synthetic corpus and writes `BENCH_chain.json` at the workspace root
//! so every future PR has a perf trajectory to compare against.
//!
//! Run with: `cargo run --release -p compose-bench --bin chain_scaling`
//!
//! [`CompositionSession`]: sbml_compose::session::CompositionSession

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use compose_bench::time_median;
use sbml_compose::{compose_many, compose_many_pairwise, ComposeOptions, Composer};
use sbml_model::Model;

const CHAIN_LENGTHS: [usize; 4] = [2, 8, 32, 128];

/// Workspace root (grandparent of this crate's manifest dir).
fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

struct Row {
    length: usize,
    pairwise_seconds: f64,
    session_seconds: f64,
    merged_components: usize,
    merged_size: usize,
}

fn main() {
    let corpus = biomodels_corpus::corpus_187();
    let composer = Composer::new(ComposeOptions::default());
    println!("chain composition scaling — pairwise fold (seed) vs CompositionSession");
    println!("{:>7} {:>16} {:>16} {:>9} {:>12} {:>10}", "length", "pairwise (s)", "session (s)", "speedup", "components", "size");

    let mut rows = Vec::new();
    for length in CHAIN_LENGTHS {
        // The corpus is in ascending size order and starts with empty
        // models; skip ahead so even the shortest chain has content.
        let chain: Vec<Model> = corpus.iter().skip(30).take(length).cloned().collect();
        // Fewer timing runs for the slow quadratic baseline on long chains.
        let runs = if length >= 32 { 3 } else { 5 };

        let reference = compose_many_pairwise(&composer, &chain);
        let session_result = compose_many(&composer, &chain);
        assert_eq!(
            session_result.model, reference.model,
            "session and pairwise outputs diverged at length {length}"
        );
        assert_eq!(session_result.log.events, reference.log.events);
        assert_eq!(session_result.mappings, reference.mappings);

        let pairwise_seconds = time_median(runs, || {
            std::hint::black_box(compose_many_pairwise(&composer, &chain));
        });
        let session_seconds = time_median(runs, || {
            std::hint::black_box(compose_many(&composer, &chain));
        });

        let row = Row {
            length,
            pairwise_seconds,
            session_seconds,
            merged_components: reference.model.component_count(),
            merged_size: reference.model.size(),
        };
        println!(
            "{:>7} {:>16.6} {:>16.6} {:>8.2}x {:>12} {:>10}",
            row.length,
            row.pairwise_seconds,
            row.session_seconds,
            row.pairwise_seconds / row.session_seconds.max(1e-12),
            row.merged_components,
            row.merged_size,
        );
        rows.push(row);
    }

    let last = rows.last().expect("at least one chain length");
    let final_speedup = last.pairwise_seconds / last.session_seconds.max(1e-12);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        compose_bench::host_parallelism()
    ));
    // Single-threaded measurement; recorded for cross-machine comparability.
    json.push_str("  \"threads\": 1,\n");
    json.push_str("  \"benchmark\": \"chain_scaling\",\n");
    json.push_str("  \"corpus\": \"biomodels_corpus::corpus_187 (deterministic synthetic)\",\n");
    json.push_str("  \"engines\": {\n");
    json.push_str("    \"pairwise\": \"seed compose_many: left fold of Composer::compose, accumulator cloned and re-indexed every step\",\n");
    json.push_str("    \"session\": \"CompositionSession: persistent indexes, cached content keys, zero-clone accumulator\"\n");
    json.push_str("  },\n");
    json.push_str("  \"chains\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"length\": {}, \"pairwise_seconds\": {:.6}, \"session_seconds\": {:.6}, \"speedup\": {:.2}, \"merged_component_count\": {}, \"merged_model_size\": {} }}{}\n",
            row.length,
            row.pairwise_seconds,
            row.session_seconds,
            row.pairwise_seconds / row.session_seconds.max(1e-12),
            row.merged_components,
            row.merged_size,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_at_length_{}\": {:.2}\n",
        last.length, final_speedup
    ));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_chain.json");
    let mut out = fs::File::create(&path).expect("create BENCH_chain.json");
    out.write_all(json.as_bytes()).expect("write BENCH_chain.json");
    println!("\nwrote {}", path.display());
    println!("length-{} chain: session is {final_speedup:.2}x faster than the seed pairwise fold", last.length);
}
