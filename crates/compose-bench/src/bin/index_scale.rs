//! Index construction and query latency at the 10k-model **scale tier** —
//! the costs the incremental, sharded [`MatchIndex`] exists to control.
//!
//! Three questions, all on [`biomodels_corpus::corpus_scale`] (size-skewed,
//! 48 shared-motif families, deterministic per model):
//!
//! * **incremental append vs full rebuild** — a daemon absorbing an
//!   `UPSERT` batch calls [`MatchIndex::insert`] per model; the
//!   alternative is rebuilding the whole index. At the 10k tier, how much
//!   cheaper is appending a 100-model batch than a from-scratch
//!   [`MatchIndex::build_sharded`] over all 10 000 prepared models?
//!   Appends are sampled as *fresh disjoint batches onto the same growing
//!   index* (`scale_model(i)` is independent of corpus size), so each
//!   sample is the true steady-state marginal cost — no index clone, no
//!   allocator warm-up asymmetry.
//! * **query latency vs corpus size** — the same 24-query battery against
//!   1k/2.5k/5k/10k-model indexes: candidate generation must grow with
//!   posting-list hits, not with corpus size.
//! * **query latency vs shard count** — the 10k index partitioned into
//!   1/2/4/8 shards, queried through the same scatter-gather path. Before
//!   timing, every shard count is asserted to return bit-identical exact
//!   hits; the gate then demands latency stays flat-to-sublinear as the
//!   shard count grows (fan-out overhead must not eat the partitioning).
//!
//! Writes `BENCH_scale.json`; `ci.sh` gates `speedup_incremental_append`
//! at ≥ 10x and `latency_ratio_shards_8_vs_1` at ≤ 1.5.
//!
//! Run with: `cargo run --release -p compose-bench --bin index_scale`
//! (`--quick` shrinks every tier and skips the JSON).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use biomodels_corpus::{corpus_scale, query_fragment, scale_model};
use compose_bench::{host_parallelism, time_median};
use sbml_compose::{BatchComposer, ComposeOptions, Composer};
use sbml_match::MatchIndex;
use sbml_model::Model;

fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn best(samples: Vec<f64>) -> f64 {
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = ComposeOptions::default();

    // Corpus-size ramp; the last tier is where the gates measure.
    let tiers: &[usize] = if quick { &[250, 500, 1000] } else { &[1000, 2500, 5000, 10_000] };
    let top = *tiers.last().expect("tier list is non-empty");
    let shard_counts = [1usize, 2, 4, 8];
    let (runs, append_batch) = if quick { (3, 25) } else { (5, 100) };

    // One preparation pass covers every tier (prefixes) plus the fresh
    // models the append samples consume — preparation cost is identical
    // on both sides of the rebuild-vs-append comparison and is excluded
    // from both.
    let extra = runs * append_batch;
    let t0 = Instant::now();
    let mut models = corpus_scale(top);
    models.extend((top..top + extra).map(scale_model));
    let batch = BatchComposer::new(Composer::new(options.clone()));
    let prepared = batch.prepare_corpus(&models);
    assert_eq!(prepared.len(), top + extra, "every scale-tier model survives preparation");
    println!("prepared {} models in {:.2}s", prepared.len(), t0.elapsed().as_secs_f64());

    // 24 connected 1-hop fragments spread across the motif families.
    let queries: Vec<Model> = (0..24)
        .map(|qi| {
            let i = qi * (top / 24).max(1);
            query_fragment(&models[i], i, 1)
        })
        .filter(|q| !q.species.is_empty())
        .collect();

    // --- correctness before any timing: every shard count answers the
    // battery identically at the top tier.
    let reference = MatchIndex::build_sharded(&prepared[..top], &options, 0, 1);
    let baseline: Vec<_> = queries.iter().map(|q| reference.query_corpus(q).exact).collect();
    assert!(
        baseline.iter().any(|hits| !hits.is_empty()),
        "the battery must exercise real posting collisions"
    );
    for &shards in &shard_counts[1..] {
        let index = MatchIndex::build_sharded(&prepared[..top], &options, 0, shards);
        for (qi, query) in queries.iter().enumerate() {
            assert_eq!(
                index.query_corpus(query).exact,
                baseline[qi],
                "query {qi}: {shards}-shard answers diverge from the single shard"
            );
        }
    }
    println!("scatter-gather fidelity verified: {} queries x {:?} shards", queries.len(), shard_counts);

    // --- full rebuild at the top tier: index construction from already
    // prepared models, min-of-N (the standard uncontended-cost estimator
    // on shared CI hosts), applied symmetrically to both sides.
    let rebuild_s = best(
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                let index = MatchIndex::build_sharded(&prepared[..top], &options, 0, 4);
                let elapsed = start.elapsed().as_secs_f64();
                drop(std::hint::black_box(index));
                elapsed
            })
            .collect(),
    );

    // --- incremental append: each sample pushes a fresh disjoint batch
    // of `append_batch` prepared models onto the same live index.
    let mut growing = MatchIndex::build_sharded(&prepared[..top], &options, 0, 4);
    let append_s = best(
        (0..runs)
            .map(|run| {
                let batch = &prepared[top + run * append_batch..top + (run + 1) * append_batch];
                let start = Instant::now();
                for p in batch {
                    std::hint::black_box(growing.insert(Arc::clone(p)));
                }
                start.elapsed().as_secs_f64()
            })
            .collect(),
    );
    assert_eq!(growing.len(), top + extra, "every appended model is live");
    let append_speedup = rebuild_s / append_s.max(1e-12);
    let append_us = append_s / append_batch as f64 * 1e6;
    println!("full rebuild ({top} models, 4 shards): {rebuild_s:.4}s");
    println!(
        "incremental append ({append_batch}-model batch): {append_s:.5}s  \
         ({append_us:.1}us/model, {append_speedup:.0}x cheaper than rebuild)"
    );

    // --- query latency vs corpus size (fixed 4 shards).
    let mut by_models: Vec<(usize, f64)> = Vec::new();
    for &n in tiers {
        let index = MatchIndex::build_sharded(&prepared[..n], &options, 0, 4);
        let pq: Vec<_> = queries.iter().map(|q| index.prepare_query(q)).collect();
        let total = time_median(runs, || {
            let mut acc = 0usize;
            for q in &pq {
                acc += index.query_corpus_prepared(q).exact.len();
            }
            std::hint::black_box(acc);
        });
        let us = total / queries.len() as f64 * 1e6;
        println!("query latency at {n:>6} models: {us:.2}us/query");
        by_models.push((n, us));
    }

    // --- query latency vs shard count at the top tier.
    let mut by_shards: Vec<(usize, f64)> = Vec::new();
    for &shards in &shard_counts {
        let index = MatchIndex::build_sharded(&prepared[..top], &options, 0, shards);
        let pq: Vec<_> = queries.iter().map(|q| index.prepare_query(q)).collect();
        let total = time_median(runs, || {
            let mut acc = 0usize;
            for q in &pq {
                acc += index.query_corpus_prepared(q).exact.len();
            }
            std::hint::black_box(acc);
        });
        let us = total / queries.len() as f64 * 1e6;
        println!("query latency at {shards} shard(s), {top} models: {us:.2}us/query");
        by_shards.push((shards, us));
    }
    let shard_ratio = by_shards.last().expect("shard tiers ran").1
        / by_shards.first().expect("shard tiers ran").1.max(1e-12);
    println!("8-shard vs 1-shard latency ratio: {shard_ratio:.2} (flat-to-sublinear gate: <= 1.5)");

    if quick {
        println!("(--quick run: BENCH_scale.json not written)");
        return;
    }

    let series = |pairs: &[(usize, f64)]| {
        pairs
            .iter()
            .map(|(k, us)| format!("    \"{k}\": {us:.3}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"index_scale\",\n");
    json.push_str(
        "  \"corpus\": \"biomodels_corpus::corpus_scale (size-skewed, 48 shared-motif families); 24 1-hop query fragments\",\n",
    );
    json.push_str("  \"engines\": {\n");
    json.push_str(
        "    \"rebuild\": \"MatchIndex::build_sharded over every prepared model from scratch\",\n",
    );
    json.push_str(
        "    \"incremental_append\": \"MatchIndex::insert per model, fresh disjoint batches onto the live index\"\n",
    );
    json.push_str("  },\n");
    json.push_str(&format!("  \"models\": {top},\n"));
    json.push_str(&format!("  \"queries\": {},\n", queries.len()));
    json.push_str("  \"semantics\": \"heavy\",\n");
    json.push_str(&format!("  \"append_batch_models\": {append_batch},\n"));
    json.push_str(&format!("  \"rebuild_seconds\": {rebuild_s:.6},\n"));
    json.push_str(&format!("  \"append_batch_seconds\": {append_s:.6},\n"));
    json.push_str(&format!("  \"append_per_model_microseconds\": {append_us:.3},\n"));
    json.push_str("  \"query_microseconds_by_models\": {\n");
    json.push_str(&series(&by_models));
    json.push_str("\n  },\n");
    json.push_str("  \"query_microseconds_by_shards\": {\n");
    json.push_str(&series(&by_shards));
    json.push_str("\n  },\n");
    json.push_str(&format!("  \"latency_ratio_shards_8_vs_1\": {shard_ratio:.3},\n"));
    json.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    json.push_str(&format!("  \"speedup_incremental_append\": {append_speedup:.2}\n"));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_scale.json");
    let mut out = fs::File::create(&path).expect("create BENCH_scale.json");
    out.write_all(json.as_bytes()).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}
