//! Long-chain initial-value maintenance: incremental store vs per-push
//! re-collect.
//!
//! Before this scenario's tentpole, every [`CompositionSession`] push
//! re-ran `initial_values::collect` over the *whole accumulator* — the
//! last O(n) per-push cost, so an n-model chain paid O(n²) evaluation
//! work on value-heavy corpora. The incremental store
//! (`IncrementalValues`) seeds once and re-evaluates only each push's
//! dependency closure, making the same chain O(total assignments).
//!
//! This binary times both paths — identical options except for
//! [`ComposeOptions::incremental_initial_values`] — on chains of
//! value-heavy models (many parameters and chained initial assignments,
//! the workload the paper's §3 initial-value collection step exists for)
//! and writes `BENCH_values.json` at the workspace root. `ci.sh` gates
//! the length-128 speedup at ≥ 2x.
//!
//! Run with: `cargo run --release -p compose-bench --bin long_chain_values`
//!
//! [`CompositionSession`]: sbml_compose::session::CompositionSession
//! [`ComposeOptions::incremental_initial_values`]: sbml_compose::ComposeOptions::incremental_initial_values

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use compose_bench::time_median;
use sbml_compose::{compose_many, ComposeOptions, Composer};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

const CHAIN_LENGTHS: [usize; 4] = [2, 8, 32, 128];

/// Parameters + chained initial assignments per chain model.
const VALUES_PER_MODEL: usize = 24;

/// Workspace root (grandparent of this crate's manifest dir).
fn workspace_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent())
        .and_then(|p| p.parent())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Model `i` of the chain: a couple of shared species link neighbours
/// (so merging does real matching work), and `VALUES_PER_MODEL`
/// parameters with chained initial assignments make value collection the
/// dominant per-push cost — each model's assignment chain starts from its
/// own seed parameter, so the accumulator's assignment count grows
/// linearly with chain length.
fn value_heavy_model(i: usize) -> Model {
    let mut b = ModelBuilder::new(format!("m{i}"))
        .compartment("cell", 1.0)
        .species(&format!("S{i}"), i as f64)
        .species(&format!("S{}", i + 1), 0.0)
        .parameter(&format!("seed{i}"), 1.0 + i as f64)
        .reaction(
            &format!("r{i}"),
            &[format!("S{i}").as_str()],
            &[format!("S{}", i + 1).as_str()],
            &format!("seed{i}*S{i}"),
        );
    for j in 0..VALUES_PER_MODEL {
        let id = format!("p{i}_{j}");
        b = b.parameter(&id, 0.0);
        let previous = if j == 0 { format!("seed{i}") } else { format!("p{i}_{}", j - 1) };
        b = b.initial_assignment(&id, &format!("{previous} * 1.0625 + {j}"));
    }
    b.build()
}

struct Row {
    length: usize,
    recollect_seconds: f64,
    incremental_seconds: f64,
    assignments: usize,
}

fn main() {
    let incremental_options = ComposeOptions::default();
    let recollect_options = ComposeOptions::default().with_incremental_initial_values(false);
    let incremental = Composer::new(incremental_options);
    let recollect = Composer::new(recollect_options);

    println!("long-chain initial values — per-push re-collect vs incremental store");
    println!(
        "{:>7} {:>16} {:>16} {:>9} {:>12}",
        "length", "re-collect (s)", "incremental (s)", "speedup", "assignments"
    );

    let mut rows = Vec::new();
    for length in CHAIN_LENGTHS {
        let chain: Vec<Model> = (0..length).map(value_heavy_model).collect();
        let runs = if length >= 32 { 3 } else { 5 };

        let reference = compose_many(&recollect, &chain);
        let candidate = compose_many(&incremental, &chain);
        assert_eq!(
            candidate.model, reference.model,
            "incremental and re-collect outputs diverged at length {length}"
        );
        assert_eq!(candidate.log.events, reference.log.events);
        assert_eq!(candidate.mappings, reference.mappings);

        let recollect_seconds = time_median(runs, || {
            std::hint::black_box(compose_many(&recollect, &chain));
        });
        let incremental_seconds = time_median(runs, || {
            std::hint::black_box(compose_many(&incremental, &chain));
        });

        let row = Row {
            length,
            recollect_seconds,
            incremental_seconds,
            assignments: reference.model.initial_assignments.len(),
        };
        println!(
            "{:>7} {:>16.6} {:>16.6} {:>8.2}x {:>12}",
            row.length,
            row.recollect_seconds,
            row.incremental_seconds,
            row.recollect_seconds / row.incremental_seconds.max(1e-12),
            row.assignments,
        );
        rows.push(row);
    }

    let last = rows.last().expect("at least one chain length");
    let final_speedup = last.recollect_seconds / last.incremental_seconds.max(1e-12);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        compose_bench::host_parallelism()
    ));
    // Single-threaded measurement; recorded for cross-machine comparability.
    json.push_str("  \"threads\": 1,\n");
    json.push_str("  \"benchmark\": \"long_chain_values\",\n");
    json.push_str("  \"corpus\": \"deterministic value-heavy chain models (24 chained initial assignments each)\",\n");
    json.push_str("  \"engines\": {\n");
    json.push_str("    \"recollect\": \"CompositionSession with incremental_initial_values=false: initial_values::collect re-run over the whole accumulator before every push\",\n");
    json.push_str("    \"incremental\": \"CompositionSession default: IncrementalValues store seeded once, each push re-evaluates only its dependency closure\"\n");
    json.push_str("  },\n");
    json.push_str("  \"chains\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"length\": {}, \"recollect_seconds\": {:.6}, \"incremental_seconds\": {:.6}, \"speedup\": {:.2}, \"merged_initial_assignments\": {} }}{}\n",
            row.length,
            row.recollect_seconds,
            row.incremental_seconds,
            row.recollect_seconds / row.incremental_seconds.max(1e-12),
            row.assignments,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_incremental_values_at_length_{}\": {:.2}\n",
        last.length, final_speedup
    ));
    json.push_str("}\n");

    let path = workspace_root().join("BENCH_values.json");
    let mut out = fs::File::create(&path).expect("create BENCH_values.json");
    out.write_all(json.as_bytes()).expect("write BENCH_values.json");
    println!("\nwrote {}", path.display());
    println!(
        "length-{} chain: incremental initial values are {final_speedup:.2}x faster than per-push re-collect",
        last.length
    );
}
