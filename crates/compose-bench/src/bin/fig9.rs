//! **Figure 9**: log10(composition time in ms) for semanticSBML vs
//! SBMLCompose, composing each of the 17 small annotated models with every
//! other, in ascending size order.
//!
//! The paper's finding: "SBMLCompose is at least an order of magnitude
//! faster than semanticSBML, and this is visible even for small models",
//! attributed to the baseline's per-run 54,929-entry database load and its
//! multiple passes over the XML.
//!
//! Usage: `cargo run --release -p compose-bench --bin fig9`
//! Output: `results/fig9.csv`, one row per ordered pair and engine timing.

use compose_bench::{log10_ms, stats, time_median, write_csv};
use sbml_compose::Composer;
use semantic_baseline::SemanticBaseline;

fn main() {
    let mut models = biomodels_corpus::corpus_17();
    models.sort_by_key(|m| m.size());
    let composer = Composer::default();
    let baseline = SemanticBaseline::default();

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut ours_all = Vec::new();
    let mut theirs_all = Vec::new();

    eprintln!("composing {}x{} ordered pairs with both engines ...", models.len(), models.len());
    let mut pair = 0usize;
    for i in 0..models.len() {
        for j in 0..models.len() {
            let (a, b) = (&models[i], &models[j]);
            let ours = time_median(7, || {
                std::hint::black_box(composer.compose(a, b));
            });
            let theirs = time_median(3, || {
                std::hint::black_box(baseline.merge(a, b));
            });
            let speedup = theirs / ours.max(1e-9);
            rows.push(format!(
                "{pair},{i},{j},{},{},{:.6},{:.6},{:.4},{:.4},{:.1}",
                a.size(),
                b.size(),
                ours * 1e3,
                theirs * 1e3,
                log10_ms(ours),
                log10_ms(theirs),
                speedup
            ));
            speedups.push(speedup);
            ours_all.push(ours * 1e3);
            theirs_all.push(theirs * 1e3);
            pair += 1;
        }
        eprintln!("  model {i:2} done");
    }

    let path = write_csv(
        "fig9.csv",
        "pair,i,j,size_i,size_j,sbmlcompose_ms,semanticsbml_ms,log10_sbmlcompose_ms,log10_semanticsbml_ms,speedup",
        &rows,
    );

    let ours = stats(&ours_all);
    let theirs = stats(&theirs_all);
    let sp = stats(&speedups);
    println!("Figure 9 — SBMLCompose vs semanticSBML on the 17-model corpus");
    println!("  pairs composed            : {pair}");
    println!("  SBMLCompose time (ms)     : min {:.4}  median {:.4}  max {:.4}", ours.min, ours.median, ours.max);
    println!("  semanticSBML time (ms)    : min {:.2}  median {:.2}  max {:.2}", theirs.min, theirs.median, theirs.max);
    println!("  speedup (per pair)        : min {:.0}×  median {:.0}×  max {:.0}×", sp.min, sp.median, sp.max);
    println!(
        "  paper's claim             : ≥ 10× — {}",
        if sp.median >= 10.0 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("  series written to         : {}", path.display());
}
