//! Differential oracle for the zero-copy session paths.
//!
//! The copy-on-write base adoption
//! ([`CompositionSession::with_shared_base`], [`Composer::compose_shared`])
//! and the session-lifetime [`WorkerPool`](sbml_compose::WorkerPool)
//! are *execution details*: for
//! every input and every knob setting they must produce output
//! bit-identical to the eager clone-on-adopt path. This module is the
//! shared engine behind that claim — `tests/cow_differential.rs` drives it
//! across the full knob matrix, and the `all_pairs` bench binary reuses
//! its corpus generators so the measured workload is the proven one.
//!
//! The oracle composes the same `(base, pushes)` scenario twice:
//!
//! * **reference** — [`ComposeOptions::adopt_base`] off: adopting the
//!   shared base falls back to the eager path (clone the model, clone the
//!   indexes), the behaviour of every release before the COW refactor;
//! * **candidate** — `adopt_base` on, with a caller-chosen
//!   [`ComposeOptions::pool_threads`]: the copy-on-write path under the
//!   worker pool.
//!
//! and asserts the composed model, the decision log, the ID mappings and
//! the collected initial values are equal. Both runs share one
//! [`PreparedModel`] (the knobs are fingerprint-neutral), so any
//! divergence is attributable to the COW/pool machinery alone.

use std::sync::Arc;

use sbml_compose::{
    Budget, ComposeOptions, ComposeResult, Composer, CompositionSession, InitialValues,
    PreparedModel, SharedModel,
};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

/// How the oracle feeds each push into the session — every entry point a
/// COW session exposes must stay differentially clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushMode {
    /// [`CompositionSession::push`] (raw model; keys computed in-push,
    /// parallel at or above the threshold).
    Raw,
    /// [`CompositionSession::push_prepared`] (precomputed incoming keys;
    /// the pipeline-eligible path).
    Prepared,
    /// [`CompositionSession::push_guarded`] under an unlimited
    /// [`Budget`] (the daemon's entry point).
    Guarded,
}

/// What one differential run observed about the candidate session.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialOutcome {
    /// Whether the candidate's accumulator still shared the base
    /// [`Arc`] when the session finished (true ⇔ every push was absorbed
    /// without mutating the base — Duplicate-only composition).
    pub base_stayed_shared: bool,
}

/// A deterministic base model with `reactions` reaction motifs (each
/// bringing its species, parameter and rate rule along), plus one of
/// every remaining component kind so all twelve merge passes have work.
pub fn base_model(reactions: usize) -> Model {
    let mut b = ModelBuilder::new("base")
        .compartment("cell", 1.0)
        .compartment_type("ct_main")
        .species_type("st_main")
        .function("f_scale", &["x"], "x * 2")
        .initial_assignment("k_total", "k_0 + 1")
        .constraint("S_0 >= 0", Some("conservation"))
        .event("e_reset", "S_0 > 100", &[("S_0", "0")])
        .parameter("k_total", 0.0);
    for i in 0..reactions.max(1) {
        let s_in = format!("S_{i}");
        let s_out = format!("S_{}", i + 1);
        let k = format!("k_{i}");
        b = b
            .species(&s_in, i as f64 + 1.0)
            .species(&s_out, 0.0)
            .parameter(&k, 0.1 * (i as f64 + 1.0))
            .reaction(&format!("r_{i}"), &[s_in.as_str()], &[s_out.as_str()], &format!("{k} * {s_in}"))
            .rate_rule(&format!("S_{}", i + 1), &format!("{k} * {s_in}"))
    }
    b.build()
}

/// A push that is a pure subset of [`base_model`]: every component is a
/// duplicate, so a COW session absorbs it without materialising anything.
pub fn duplicate_push(slice: usize) -> Model {
    let mut b = ModelBuilder::new("dup").compartment("cell", 1.0);
    for i in 0..slice.max(1) {
        let s_in = format!("S_{i}");
        let s_out = format!("S_{}", i + 1);
        let k = format!("k_{i}");
        b = b
            .species(&s_in, i as f64 + 1.0)
            .species(&s_out, 0.0)
            .parameter(&k, 0.1 * (i as f64 + 1.0))
            .reaction(&format!("r_{i}"), &[s_in.as_str()], &[s_out.as_str()], &format!("{k} * {s_in}"));
    }
    b.build()
}

/// A push overlapping [`base_model`] — some duplicates, some fresh
/// components, one initial-amount conflict — so the merge takes every
/// decision branch and the COW session must materialise.
pub fn overlap_push(seed: usize) -> Model {
    let fresh = format!("X_{seed}");
    let fresh_k = format!("q_{seed}");
    ModelBuilder::new(format!("overlap_{seed}"))
        .compartment("cell", 1.0)
        .species("S_0", 1.0) // duplicate of the base's S_0
        .species("S_1", 42.0 + seed as f64) // initial-amount conflict
        .species(&fresh, seed as f64) // fresh
        .parameter(&fresh_k, 0.5)
        .parameter("k_0", 0.1) // duplicate
        .function("f_scale", &["x"], "x * 2") // duplicate function
        .function(&format!("g_{seed}"), &["y"], "y + 1")
        .reaction(
            &format!("rx_{seed}"),
            &[fresh.as_str()],
            &["S_0"],
            &format!("{fresh_k} * {fresh}"),
        )
        .constraint(&format!("{fresh} >= 0"), None)
        .event(&format!("ev_{seed}"), &format!("{fresh} > 10"), &[(fresh.as_str(), "0")])
        .build()
}

/// A small corpus mixing duplicate-heavy and overlap models, for batch
/// and daemon differential runs.
pub fn corpus(n: usize) -> Vec<Model> {
    (0..n)
        .map(|i| match i % 3 {
            0 => base_model(3 + i),
            1 => duplicate_push(2 + i),
            _ => overlap_push(i),
        })
        .collect()
}

fn run_pushes(
    session: &mut CompositionSession<'_>,
    prepared: &[Arc<PreparedModel>],
    mode: PushMode,
) {
    let budget = Budget::unlimited();
    let meter = budget.start();
    for p in prepared {
        match mode {
            PushMode::Raw => session.push(p.model()),
            PushMode::Prepared => session.push_prepared(p),
            PushMode::Guarded => {
                session.push_guarded(p.model(), Some(&meter)).expect("unlimited budget");
            }
        }
    }
}

/// Run one scenario through the clone oracle and the COW candidate and
/// assert bit-identity of model, log, mappings and initial values.
///
/// `options` supplies the knob ablation under test (`adopt_base` and
/// `pool_threads` are overridden per side); `pool_threads` sizes the
/// candidate's worker pool. Panics with a labelled message on any
/// divergence.
pub fn assert_cow_matches_clone(
    options: &ComposeOptions,
    base: &Model,
    pushes: &[Model],
    mode: PushMode,
    pool_threads: usize,
) -> DifferentialOutcome {
    let label = format!(
        "mode={mode:?} pool_threads={pool_threads} semantics={:?} pushes={}",
        options.semantics,
        pushes.len()
    );

    let reference_options = options.clone().with_adopt_base(false);
    let candidate_options =
        options.clone().with_adopt_base(true).with_pool_threads(pool_threads);

    // One preparation serves both sides: the knobs that differ are
    // fingerprint-neutral by contract.
    let composer = Composer::new(options.clone());
    let shared_base = Arc::new(composer.prepare(base));
    let prepared_pushes: Vec<Arc<PreparedModel>> =
        pushes.iter().map(|m| Arc::new(composer.prepare(m))).collect();

    let (reference, reference_values) = {
        let mut session =
            CompositionSession::with_shared_base(&reference_options, Arc::clone(&shared_base));
        assert!(
            !session.is_base_shared(),
            "adopt_base=false must take the eager clone path ({label})"
        );
        run_pushes(&mut session, &prepared_pushes, mode);
        let values = session.current_initial_values();
        (session.finish(), values)
    };

    let mut session =
        CompositionSession::with_shared_base(&candidate_options, Arc::clone(&shared_base));
    run_pushes(&mut session, &prepared_pushes, mode);
    let candidate_values = session.current_initial_values();
    let base_stayed_shared = session.is_base_shared();
    let candidate = session.finish_shared();

    if base_stayed_shared {
        assert!(
            matches!(candidate.model, SharedModel::Base(_)),
            "a still-shared session must finish as SharedModel::Base ({label})"
        );
    }
    assert_eq!(
        candidate.model.as_model(),
        &reference.model,
        "composed model diverged ({label})"
    );
    assert_eq!(
        candidate.log.events, reference.log.events,
        "merge log diverged ({label})"
    );
    assert_eq!(candidate.mappings, reference.mappings, "mappings diverged ({label})");
    assert_eq!(
        candidate_values, reference_values,
        "initial values diverged ({label})"
    );
    DifferentialOutcome { base_stayed_shared }
}

/// The clone-path reference composition of a pair, for callers that need
/// the oracle result itself (e.g. comparing a daemon response).
pub fn reference_compose(options: &ComposeOptions, a: &Model, b: &Model) -> ComposeResult {
    Composer::new(options.clone().with_adopt_base(false)).compose(a, b)
}

/// The reference's collected initial values for a finished model.
pub fn reference_values(options: &ComposeOptions, model: &Model) -> InitialValues {
    let composer = Composer::new(options.clone());
    let prepared = composer.prepare(model);
    prepared.initial_values().clone()
}
