//! Shared harness utilities for regenerating the paper's figures.
//!
//! The binaries in `src/bin/` each regenerate one experimental artefact
//! (CSV series + console summary); the Criterion benches in `benches/`
//! give statistically robust micro-measurements of the same code paths.
//!
//! | artefact | binary | bench |
//! |---|---|---|
//! | Figure 8 (all-pairs scaling, 187 models) | `fig8` | `fig8_pairs` |
//! | Figure 8 batch: prepared reuse vs per-pair recompute (`BENCH_fig8.json`) | `all_pairs` | — |
//! | chain scaling: session vs pairwise fold (`BENCH_chain.json`) | `chain_scaling` | — |
//! | Figure 9 (vs semanticSBML, 17 models) | `fig9` | `fig9_baseline` |
//! | corpus match: indexed vs naive VF2 (`BENCH_match.json`) | `corpus_match` | — |
//! | future-work §5.7 index ablation | `ablation_index` | `ablation_index` |
//! | §5 heavy/light/no semantics ablation | `ablation_semantics` | — |
//! | pattern-cache ablation | — | `ablation_cache` |
//! | Fig. 6 unit conversions | — | `ablation_units` |

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub mod oracle;

/// The host's available parallelism (1 when undetectable). Recorded in
/// every `BENCH_*.json` so perf trajectories are comparable across
/// machines.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Median wall-clock seconds of `runs` executions of `f` (min 1).
pub fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let runs = runs.max(1);
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

/// Median wall-clock seconds for two workloads sampled in interleaved
/// rounds (A then B, order flipped every round). For head-to-head
/// overhead comparisons on a loaded host, block sampling (all A, then
/// all B) lets scheduling drift land entirely on one side; interleaving
/// exposes both workloads to the same load profile.
pub fn time_median_interleaved<A: FnMut(), B: FnMut()>(
    runs: usize,
    mut a: A,
    mut b: B,
) -> (f64, f64) {
    let runs = runs.max(1);
    let mut samples_a = Vec::with_capacity(runs);
    let mut samples_b = Vec::with_capacity(runs);
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    for round in 0..runs {
        if round % 2 == 0 {
            samples_a.push(time(&mut a));
            samples_b.push(time(&mut b));
        } else {
            samples_b.push(time(&mut b));
            samples_a.push(time(&mut a));
        }
    }
    let median = |mut s: Vec<f64>| {
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        s[s.len() / 2]
    };
    (median(samples_a), median(samples_b))
}

/// `log10` of a time in milliseconds, the paper's Figure 8/9 y-axis.
/// Times are clamped below at 1 µs to keep the log finite.
pub fn log10_ms(seconds: f64) -> f64 {
    (seconds * 1e3).max(1e-3).log10()
}

/// The workspace `results/` directory (created on demand). Harness
/// binaries run from the workspace root (`cargo run -p compose-bench`), so
/// a relative `results/` lands next to `Cargo.toml`; if the workspace root
/// is identifiable via `CARGO_MANIFEST_DIR`'s grandparent, prefer that.
pub fn results_dir() -> PathBuf {
    let dir = option_env!("CARGO_MANIFEST_DIR")
        .map(Path::new)
        .and_then(|p| p.parent()) // crates/
        .and_then(|p| p.parent()) // workspace root
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"));
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write a CSV file into `results/`, returning its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut out = fs::File::create(&path).expect("create results CSV");
    writeln!(out, "{header}").expect("write header");
    for row in rows {
        writeln!(out, "{row}").expect("write row");
    }
    path
}

/// Pearson correlation between two equal-length series.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Simple descriptive statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute [`Stats`] of a series (NaN-free input expected).
pub fn stats(series: &[f64]) -> Stats {
    assert!(!series.is_empty());
    let mut sorted = series.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Stats {
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        max: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_positive() {
        let t = time_median(3, || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
        assert!((0.0..1.0).contains(&t));
    }

    #[test]
    fn log10_clamps() {
        assert_eq!(log10_ms(0.0), -3.0);
        assert!((log10_ms(1.0) - 3.0).abs() < 1e-12); // 1 s = 1000 ms
        assert!((log10_ms(0.001) - 0.0).abs() < 1e-12); // 1 ms
    }

    #[test]
    fn correlation_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((correlation(&xs, &anti) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
