//! Property tests for diff/patch/compose:
//! * `apply_patch(a, diff(a, b)) == b` for arbitrary line texts,
//! * edit distance is a metric-ish quantity (zero iff equal, symmetric),
//! * composition keeps every line of both inputs,
//! * SBML canonical comparison is reflexive and order-blind for `listOf*`.

use proptest::prelude::*;
use textdiff::myers::{diff_lines, edit_distance_lines};
use textdiff::patch::{apply_patch, compose_texts};

/// Random short texts over a tiny line alphabet (to force real overlaps).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("alpha"),
            Just("beta"),
            Just("gamma"),
            Just("delta"),
            Just("<species id=\"A\"/>"),
            Just("<reaction id=\"r1\"/>"),
        ],
        0..24,
    )
    .prop_map(|lines| {
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn patch_round_trip(a in text_strategy(), b in text_strategy()) {
        let ops = diff_lines(&a, &b);
        let rebuilt = apply_patch(&a, &ops).expect("diff output must apply to its own base");
        prop_assert_eq!(
            rebuilt.lines().collect::<Vec<_>>(),
            b.lines().collect::<Vec<_>>()
        );
    }

    #[test]
    fn edit_distance_zero_iff_equal(a in text_strategy(), b in text_strategy()) {
        let d = edit_distance_lines(&a, &b);
        let equal_lines = a.lines().eq(b.lines());
        prop_assert_eq!(d == 0, equal_lines);
    }

    #[test]
    fn edit_distance_symmetric(a in text_strategy(), b in text_strategy()) {
        prop_assert_eq!(edit_distance_lines(&a, &b), edit_distance_lines(&b, &a));
    }

    #[test]
    fn compose_keeps_every_line(a in text_strategy(), b in text_strategy()) {
        let composed = compose_texts(&a, &b);
        let composed_lines: Vec<&str> = composed.lines().collect();
        // Union semantics: every distinct line of either input survives.
        for line in a.lines().chain(b.lines()) {
            prop_assert!(composed_lines.contains(&line), "lost line {:?}", line);
        }
    }

    #[test]
    fn compose_with_self_is_identity(a in text_strategy()) {
        prop_assert_eq!(compose_texts(&a, &a), a);
    }

    #[test]
    fn diff_length_bounded(a in text_strategy(), b in text_strategy()) {
        // distance ≤ |a| + |b| (delete all, insert all)
        let d = edit_distance_lines(&a, &b);
        prop_assert!(d <= a.lines().count() + b.lines().count());
    }
}

mod sbml_canonical {
    use proptest::prelude::*;
    use textdiff::sbml_compare::sbml_equivalent;

    /// A model with species in a random order.
    fn shuffled_model(order: &[usize]) -> String {
        let species: Vec<String> = order
            .iter()
            .map(|i| format!("<species id=\"S{i}\" compartment=\"c\" initialAmount=\"{i}\"/>"))
            .collect();
        format!(
            "<model id=\"m\"><listOfSpecies>{}</listOfSpecies></model>",
            species.concat()
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn species_order_never_matters(mut order in proptest::collection::vec(0usize..8, 1..8)) {
            order.sort_unstable();
            order.dedup();
            let sorted = shuffled_model(&order);
            let mut reversed = order.clone();
            reversed.reverse();
            let reversed = shuffled_model(&reversed);
            prop_assert!(sbml_equivalent(&sorted, &reversed).unwrap());
        }

        #[test]
        fn reflexive(order in proptest::collection::vec(0usize..8, 0..8)) {
            let m = shuffled_model(&order);
            prop_assert!(sbml_equivalent(&m, &m).unwrap());
        }

        #[test]
        fn content_change_detected(order in proptest::collection::vec(0usize..8, 1..8)) {
            let m = shuffled_model(&order);
            let tweaked = m.replace("initialAmount=\"0\"", "initialAmount=\"999\"");
            if tweaked != m {
                prop_assert!(!sbml_equivalent(&m, &tweaked).unwrap());
            }
        }
    }
}
