//! Text diff/patch/merge and order-aware SBML textual comparison.
//!
//! The paper grounds model composition in *textual composition* — "the
//! simplest form of composition ... performed by the Unix utilities diff and
//! patch" — and evaluates merge output by textual comparison of SBML
//! (§4.1.1), noting that "for SBML the order of components is relevant in
//! some cases but irrelevant in others".
//!
//! * [`myers`] — Myers' O((N+M)·D) line diff (the algorithm behind `diff`),
//! * [`patch`] — applying and composing edit scripts (the `patch` role),
//! * [`sbml_compare`] — canonical SBML comparison that sorts the
//!   order-irrelevant sections (`listOf*`) while preserving the
//!   order-relevant ones (math, event assignments, piecewise, rule order).

pub mod myers;
pub mod patch;
pub mod sbml_compare;

pub use myers::{diff_lines, DiffOp};
pub use patch::{apply_patch, compose_texts};
pub use sbml_compare::{normalized_sbml, sbml_equivalent, sbml_text_diff};
