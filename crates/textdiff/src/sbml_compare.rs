//! Order-aware textual comparison of SBML documents (paper §4.1.1).
//!
//! "Available XML differencing utilities treated the order of XML components
//! as either important or unimportant. However for SBML the order of
//! components is relevant in some cases but irrelevant in others."
//!
//! This module canonicalises exactly that split:
//!
//! * **order-irrelevant**: children of every `listOf*` container and of
//!   `<model>`/`<sbml>` themselves — these are sets keyed by id-like
//!   attributes, so they are sorted by a stable key;
//! * **order-relevant**: everything inside `<math>` (operand order), event
//!   assignment lists (applied sequentially), `<piecewise>` pieces (first
//!   true wins), rule lists (evaluation order for algebraic systems) — left
//!   untouched.
//!
//! Attribute order is never significant in XML and is sorted everywhere.

use sbml_xml::{Document, Element, Node};

use crate::myers::unified;

/// Containers whose children keep document order.
fn order_relevant(name: &str) -> bool {
    matches!(
        name,
        "math"
            | "apply"
            | "piecewise"
            | "piece"
            | "otherwise"
            | "lambda"
            | "bvar"
            | "listOfEventAssignments"
            | "listOfRules"
            | "trigger"
            | "delay"
            | "notes"
            | "annotation"
            | "message"
    )
}

/// The sort key of an element under an order-irrelevant parent: tag name,
/// then the first identifying attribute, then the full serialized form as a
/// tiebreaker (so equal-id duplicates still sort deterministically).
fn sort_key(e: &Element) -> (String, String, String) {
    let ident = ["id", "species", "symbol", "variable", "kind", "name"]
        .iter()
        .find_map(|k| e.attr(k))
        .unwrap_or("")
        .to_owned();
    (e.name.clone(), ident, sbml_xml::writer::element_to_string(e))
}

/// Canonicalise an SBML element tree for comparison.
pub fn normalize_element(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attrs = e.attrs.clone();
    out.attrs.sort();

    // Normalise children recursively, dropping comments and
    // whitespace-only text (serialization artefacts).
    let mut kids: Vec<Node> = Vec::with_capacity(e.children.len());
    for child in &e.children {
        match child {
            Node::Element(el) => kids.push(Node::Element(normalize_element(el))),
            Node::Text(t) if t.trim().is_empty() => {}
            Node::Text(t) => kids.push(Node::Text(t.trim().to_owned())),
            Node::CData(t) => kids.push(Node::CData(t.clone())),
            Node::Comment(_) => {}
        }
    }
    if !order_relevant(&e.name) {
        kids.sort_by(|a, b| match (a, b) {
            (Node::Element(x), Node::Element(y)) => sort_key(x).cmp(&sort_key(y)),
            (Node::Element(_), _) => std::cmp::Ordering::Greater,
            (_, Node::Element(_)) => std::cmp::Ordering::Less,
            (x, y) => x.as_text().cmp(&y.as_text()),
        });
    }
    out.children = kids;
    out
}

/// Canonical pretty-printed form of an SBML document string.
///
/// Returns an error when the input is not well-formed XML.
pub fn normalized_sbml(text: &str) -> Result<String, sbml_xml::XmlError> {
    let doc = sbml_xml::parse_document(text)?;
    let normal = Document { declaration: None, root: normalize_element(&doc.root) };
    Ok(sbml_xml::write_pretty(&normal))
}

/// Are two SBML documents textually equivalent under SBML ordering rules?
pub fn sbml_equivalent(a: &str, b: &str) -> Result<bool, sbml_xml::XmlError> {
    Ok(normalized_sbml(a)? == normalized_sbml(b)?)
}

/// A unified diff between the canonical forms (empty when equivalent) —
/// the evaluation artefact of the paper's §4.1.1.
pub fn sbml_text_diff(a: &str, b: &str) -> Result<String, sbml_xml::XmlError> {
    let (na, nb) = (normalized_sbml(a)?, normalized_sbml(b)?);
    if na == nb {
        Ok(String::new())
    } else {
        Ok(unified(&na, &nb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_order_is_irrelevant() {
        let a = r#"<model><listOfSpecies><species id="A" compartment="c"/><species id="B" compartment="c"/></listOfSpecies></model>"#;
        let b = r#"<model><listOfSpecies><species id="B" compartment="c"/><species id="A" compartment="c"/></listOfSpecies></model>"#;
        assert!(sbml_equivalent(a, b).unwrap());
    }

    #[test]
    fn attribute_order_is_irrelevant() {
        let a = r#"<model><listOfSpecies><species id="A" compartment="c"/></listOfSpecies></model>"#;
        let b = r#"<model><listOfSpecies><species compartment="c" id="A"/></listOfSpecies></model>"#;
        assert!(sbml_equivalent(a, b).unwrap());
    }

    #[test]
    fn math_operand_order_is_relevant() {
        let a = "<model><listOfRules><assignmentRule variable=\"x\"><math><apply><minus/><ci>a</ci><ci>b</ci></apply></math></assignmentRule></listOfRules></model>";
        let b = "<model><listOfRules><assignmentRule variable=\"x\"><math><apply><minus/><ci>b</ci><ci>a</ci></apply></math></assignmentRule></listOfRules></model>";
        assert!(!sbml_equivalent(a, b).unwrap());
    }

    #[test]
    fn event_assignment_order_is_relevant() {
        let ea = |v: &str, val: &str| {
            format!(
                "<eventAssignment variable=\"{v}\"><math><cn>{val}</cn></math></eventAssignment>"
            )
        };
        let wrap = |inner: &str| {
            format!(
                "<model><listOfEvents><event><trigger><math><true/></math></trigger><listOfEventAssignments>{inner}</listOfEventAssignments></event></listOfEvents></model>"
            )
        };
        let a = wrap(&format!("{}{}", ea("x", "1"), ea("y", "2")));
        let b = wrap(&format!("{}{}", ea("y", "2"), ea("x", "1")));
        assert!(!sbml_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn rule_order_is_relevant() {
        let rule = |v: &str| {
            format!("<assignmentRule variable=\"{v}\"><math><cn>1</cn></math></assignmentRule>")
        };
        let a = format!("<model><listOfRules>{}{}</listOfRules></model>", rule("x"), rule("y"));
        let b = format!("<model><listOfRules>{}{}</listOfRules></model>", rule("y"), rule("x"));
        assert!(!sbml_equivalent(&a, &b).unwrap());
    }

    #[test]
    fn whitespace_and_comments_ignored() {
        let a = "<model>\n  <listOfSpecies>\n    <!-- c -->\n    <species id=\"A\" compartment=\"c\"/>\n  </listOfSpecies>\n</model>";
        let b = r#"<model><listOfSpecies><species id="A" compartment="c"/></listOfSpecies></model>"#;
        assert!(sbml_equivalent(a, b).unwrap());
    }

    #[test]
    fn different_content_detected_with_diff() {
        let a = r#"<model><listOfSpecies><species id="A" compartment="c"/></listOfSpecies></model>"#;
        let b = r#"<model><listOfSpecies><species id="A" compartment="c" initialAmount="5"/></listOfSpecies></model>"#;
        assert!(!sbml_equivalent(a, b).unwrap());
        let d = sbml_text_diff(a, b).unwrap();
        assert!(d.contains("initialAmount"), "{d}");
        assert!(sbml_text_diff(a, a).unwrap().is_empty());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(sbml_equivalent("<model>", "<model/>").is_err());
    }

    #[test]
    fn model_level_composition_through_model_api() {
        // Full circle with the model crate types.
        use sbml_model::builder::ModelBuilder;
        let m1 = ModelBuilder::new("m")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .species("B", 2.0)
            .build();
        let mut m2 = m1.clone();
        m2.species.swap(0, 1);
        let x1 = sbml_model::write_sbml(&m1);
        let x2 = sbml_model::write_sbml(&m2);
        assert_ne!(x1, x2, "raw text differs");
        assert!(sbml_equivalent(&x1, &x2).unwrap(), "canonical form agrees");
    }
}
