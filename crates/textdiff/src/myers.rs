//! Line diff via Longest Common Subsequence (the algorithm family behind
//! Unix `diff`; the paper's references [18, 19]).
//!
//! The implementation trims the common prefix and suffix first (the dominant
//! case when comparing two serializations of similar models) and then runs a
//! classic LCS dynamic program on the remainder. SBML files are a few
//! hundred lines, so the O(n·m) core is comfortably fast; the trim makes the
//! common all-equal case linear.

/// One edit-script operation over line runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Lines present in both sequences.
    Equal {
        /// The common lines.
        lines: Vec<String>,
    },
    /// Lines only in the first (old) sequence.
    Delete {
        /// The removed lines.
        lines: Vec<String>,
    },
    /// Lines only in the second (new) sequence.
    Insert {
        /// The added lines.
        lines: Vec<String>,
    },
}

impl DiffOp {
    /// The lines carried by this op.
    pub fn lines(&self) -> &[String] {
        match self {
            DiffOp::Equal { lines } | DiffOp::Delete { lines } | DiffOp::Insert { lines } => lines,
        }
    }
}

/// Diff two texts line-by-line. Applying the returned script to `a`
/// reproduces `b` (see [`crate::patch::apply_patch`]).
pub fn diff_lines(a: &str, b: &str) -> Vec<DiffOp> {
    let a_lines: Vec<&str> = split_lines(a);
    let b_lines: Vec<&str> = split_lines(b);

    // Trim common prefix.
    let mut prefix = 0;
    while prefix < a_lines.len() && prefix < b_lines.len() && a_lines[prefix] == b_lines[prefix] {
        prefix += 1;
    }
    // Trim common suffix (not overlapping the prefix).
    let mut suffix = 0;
    while suffix < a_lines.len() - prefix
        && suffix < b_lines.len() - prefix
        && a_lines[a_lines.len() - 1 - suffix] == b_lines[b_lines.len() - 1 - suffix]
    {
        suffix += 1;
    }

    let a_mid = &a_lines[prefix..a_lines.len() - suffix];
    let b_mid = &b_lines[prefix..b_lines.len() - suffix];

    let mut ops = Ops::default();
    ops.equal(&a_lines[..prefix]);
    lcs_ops(a_mid, b_mid, &mut ops);
    ops.equal(&a_lines[a_lines.len() - suffix..]);
    ops.0
}

/// Number of differing lines (insertions + deletions) between two texts.
pub fn edit_distance_lines(a: &str, b: &str) -> usize {
    diff_lines(a, b)
        .iter()
        .map(|op| match op {
            DiffOp::Equal { .. } => 0,
            DiffOp::Delete { lines } | DiffOp::Insert { lines } => lines.len(),
        })
        .sum()
}

/// Render a unified-style diff (full context; fine for evaluation reports).
pub fn unified(a: &str, b: &str) -> String {
    let mut out = String::new();
    for op in diff_lines(a, b) {
        let (prefix, lines) = match &op {
            DiffOp::Equal { lines } => (' ', lines),
            DiffOp::Delete { lines } => ('-', lines),
            DiffOp::Insert { lines } => ('+', lines),
        };
        for line in lines {
            out.push(prefix);
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn split_lines(text: &str) -> Vec<&str> {
    if text.is_empty() {
        Vec::new()
    } else {
        text.lines().collect()
    }
}

/// Accumulator that coalesces adjacent ops of the same kind.
#[derive(Default)]
struct Ops(Vec<DiffOp>);

impl Ops {
    fn push_kind(&mut self, lines: &[&str], kind: fn(Vec<String>) -> DiffOp) {
        if lines.is_empty() {
            return;
        }
        let owned: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        let candidate = kind(owned);
        match (self.0.last_mut(), &candidate) {
            (Some(DiffOp::Equal { lines }), DiffOp::Equal { lines: new })
            | (Some(DiffOp::Delete { lines }), DiffOp::Delete { lines: new })
            | (Some(DiffOp::Insert { lines }), DiffOp::Insert { lines: new }) => {
                lines.extend(new.iter().cloned());
            }
            _ => self.0.push(candidate),
        }
    }

    fn equal(&mut self, lines: &[&str]) {
        self.push_kind(lines, |lines| DiffOp::Equal { lines });
    }

    fn delete(&mut self, lines: &[&str]) {
        self.push_kind(lines, |lines| DiffOp::Delete { lines });
    }

    fn insert(&mut self, lines: &[&str]) {
        self.push_kind(lines, |lines| DiffOp::Insert { lines });
    }
}

/// Standard LCS dynamic program with backtracking.
fn lcs_ops(a: &[&str], b: &[&str], ops: &mut Ops) {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        ops.insert(b);
        return;
    }
    if m == 0 {
        ops.delete(a);
        return;
    }
    // dp[i][j] = LCS length of a[i..], b[j..]
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.equal(&a[i..=i]);
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            ops.delete(&a[i..=i]);
            i += 1;
        } else {
            ops.insert(&b[j..=j]);
            j += 1;
        }
    }
    ops.delete(&a[i..]);
    ops.insert(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::apply_patch;

    fn check_round_trip(a: &str, b: &str) {
        let ops = diff_lines(a, b);
        let rebuilt = apply_patch(a, &ops).expect("patch must apply");
        let b_norm: Vec<&str> = b.lines().collect();
        let rebuilt_norm: Vec<&str> = rebuilt.lines().collect();
        assert_eq!(rebuilt_norm, b_norm, "a={a:?} b={b:?} ops={ops:?}");
    }

    #[test]
    fn identical_texts() {
        let ops = diff_lines("x\ny\n", "x\ny\n");
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], DiffOp::Equal { lines } if lines.len() == 2));
    }

    #[test]
    fn simple_insert_delete() {
        check_round_trip("a\nb\nc\n", "a\nc\n");
        check_round_trip("a\nc\n", "a\nb\nc\n");
        check_round_trip("a\nb\n", "b\na\n");
    }

    #[test]
    fn empty_inputs() {
        check_round_trip("", "");
        check_round_trip("", "a\nb\n");
        check_round_trip("a\nb\n", "");
    }

    #[test]
    fn completely_different() {
        check_round_trip("a\nb\nc\n", "x\ny\nz\n");
    }

    #[test]
    fn diff_is_minimal_for_lcs() {
        // LCS of abc / ac is 2, so exactly one delete.
        assert_eq!(edit_distance_lines("a\nb\nc\n", "a\nc\n"), 1);
        assert_eq!(edit_distance_lines("a\nb\nc\n", "a\nb\nc\n"), 0);
        assert_eq!(edit_distance_lines("a\n", "b\n"), 2);
        // Interleaved: LCS(abab, baba) = 3 → distance 2.
        assert_eq!(edit_distance_lines("a\nb\na\nb\n", "b\na\nb\na\n"), 2);
    }

    #[test]
    fn unified_output() {
        let u = unified("a\nb\n", "a\nc\n");
        assert!(u.contains(" a\n"));
        assert!(u.contains("-b\n"));
        assert!(u.contains("+c\n"));
    }

    #[test]
    fn many_round_trips() {
        let cases = [
            ("one\ntwo\nthree\nfour\n", "one\nTWO\nthree\nfour\nfive\n"),
            ("k1\nk2\nk3\n", "k3\nk2\nk1\n"),
            ("x\n", "x\nx\nx\n"),
            ("x\nx\nx\n", "x\n"),
            ("a\nb\na\nb\n", "b\na\nb\na\n"),
            ("common\nold1\ncommon2\n", "common\nnew1\nnew2\ncommon2\n"),
        ];
        for (a, b) in cases {
            check_round_trip(a, b);
            check_round_trip(b, a);
        }
    }

    #[test]
    fn prefix_suffix_trim_correctness() {
        // Shared prefix/suffix with a change in the middle.
        let a = "p1\np2\nmid_a\ns1\ns2\n";
        let b = "p1\np2\nmid_b\ns1\ns2\n";
        let ops = diff_lines(a, b);
        check_round_trip(a, b);
        // prefix equal, delete, insert, suffix equal
        assert_eq!(ops.len(), 4, "{ops:?}");
    }
}
