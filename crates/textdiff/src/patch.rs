//! Applying edit scripts and diff/patch-style textual composition.
//!
//! The paper: "Diff finds the differences between two text files and patch
//! uses those to compose the files ... Patch assigns the first file to be
//! the composed file and makes the changes within it to make it match the
//! other file." [`compose_texts`] is that automated composition.

use crate::myers::{diff_lines, DiffOp};

/// Error applying a patch whose Equal/Delete context does not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchError {
    /// Line number (0-based, in the old text) where matching failed.
    pub at_line: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "patch failed at line {}: {}", self.at_line, self.detail)
    }
}

impl std::error::Error for PatchError {}

/// Apply an edit script produced by [`diff_lines`] to `old`, reproducing
/// the new text. Context (Equal/Delete lines) is verified.
pub fn apply_patch(old: &str, ops: &[DiffOp]) -> Result<String, PatchError> {
    let old_lines: Vec<&str> = if old.is_empty() { Vec::new() } else { old.lines().collect() };
    let mut cursor = 0usize;
    let mut out: Vec<&str> = Vec::with_capacity(old_lines.len());

    for op in ops {
        match op {
            DiffOp::Equal { lines } => {
                for expected in lines {
                    let Some(actual) = old_lines.get(cursor) else {
                        return Err(PatchError {
                            at_line: cursor,
                            detail: format!("expected context {expected:?}, found end of file"),
                        });
                    };
                    if actual != expected {
                        return Err(PatchError {
                            at_line: cursor,
                            detail: format!("expected context {expected:?}, found {actual:?}"),
                        });
                    }
                    out.push(actual);
                    cursor += 1;
                }
            }
            DiffOp::Delete { lines } => {
                for expected in lines {
                    let Some(actual) = old_lines.get(cursor) else {
                        return Err(PatchError {
                            at_line: cursor,
                            detail: format!("expected deletion {expected:?}, found end of file"),
                        });
                    };
                    if actual != expected {
                        return Err(PatchError {
                            at_line: cursor,
                            detail: format!("expected deletion {expected:?}, found {actual:?}"),
                        });
                    }
                    cursor += 1;
                }
            }
            DiffOp::Insert { lines } => {
                out.extend(lines.iter().map(String::as_str));
            }
        }
    }
    if cursor != old_lines.len() {
        return Err(PatchError {
            at_line: cursor,
            detail: format!("{} unconsumed trailing line(s)", old_lines.len() - cursor),
        });
    }
    let mut text = out.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    Ok(text)
}

/// Automated diff/patch composition of two texts, as described in the
/// paper's "textual composition" background: the first text is taken as the
/// base and all insertions from the second are folded in; deletions are
/// *not* applied (composition is a union, not a replacement), so lines
/// unique to either input survive.
pub fn compose_texts(first: &str, second: &str) -> String {
    let ops = diff_lines(first, second);
    let mut out: Vec<String> = Vec::new();
    for op in ops {
        match op {
            DiffOp::Equal { lines } => out.extend(lines),
            // Union semantics: keep what only the first file has...
            DiffOp::Delete { lines } => out.extend(lines),
            // ...and fold in what only the second file has.
            DiffOp::Insert { lines } => out.extend(lines),
        }
    }
    let mut text = out.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_round_trip() {
        let a = "line1\nline2\nline3\n";
        let b = "line1\nchanged\nline3\nline4\n";
        let ops = diff_lines(a, b);
        assert_eq!(apply_patch(a, &ops).unwrap(), b);
    }

    #[test]
    fn patch_to_empty_and_from_empty() {
        let ops = diff_lines("a\n", "");
        assert_eq!(apply_patch("a\n", &ops).unwrap(), "");
        let ops = diff_lines("", "a\nb\n");
        assert_eq!(apply_patch("", &ops).unwrap(), "a\nb\n");
    }

    #[test]
    fn patch_rejects_wrong_base() {
        let ops = diff_lines("a\nb\n", "a\nc\n");
        let err = apply_patch("x\nb\n", &ops).unwrap_err();
        assert_eq!(err.at_line, 0);
        assert!(err.to_string().contains("patch failed"));
    }

    #[test]
    fn patch_rejects_truncated_base() {
        let ops = diff_lines("a\nb\nc\n", "a\nb\nc\nd\n");
        assert!(apply_patch("a\nb\n", &ops).is_err());
    }

    #[test]
    fn patch_rejects_overlong_base() {
        let ops = diff_lines("a\n", "a\nb\n");
        assert!(apply_patch("a\nz\n", &ops).is_err());
    }

    #[test]
    fn compose_union_keeps_both_sides() {
        let first = "shared\nonly_first\nshared2\n";
        let second = "shared\nonly_second\nshared2\n";
        let composed = compose_texts(first, second);
        assert!(composed.contains("only_first"));
        assert!(composed.contains("only_second"));
        assert!(composed.contains("shared"));
        // shared lines appear once
        assert_eq!(composed.matches("shared2").count(), 1);
    }

    #[test]
    fn compose_identical_is_identity() {
        let text = "a\nb\nc\n";
        assert_eq!(compose_texts(text, text), text);
    }

    #[test]
    fn compose_with_empty() {
        assert_eq!(compose_texts("a\n", ""), "a\n");
        assert_eq!(compose_texts("", "b\n"), "b\n");
    }
}
