//! Numeric evaluation of expression trees.
//!
//! The paper embedded BeanShell to "allow Java maths strings to be executed
//! as code" when evaluating initial assignments; this module is the native
//! replacement. Evaluation happens against an [`Env`] of variable values and
//! SBML function definitions, plus the simulation clock for the `time`
//! csymbol.

use std::collections::HashMap;

use crate::ast::{CsymbolKind, MathExpr, Op};
use crate::error::MathError;

/// Avogadro's constant (molecules per mole), as used in paper Fig. 6.
pub const AVOGADRO: f64 = 6.022e23;

/// Maximum nested function-definition expansion depth. SBML forbids
/// recursive function definitions; the limit turns accidental cycles into a
/// clean error instead of a stack overflow.
const MAX_CALL_DEPTH: usize = 64;

/// An evaluation environment.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Variable values (species, parameters, compartments, reaction ids).
    pub vars: HashMap<String, f64>,
    /// SBML function definitions: id → (parameters, body).
    pub functions: HashMap<String, (Vec<String>, MathExpr)>,
    /// Current simulation time (the `time` csymbol).
    pub time: f64,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Builder: bind a variable.
    #[must_use]
    pub fn with_var(mut self, name: impl Into<String>, value: f64) -> Env {
        self.vars.insert(name.into(), value);
        self
    }

    /// Builder: register a function definition from a [`MathExpr::Lambda`].
    ///
    /// Non-lambda bodies are treated as zero-parameter functions.
    #[must_use]
    pub fn with_function(mut self, name: impl Into<String>, definition: MathExpr) -> Env {
        self.set_function(name, definition);
        self
    }

    /// Register a function definition (see [`Env::with_function`]).
    pub fn set_function(&mut self, name: impl Into<String>, definition: MathExpr) {
        match definition {
            MathExpr::Lambda { params, body } => {
                self.functions.insert(name.into(), (params, *body));
            }
            other => {
                self.functions.insert(name.into(), (Vec::new(), other));
            }
        }
    }

    /// Bind a variable.
    pub fn set_var(&mut self, name: impl Into<String>, value: f64) {
        self.vars.insert(name.into(), value);
    }
}

/// Evaluate an expression in an environment.
pub fn evaluate(expr: &MathExpr, env: &Env) -> Result<f64, MathError> {
    eval_inner(expr, env, &HashMap::new(), 0)
}

fn eval_inner(
    expr: &MathExpr,
    env: &Env,
    locals: &HashMap<String, f64>,
    depth: usize,
) -> Result<f64, MathError> {
    match expr {
        MathExpr::Num(v) => Ok(*v),
        MathExpr::Ci(name) => locals
            .get(name)
            .or_else(|| env.vars.get(name))
            .copied()
            .ok_or_else(|| MathError::UnknownIdentifier { name: name.clone() }),
        MathExpr::Csymbol { kind, .. } => Ok(match kind {
            CsymbolKind::Time => env.time,
            CsymbolKind::Avogadro => AVOGADRO,
            CsymbolKind::Delay => f64::NAN, // bare delay symbol has no value
        }),
        MathExpr::Const(c) => Ok(c.value()),
        MathExpr::Apply { op, args } => eval_apply(*op, args, env, locals, depth),
        MathExpr::Call { function, args } => {
            // delay(x, tau) is evaluated as x (no history in a point eval).
            if function == "delay" && args.len() == 2 {
                return eval_inner(&args[0], env, locals, depth);
            }
            if depth >= MAX_CALL_DEPTH {
                return Err(MathError::RecursionLimit { function: function.clone() });
            }
            let Some((params, body)) = env.functions.get(function) else {
                return Err(MathError::UnknownFunction { name: function.clone() });
            };
            if params.len() != args.len() {
                return Err(MathError::WrongArgCount {
                    function: function.clone(),
                    expected: params.len(),
                    got: args.len(),
                });
            }
            let mut frame = HashMap::with_capacity(params.len());
            for (p, a) in params.iter().zip(args) {
                frame.insert(p.clone(), eval_inner(a, env, locals, depth)?);
            }
            // Function bodies see only their parameters plus globals (SBML
            // function definitions are closed).
            eval_inner(body, env, &frame, depth + 1)
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            for (value, cond) in pieces {
                if eval_inner(cond, env, locals, depth)? != 0.0 {
                    return eval_inner(value, env, locals, depth);
                }
            }
            match otherwise {
                Some(other) => eval_inner(other, env, locals, depth),
                None => Err(MathError::NoBranchTaken),
            }
        }
        MathExpr::Lambda { body, .. } => {
            // A bare lambda evaluates its body (params unbound -> error if used).
            eval_inner(body, env, locals, depth)
        }
    }
}

fn eval_apply(
    op: Op,
    args: &[MathExpr],
    env: &Env,
    locals: &HashMap<String, f64>,
    depth: usize,
) -> Result<f64, MathError> {
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval_inner(a, env, locals, depth)?);
    }
    let bool_of = |v: f64| v != 0.0;
    let of_bool = |b: bool| if b { 1.0 } else { 0.0 };
    Ok(match op {
        Op::Plus => vals.iter().sum(),
        Op::Times => vals.iter().product(),
        Op::Minus => {
            if vals.len() == 1 {
                -vals[0]
            } else {
                vals[0] - vals[1]
            }
        }
        Op::Divide => vals[0] / vals[1],
        Op::Power => vals[0].powf(vals[1]),
        Op::Root => vals[1].powf(1.0 / vals[0]),
        Op::Exp => vals[0].exp(),
        Op::Ln => vals[0].ln(),
        Op::Log => vals[1].ln() / vals[0].ln(),
        Op::Abs => vals[0].abs(),
        Op::Floor => vals[0].floor(),
        Op::Ceiling => vals[0].ceil(),
        Op::Factorial => factorial(vals[0]),
        Op::Sin => vals[0].sin(),
        Op::Cos => vals[0].cos(),
        Op::Tan => vals[0].tan(),
        Op::Arcsin => vals[0].asin(),
        Op::Arccos => vals[0].acos(),
        Op::Arctan => vals[0].atan(),
        Op::Sinh => vals[0].sinh(),
        Op::Cosh => vals[0].cosh(),
        Op::Tanh => vals[0].tanh(),
        Op::Eq => of_bool(vals.windows(2).all(|w| w[0] == w[1])),
        Op::Neq => of_bool(vals.windows(2).all(|w| w[0] != w[1])),
        Op::Gt => of_bool(vals.windows(2).all(|w| w[0] > w[1])),
        Op::Lt => of_bool(vals.windows(2).all(|w| w[0] < w[1])),
        Op::Geq => of_bool(vals.windows(2).all(|w| w[0] >= w[1])),
        Op::Leq => of_bool(vals.windows(2).all(|w| w[0] <= w[1])),
        Op::And => of_bool(vals.iter().all(|v| bool_of(*v))),
        Op::Or => of_bool(vals.iter().any(|v| bool_of(*v))),
        Op::Xor => of_bool(vals.iter().filter(|v| bool_of(**v)).count() % 2 == 1),
        Op::Not => of_bool(!bool_of(vals[0])),
    })
}

fn factorial(v: f64) -> f64 {
    if v < 0.0 || v.fract() != 0.0 || v > 170.0 {
        return f64::NAN;
    }
    let mut acc = 1.0;
    let mut k = 2.0;
    while k <= v {
        acc *= k;
        k += 1.0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infix::parse;

    fn eval_str(src: &str, env: &Env) -> f64 {
        evaluate(&parse(src).unwrap(), env).unwrap()
    }

    #[test]
    fn arithmetic() {
        let env = Env::new().with_var("x", 3.0).with_var("y", 4.0);
        assert_eq!(eval_str("x + y", &env), 7.0);
        assert_eq!(eval_str("x * y - 2", &env), 10.0);
        assert_eq!(eval_str("y / x", &env), 4.0 / 3.0);
        assert_eq!(eval_str("x^2 + y^2", &env), 25.0);
        assert_eq!(eval_str("sqrt(x^2 + y^2)", &env), 5.0);
        assert_eq!(eval_str("-x", &env), -3.0);
    }

    #[test]
    fn elementary_functions() {
        let env = Env::new().with_var("x", 1.0);
        assert!((eval_str("exp(ln(x + 1))", &env) - 2.0).abs() < 1e-12);
        assert_eq!(eval_str("log(100)", &env), 2.0);
        assert_eq!(eval_str("log(2, 8)", &env), 3.0);
        assert_eq!(eval_str("abs(-5)", &env), 5.0);
        assert_eq!(eval_str("floor(2.7)", &env), 2.0);
        assert_eq!(eval_str("ceil(2.2)", &env), 3.0);
        assert_eq!(eval_str("factorial(5)", &env), 120.0);
        assert!(eval_str("factorial(2.5)", &env).is_nan());
        assert!((eval_str("sin(0)", &env)).abs() < 1e-15);
        assert!((eval_str("cos(0)", &env) - 1.0).abs() < 1e-15);
        assert_eq!(eval_str("root(3, 27)", &env), 3.0);
    }

    #[test]
    fn relational_and_boolean() {
        let env = Env::new().with_var("x", 3.0);
        assert_eq!(eval_str("x < 5", &env), 1.0);
        assert_eq!(eval_str("x > 5", &env), 0.0);
        assert_eq!(eval_str("x == 3", &env), 1.0);
        assert_eq!(eval_str("x != 3", &env), 0.0);
        assert_eq!(eval_str("x >= 3 && x <= 3", &env), 1.0);
        assert_eq!(eval_str("x > 5 || x < 4", &env), 1.0);
        assert_eq!(eval_str("!(x == 3)", &env), 0.0);
    }

    #[test]
    fn piecewise_branches() {
        let env = Env::new().with_var("x", 3.0);
        assert_eq!(eval_str("piecewise(10, x < 5, 20)", &env), 10.0);
        assert_eq!(eval_str("piecewise(10, x > 5, 20)", &env), 20.0);
        let no_branch = parse("piecewise(10, x > 5)").unwrap();
        assert_eq!(evaluate(&no_branch, &env), Err(MathError::NoBranchTaken));
    }

    #[test]
    fn constants_and_csymbols() {
        let mut env = Env::new();
        env.time = 42.0;
        assert_eq!(eval_str("time", &env), 42.0);
        assert_eq!(eval_str("avogadro", &env), AVOGADRO);
        assert!((eval_str("pi", &env) - std::f64::consts::PI).abs() < 1e-15);
        assert_eq!(eval_str("true", &env), 1.0);
        assert_eq!(eval_str("false", &env), 0.0);
        assert_eq!(eval_str("infinity", &env), f64::INFINITY);
    }

    #[test]
    fn unknown_identifier() {
        let env = Env::new();
        assert_eq!(
            evaluate(&parse("mystery").unwrap(), &env),
            Err(MathError::UnknownIdentifier { name: "mystery".into() })
        );
    }

    #[test]
    fn function_definitions() {
        let body = parse("Vmax * S / (Km + S)").unwrap();
        let lambda = MathExpr::Lambda {
            params: vec!["S".into(), "Vmax".into(), "Km".into()],
            body: Box::new(body),
        };
        let env = Env::new().with_function("mm", lambda).with_var("sub", 2.0);
        let call = parse("mm(sub, 10, 2)").unwrap();
        assert_eq!(evaluate(&call, &env).unwrap(), 5.0);

        // Wrong arity
        let bad = parse("mm(sub)").unwrap();
        assert!(matches!(evaluate(&bad, &env), Err(MathError::WrongArgCount { .. })));

        // Unknown function
        let missing = parse("nosuch(1)").unwrap();
        assert!(matches!(evaluate(&missing, &env), Err(MathError::UnknownFunction { .. })));
    }

    #[test]
    fn function_bodies_are_closed_over_params_and_globals() {
        // f(x) = x + g where g is global; local `y` of caller must NOT leak.
        let f = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + g").unwrap()),
        };
        let env = Env::new().with_function("f", f).with_var("g", 100.0).with_var("y", 5.0);
        assert_eq!(evaluate(&parse("f(1)").unwrap(), &env).unwrap(), 101.0);

        let f_leaky = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + y").unwrap()),
        };
        let env2 = Env::new().with_function("f", f_leaky).with_var("g", 100.0);
        // `y` resolves from globals if bound there, else errors — here it is
        // unbound, and caller locals never leak in.
        assert!(evaluate(&parse("f(1)").unwrap(), &env2).is_err());
    }

    #[test]
    fn recursive_function_hits_limit() {
        let rec = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(MathExpr::Call {
                function: "r".into(),
                args: vec![MathExpr::ci("x")],
            }),
        };
        let env = Env::new().with_function("r", rec);
        assert!(matches!(
            evaluate(&parse("r(1)").unwrap(), &env),
            Err(MathError::RecursionLimit { .. })
        ));
    }

    #[test]
    fn delay_evaluates_to_operand() {
        let env = Env::new().with_var("x", 7.0);
        assert_eq!(eval_str("delay(x, 5)", &env), 7.0);
    }

    #[test]
    fn division_semantics_ieee() {
        let env = Env::new();
        assert_eq!(eval_str("1/0", &env), f64::INFINITY);
        assert!(eval_str("0/0", &env).is_nan());
    }

    #[test]
    fn nary_relations_chain() {
        let env = Env::new();
        let e = MathExpr::apply(
            Op::Lt,
            vec![MathExpr::num(1.0), MathExpr::num(2.0), MathExpr::num(3.0)],
        );
        assert_eq!(evaluate(&e, &env).unwrap(), 1.0);
        let e2 = MathExpr::apply(
            Op::Lt,
            vec![MathExpr::num(1.0), MathExpr::num(3.0), MathExpr::num(2.0)],
        );
        assert_eq!(evaluate(&e2, &env).unwrap(), 0.0);
    }

    #[test]
    fn xor_parity() {
        let env = Env::new();
        let e = MathExpr::apply(
            Op::Xor,
            vec![MathExpr::num(1.0), MathExpr::num(1.0), MathExpr::num(1.0)],
        );
        assert_eq!(evaluate(&e, &env).unwrap(), 1.0);
    }
}
