//! Infix formula parser (`"Vmax*S/(Km+S)"` → [`MathExpr`]).
//!
//! The grammar mirrors libSBML's formula syntax, which is how modellers
//! habitually write kinetic laws. It is the construction path used by the
//! synthetic corpus generator and the examples; the XML path
//! ([`crate::parser`]) is what model files go through.
//!
//! Precedence, loosest → tightest: `||`, `&&`, `!`, comparisons, `+ -`,
//! `* /`, unary `-`, `^` (right-associative), atoms.
//!
//! Recognised names: built-in unary functions (`sin`, `exp`, `ln`, ...),
//! `log(x)` (base 10) / `log(b, x)`, `sqrt(x)`, `root(n, x)`, `pow(a, b)`,
//! `piecewise(v1, c1, ..., [otherwise])`, the constants `pi`,
//! `exponentiale`, `true`, `false`, `infinity`, `notanumber`, and the
//! csymbols `time` and `avogadro`. Any other `name(...)` becomes a
//! [`MathExpr::Call`] to an SBML function definition.

use crate::ast::{Constant, CsymbolKind, MathExpr, Op};
use crate::error::MathError;

/// Deepest operator/paren/call nesting [`parse`] accepts. Recursive
/// descent spends stack per level — roughly nine frames for each
/// parenthesis — so unbounded nesting would let a hostile formula
/// (`"((((…"` or `"!!!!…"`) overflow the stack: an abort, not a
/// catchable error. The bound must leave the guard reachable on a 2 MiB
/// test-thread stack under debug-sized frames. Real kinetic laws nest a
/// handful of levels; 128 is orders of magnitude of headroom.
const MAX_DEPTH: usize = 128;

/// Parse an infix formula into an expression tree.
pub fn parse(formula: &str) -> Result<MathExpr, MathError> {
    let tokens = lex(formula)?;
    let mut parser = Parser { tokens, pos: 0, depth: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(MathError::Syntax {
            offset: parser.current_offset(),
            detail: format!("unexpected trailing token {:?}", parser.peek_kind()),
        });
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
    EqEq,
    NotEq,
    Lt,
    Leq,
    Gt,
    Geq,
    AndAnd,
    OrOr,
    Bang,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, MathError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'+' => {
                out.push((start, Tok::Plus));
                i += 1;
            }
            b'-' => {
                out.push((start, Tok::Minus));
                i += 1;
            }
            b'*' => {
                out.push((start, Tok::Star));
                i += 1;
            }
            b'/' => {
                out.push((start, Tok::Slash));
                i += 1;
            }
            b'^' => {
                out.push((start, Tok::Caret));
                i += 1;
            }
            b'(' => {
                out.push((start, Tok::LParen));
                i += 1;
            }
            b')' => {
                out.push((start, Tok::RParen));
                i += 1;
            }
            b',' => {
                out.push((start, Tok::Comma));
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((start, Tok::EqEq));
                    i += 2;
                } else {
                    return Err(MathError::Syntax {
                        offset: i,
                        detail: "single '=' (use '==')".to_owned(),
                    });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((start, Tok::NotEq));
                    i += 2;
                } else {
                    out.push((start, Tok::Bang));
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((start, Tok::Leq));
                    i += 2;
                } else {
                    out.push((start, Tok::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((start, Tok::Geq));
                    i += 2;
                } else {
                    out.push((start, Tok::Gt));
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((start, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(MathError::Syntax {
                        offset: i,
                        detail: "single '&' (use '&&')".to_owned(),
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((start, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(MathError::Syntax {
                        offset: i,
                        detail: "single '|' (use '||')".to_owned(),
                    });
                }
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                // exponent part
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let value: f64 = text.parse().map_err(|_| MathError::Syntax {
                    offset: i,
                    detail: format!("bad number {text:?}"),
                })?;
                out.push((start, Tok::Num(value)));
                i = j;
            }
            _ => {
                // `i` always sits on a char boundary (every arm advances
                // by whole characters), but a lexer must not be the place
                // that proves it: fail as a syntax error, never a panic.
                let Some(c) = src.get(i..).and_then(|rest| rest.chars().next()) else {
                    return Err(MathError::Syntax {
                        offset: i,
                        detail: "unexpected byte inside a character".to_owned(),
                    });
                };
                if c.is_alphabetic() || c == '_' {
                    let mut j = i;
                    for ch in src[i..].chars() {
                        if ch.is_alphanumeric() || ch == '_' {
                            j += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    out.push((start, Tok::Ident(src[i..j].to_owned())));
                    i = j;
                } else {
                    return Err(MathError::Syntax {
                        offset: i,
                        detail: format!("unexpected character {c:?}"),
                    });
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    /// Current recursion depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl Parser {
    /// Enter one nesting level; errors instead of risking stack overflow
    /// past [`MAX_DEPTH`]. Pair with [`Parser::ascend`] on success paths
    /// (an error aborts the whole parse, so unwinding the counter is
    /// moot there).
    fn descend(&mut self) -> Result<(), MathError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(MathError::Syntax {
                offset: self.current_offset(),
                detail: format!("expression nesting exceeds {MAX_DEPTH} levels"),
            });
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek_kind(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t:?}"),
            None => "end of input".to_owned(),
        }
    }

    fn current_offset(&self) -> usize {
        self.tokens.get(self.pos).map_or_else(
            || self.tokens.last().map_or(0, |(o, _)| *o + 1),
            |(o, _)| *o,
        )
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), MathError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(MathError::Syntax {
                offset: self.current_offset(),
                detail: format!("expected {tok:?}, found {}", self.peek_kind()),
            })
        }
    }

    fn parse_or(&mut self) -> Result<MathExpr, MathError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = nary(Op::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<MathExpr, MathError> {
        let mut lhs = self.parse_not()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_not()?;
            lhs = nary(Op::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<MathExpr, MathError> {
        if self.peek() == Some(&Tok::Bang) {
            self.pos += 1;
            self.descend()?;
            let inner = self.parse_not()?;
            self.ascend();
            return Ok(MathExpr::apply(Op::Not, vec![inner]));
        }
        self.parse_rel()
    }

    fn parse_rel(&mut self) -> Result<MathExpr, MathError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Op::Eq,
            Some(Tok::NotEq) => Op::Neq,
            Some(Tok::Lt) => Op::Lt,
            Some(Tok::Leq) => Op::Leq,
            Some(Tok::Gt) => Op::Gt,
            Some(Tok::Geq) => Op::Geq,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(MathExpr::apply(op, vec![lhs, rhs]))
    }

    fn parse_add(&mut self) -> Result<MathExpr, MathError> {
        let mut lhs = self.parse_mul()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = nary(Op::Plus, lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = MathExpr::apply(Op::Minus, vec![lhs, rhs]);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_mul(&mut self) -> Result<MathExpr, MathError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = nary(Op::Times, lhs, rhs);
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = MathExpr::apply(Op::Divide, vec![lhs, rhs]);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<MathExpr, MathError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                self.descend()?;
                let inner = self.parse_unary()?;
                self.ascend();
                // Fold numeric literals immediately: -3 is a number.
                if let MathExpr::Num(v) = inner {
                    Ok(MathExpr::Num(-v))
                } else {
                    Ok(MathExpr::apply(Op::Minus, vec![inner]))
                }
            }
            Some(Tok::Plus) => {
                self.pos += 1;
                self.descend()?;
                let inner = self.parse_unary();
                self.ascend();
                inner
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<MathExpr, MathError> {
        let base = self.parse_atom()?;
        if self.peek() == Some(&Tok::Caret) {
            self.pos += 1;
            // right-associative (recursing per link, hence the depth
            // charge); exponent may itself be unary-negated
            self.descend()?;
            let exponent = self.parse_unary()?;
            self.ascend();
            return Ok(MathExpr::apply(Op::Power, vec![base, exponent]));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<MathExpr, MathError> {
        let offset = self.current_offset();
        match self.bump() {
            Some(Tok::Num(v)) => Ok(MathExpr::Num(v)),
            Some(Tok::LParen) => {
                self.descend()?;
                let inner = self.parse_or()?;
                self.ascend();
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    self.descend()?;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_or()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.ascend();
                    self.expect(Tok::RParen)?;
                    build_call(&name, args, offset)
                } else {
                    Ok(named_leaf(&name))
                }
            }
            other => Err(MathError::Syntax {
                offset,
                detail: format!(
                    "expected a number, name or '(', found {}",
                    other.map_or_else(|| "end of input".to_owned(), |t| format!("{t:?}"))
                ),
            }),
        }
    }
}

/// Merge into an existing n-ary application when possible (builds flat
/// `plus(a,b,c)` rather than `plus(plus(a,b),c)`).
fn nary(op: Op, lhs: MathExpr, rhs: MathExpr) -> MathExpr {
    match lhs {
        MathExpr::Apply { op: lop, mut args } if lop == op => {
            args.push(rhs);
            MathExpr::Apply { op, args }
        }
        other => MathExpr::apply(op, vec![other, rhs]),
    }
}

fn named_leaf(name: &str) -> MathExpr {
    if let Some(c) = Constant::from_mathml_name(name) {
        return MathExpr::Const(c);
    }
    match name {
        "time" => MathExpr::Csymbol { kind: CsymbolKind::Time, name: "time".into() },
        "avogadro" => MathExpr::Csymbol { kind: CsymbolKind::Avogadro, name: "avogadro".into() },
        _ => MathExpr::Ci(name.to_owned()),
    }
}

fn build_call(name: &str, mut args: Vec<MathExpr>, offset: usize) -> Result<MathExpr, MathError> {
    let unary_op = |op: Op, args: Vec<MathExpr>| -> Result<MathExpr, MathError> {
        if args.len() != 1 {
            return Err(MathError::Syntax {
                offset,
                detail: format!("{name}() takes exactly 1 argument, got {}", args.len()),
            });
        }
        Ok(MathExpr::apply(op, args))
    };
    match name {
        "exp" => unary_op(Op::Exp, args),
        "ln" => unary_op(Op::Ln, args),
        "abs" => unary_op(Op::Abs, args),
        "floor" => unary_op(Op::Floor, args),
        "ceil" | "ceiling" => unary_op(Op::Ceiling, args),
        "factorial" => unary_op(Op::Factorial, args),
        "sin" => unary_op(Op::Sin, args),
        "cos" => unary_op(Op::Cos, args),
        "tan" => unary_op(Op::Tan, args),
        "arcsin" | "asin" => unary_op(Op::Arcsin, args),
        "arccos" | "acos" => unary_op(Op::Arccos, args),
        "arctan" | "atan" => unary_op(Op::Arctan, args),
        "sinh" => unary_op(Op::Sinh, args),
        "cosh" => unary_op(Op::Cosh, args),
        "tanh" => unary_op(Op::Tanh, args),
        "not" => unary_op(Op::Not, args),
        "sqrt" => {
            if args.len() != 1 {
                return Err(MathError::Syntax {
                    offset,
                    detail: "sqrt() takes exactly 1 argument".to_owned(),
                });
            }
            args.insert(0, MathExpr::Num(2.0));
            Ok(MathExpr::apply(Op::Root, args))
        }
        "root" => {
            if args.len() != 2 {
                return Err(MathError::Syntax {
                    offset,
                    detail: "root(degree, x) takes exactly 2 arguments".to_owned(),
                });
            }
            Ok(MathExpr::apply(Op::Root, args))
        }
        "log" => match args.len() {
            1 => {
                args.insert(0, MathExpr::Num(10.0));
                Ok(MathExpr::apply(Op::Log, args))
            }
            2 => Ok(MathExpr::apply(Op::Log, args)),
            n => Err(MathError::Syntax {
                offset,
                detail: format!("log() takes 1 or 2 arguments, got {n}"),
            }),
        },
        "pow" | "power" => {
            if args.len() != 2 {
                return Err(MathError::Syntax {
                    offset,
                    detail: "pow(base, exponent) takes exactly 2 arguments".to_owned(),
                });
            }
            Ok(MathExpr::apply(Op::Power, args))
        }
        "piecewise" => {
            let otherwise =
                if args.len() % 2 == 1 { args.pop().map(Box::new) } else { None };
            let mut pieces = Vec::with_capacity(args.len() / 2);
            let mut it = args.into_iter();
            while let (Some(v), Some(c)) = (it.next(), it.next()) {
                pieces.push((v, c));
            }
            Ok(MathExpr::Piecewise { pieces, otherwise })
        }
        "delay" => {
            if args.len() != 2 {
                return Err(MathError::Syntax {
                    offset,
                    detail: "delay(x, tau) takes exactly 2 arguments".to_owned(),
                });
            }
            // Modelled as a call to the delay csymbol; evaluated as identity
            // on the first argument.
            Ok(MathExpr::Call { function: "delay".into(), args })
        }
        _ => Ok(MathExpr::Call { function: name.to_owned(), args }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_infix;

    #[test]
    fn arithmetic_precedence() {
        let e = parse("a + b * c").unwrap();
        assert_eq!(
            e,
            MathExpr::apply(
                Op::Plus,
                vec![
                    MathExpr::ci("a"),
                    MathExpr::apply(Op::Times, vec![MathExpr::ci("b"), MathExpr::ci("c")])
                ]
            )
        );
    }

    #[test]
    fn nary_flattening() {
        let e = parse("a + b + c + d").unwrap();
        match e {
            MathExpr::Apply { op: Op::Plus, args } => assert_eq!(args.len(), 4),
            other => panic!("{other:?}"),
        }
        let m = parse("a * b * c").unwrap();
        match m {
            MathExpr::Apply { op: Op::Times, args } => assert_eq!(args.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subtraction_not_flattened() {
        // a - b - c must be (a-b)-c
        let e = parse("a - b - c").unwrap();
        assert_eq!(
            e,
            MathExpr::apply(
                Op::Minus,
                vec![
                    MathExpr::apply(Op::Minus, vec![MathExpr::ci("a"), MathExpr::ci("b")]),
                    MathExpr::ci("c")
                ]
            )
        );
    }

    #[test]
    fn power_right_associative() {
        let e = parse("a ^ b ^ c").unwrap();
        assert_eq!(
            e,
            MathExpr::apply(
                Op::Power,
                vec![
                    MathExpr::ci("a"),
                    MathExpr::apply(Op::Power, vec![MathExpr::ci("b"), MathExpr::ci("c")])
                ]
            )
        );
    }

    #[test]
    fn unary_minus_and_numbers() {
        assert_eq!(parse("-3").unwrap(), MathExpr::num(-3.0));
        assert_eq!(parse("2e-3").unwrap(), MathExpr::num(0.002));
        assert_eq!(parse(".5").unwrap(), MathExpr::num(0.5));
        let e = parse("-x").unwrap();
        assert_eq!(e, MathExpr::apply(Op::Minus, vec![MathExpr::ci("x")]));
        assert_eq!(parse("+x").unwrap(), MathExpr::ci("x"));
    }

    #[test]
    fn michaelis_menten() {
        let e = parse("Vmax * S / (Km + S)").unwrap();
        assert_eq!(
            e,
            MathExpr::apply(
                Op::Divide,
                vec![
                    MathExpr::apply(Op::Times, vec![MathExpr::ci("Vmax"), MathExpr::ci("S")]),
                    MathExpr::apply(Op::Plus, vec![MathExpr::ci("Km"), MathExpr::ci("S")])
                ]
            )
        );
    }

    #[test]
    fn builtin_functions() {
        assert_eq!(
            parse("sqrt(x)").unwrap(),
            MathExpr::apply(Op::Root, vec![MathExpr::num(2.0), MathExpr::ci("x")])
        );
        assert_eq!(
            parse("log(x)").unwrap(),
            MathExpr::apply(Op::Log, vec![MathExpr::num(10.0), MathExpr::ci("x")])
        );
        assert_eq!(
            parse("log(2, x)").unwrap(),
            MathExpr::apply(Op::Log, vec![MathExpr::num(2.0), MathExpr::ci("x")])
        );
        assert_eq!(
            parse("pow(x, 2)").unwrap(),
            MathExpr::apply(Op::Power, vec![MathExpr::ci("x"), MathExpr::num(2.0)])
        );
    }

    #[test]
    fn user_call_and_constants() {
        assert_eq!(
            parse("mm(S, Vmax, Km)").unwrap(),
            MathExpr::Call {
                function: "mm".into(),
                args: vec![MathExpr::ci("S"), MathExpr::ci("Vmax"), MathExpr::ci("Km")]
            }
        );
        assert_eq!(parse("pi").unwrap(), MathExpr::Const(Constant::Pi));
        assert!(matches!(
            parse("time").unwrap(),
            MathExpr::Csymbol { kind: CsymbolKind::Time, .. }
        ));
    }

    #[test]
    fn boolean_and_relational() {
        let e = parse("x < 5 && y >= 2 || !z").unwrap();
        match e {
            MathExpr::Apply { op: Op::Or, args } => {
                assert_eq!(args.len(), 2);
                assert!(matches!(&args[0], MathExpr::Apply { op: Op::And, .. }));
                assert!(matches!(&args[1], MathExpr::Apply { op: Op::Not, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn piecewise_sugar() {
        let e = parse("piecewise(1, x < 5, 0)").unwrap();
        match e {
            MathExpr::Piecewise { pieces, otherwise } => {
                assert_eq!(pieces.len(), 1);
                assert!(otherwise.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn syntax_errors_have_offsets() {
        for (src, _) in [("a +", 3), ("(a", 2), ("a b", 2), ("1.2.3", 0), ("a = b", 2), ("&", 0)] {
            let err = parse(src).unwrap_err();
            assert!(matches!(err, MathError::Syntax { .. }), "{src}: {err:?}");
        }
    }

    #[test]
    fn moderate_nesting_parses() {
        // Well inside MAX_DEPTH: parentheses, negation, powers.
        let deep = format!("{}x{}", "(".repeat(100), ")".repeat(100));
        assert!(parse(&deep).is_ok());
        assert!(parse(&format!("{}x", "!".repeat(100))).is_ok());
        assert!(parse(&format!("x{}", "^x".repeat(100))).is_ok());
        assert!(parse(&format!("{}x", "-".repeat(100))).is_ok());
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // Each shape drives a different recursion cycle; all must come
        // back as Err, not blow the stack.
        for src in [
            format!("{}x{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}x", "!".repeat(100_000)),
            format!("{}x", "-".repeat(100_000)),
            format!("{}x", "+".repeat(100_000)),
            format!("x{}", "^x".repeat(100_000)),
            format!("{}x", "f(".repeat(100_000)),
        ] {
            let err = parse(&src).unwrap_err();
            assert!(
                matches!(err, MathError::Syntax { .. }),
                "{}...: {err:?}",
                &src[..20]
            );
        }
    }

    #[test]
    fn infix_round_trip() {
        for src in [
            "k1 * A * B",
            "Vmax * S / (Km + S)",
            "a - (b - c)",
            "x^2 + y^2",
            "piecewise(1, x < 5, 0)",
            "sin(x) + cos(y)",
            "(a + b) * c",
            "-kf * A + kr * B",
        ] {
            let e = parse(src).unwrap();
            let printed = to_infix(&e);
            let reparsed = parse(&printed).unwrap();
            assert_eq!(reparsed, e, "{src} -> {printed}");
        }
    }
}
