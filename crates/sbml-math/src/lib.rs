//! MathML-content mathematics for SBML models.
//!
//! SBML expresses every formula (kinetic laws, rules, initial assignments,
//! constraints, events, function definitions) as *content MathML*. The EDBT
//! 2010 paper's central technical device is a **commutativity-aware pattern**
//! extracted from MathML trees (paper Fig. 7) so that `k1*[A]*[B]` and
//! `[B]*k1*[A]` are recognised as the same kinetic law during model merging.
//!
//! This crate provides:
//!
//! * [`ast`] — the expression tree ([`MathExpr`], [`Op`], [`Constant`]),
//! * [`parser`] — content-MathML → AST (from `sbml-xml` elements),
//! * [`writer`] — AST → content-MathML and human-readable infix text,
//! * [`infix`] — an infix formula parser (`"Vmax*S/(Km+S)"` → AST), the
//!   ergonomic construction path used by the corpus generator and examples,
//! * [`pattern`] — the paper's Fig. 7 canonical pattern with ID mappings,
//! * [`eval`] — a numeric evaluator over variable environments (substituting
//!   for the BeanShell interpreter the paper embedded),
//! * [`rewrite`] — identifier collection/renaming/substitution used by the
//!   merge engine when components are renamed.
//!
//! # Example
//!
//! ```
//! use sbml_math::{infix, pattern::Pattern};
//!
//! let a = infix::parse("k1*A*B").unwrap();
//! let b = infix::parse("B*k1*A").unwrap();
//! // Different operand order, same canonical pattern (paper Fig. 7).
//! assert_eq!(Pattern::of(&a), Pattern::of(&b));
//!
//! let c = infix::parse("A/(k1*B)").unwrap();
//! assert_ne!(Pattern::of(&a), Pattern::of(&c));
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod infix;
pub mod parser;
pub mod pattern;
pub mod rewrite;
pub mod writer;

pub use ast::{Constant, CsymbolKind, MathExpr, Op};
pub use error::MathError;
pub use eval::{evaluate, Env};
pub use pattern::Pattern;

/// Parse content MathML (a `<math>` element or a bare operand element) into
/// an expression tree.
pub fn parse_mathml(element: &sbml_xml::Element) -> Result<MathExpr, MathError> {
    parser::parse(element)
}

/// Serialize an expression tree to a `<math>` element with the standard
/// MathML namespace.
pub fn to_mathml(expr: &MathExpr) -> sbml_xml::Element {
    writer::to_math_element(expr)
}
