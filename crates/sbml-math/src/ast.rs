//! The expression tree for content MathML.

use std::fmt;

/// Built-in operators and functions of the SBML MathML subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    // n-ary arithmetic
    /// `<plus/>` — n-ary, commutative.
    Plus,
    /// `<times/>` — n-ary, commutative.
    Times,
    /// `<minus/>` — unary negation or binary subtraction.
    Minus,
    /// `<divide/>` — binary.
    Divide,
    /// `<power/>` — binary.
    Power,
    /// `<root/>` — with optional `<degree>` (default 2).
    Root,
    // unary elementary functions
    /// `<exp/>`.
    Exp,
    /// `<ln/>`.
    Ln,
    /// `<log/>` — with optional `<logbase>` (default 10).
    Log,
    /// `<abs/>`.
    Abs,
    /// `<floor/>`.
    Floor,
    /// `<ceiling/>`.
    Ceiling,
    /// `<factorial/>`.
    Factorial,
    /// `<sin/>`.
    Sin,
    /// `<cos/>`.
    Cos,
    /// `<tan/>`.
    Tan,
    /// `<arcsin/>`.
    Arcsin,
    /// `<arccos/>`.
    Arccos,
    /// `<arctan/>`.
    Arctan,
    /// `<sinh/>`.
    Sinh,
    /// `<cosh/>`.
    Cosh,
    /// `<tanh/>`.
    Tanh,
    // relational (SBML: eq/neq are n-ary in MathML but practically binary)
    /// `<eq/>` — commutative as a 2-ary relation.
    Eq,
    /// `<neq/>` — commutative.
    Neq,
    /// `<gt/>`.
    Gt,
    /// `<lt/>`.
    Lt,
    /// `<geq/>`.
    Geq,
    /// `<leq/>`.
    Leq,
    // logical
    /// `<and/>` — n-ary, commutative.
    And,
    /// `<or/>` — n-ary, commutative.
    Or,
    /// `<xor/>` — n-ary, commutative.
    Xor,
    /// `<not/>` — unary.
    Not,
}

impl Op {
    /// Whether operand order is irrelevant (drives the paper's Fig. 7
    /// pattern canonicalisation).
    pub fn is_commutative(self) -> bool {
        matches!(self, Op::Plus | Op::Times | Op::Eq | Op::Neq | Op::And | Op::Or | Op::Xor)
    }

    /// Whether the operator is associative n-ary (nested applications can be
    /// flattened: `(a+b)+c == a+(b+c) == plus(a,b,c)`).
    pub fn is_associative(self) -> bool {
        matches!(self, Op::Plus | Op::Times | Op::And | Op::Or)
    }

    /// The MathML element name (`<plus/>`, `<arcsin/>`, ...).
    pub fn mathml_name(self) -> &'static str {
        match self {
            Op::Plus => "plus",
            Op::Times => "times",
            Op::Minus => "minus",
            Op::Divide => "divide",
            Op::Power => "power",
            Op::Root => "root",
            Op::Exp => "exp",
            Op::Ln => "ln",
            Op::Log => "log",
            Op::Abs => "abs",
            Op::Floor => "floor",
            Op::Ceiling => "ceiling",
            Op::Factorial => "factorial",
            Op::Sin => "sin",
            Op::Cos => "cos",
            Op::Tan => "tan",
            Op::Arcsin => "arcsin",
            Op::Arccos => "arccos",
            Op::Arctan => "arctan",
            Op::Sinh => "sinh",
            Op::Cosh => "cosh",
            Op::Tanh => "tanh",
            Op::Eq => "eq",
            Op::Neq => "neq",
            Op::Gt => "gt",
            Op::Lt => "lt",
            Op::Geq => "geq",
            Op::Leq => "leq",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
        }
    }

    /// Inverse of [`Op::mathml_name`].
    pub fn from_mathml_name(name: &str) -> Option<Op> {
        Some(match name {
            "plus" => Op::Plus,
            "times" => Op::Times,
            "minus" => Op::Minus,
            "divide" => Op::Divide,
            "power" => Op::Power,
            "root" => Op::Root,
            "exp" => Op::Exp,
            "ln" => Op::Ln,
            "log" => Op::Log,
            "abs" => Op::Abs,
            "floor" => Op::Floor,
            "ceiling" => Op::Ceiling,
            "factorial" => Op::Factorial,
            "sin" => Op::Sin,
            "cos" => Op::Cos,
            "tan" => Op::Tan,
            "arcsin" => Op::Arcsin,
            "arccos" => Op::Arccos,
            "arctan" => Op::Arctan,
            "sinh" => Op::Sinh,
            "cosh" => Op::Cosh,
            "tanh" => Op::Tanh,
            "eq" => Op::Eq,
            "neq" => Op::Neq,
            "gt" => Op::Gt,
            "lt" => Op::Lt,
            "geq" => Op::Geq,
            "leq" => Op::Leq,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "not" => Op::Not,
            _ => return None,
        })
    }

    /// (min, max) admissible argument count; `usize::MAX` = unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Op::Plus | Op::Times => (1, usize::MAX),
            Op::And | Op::Or | Op::Xor => (1, usize::MAX),
            Op::Minus => (1, 2),
            Op::Divide | Op::Power => (2, 2),
            Op::Root | Op::Log => (1, 2), // optional degree/logbase folded into args
            Op::Eq | Op::Neq | Op::Gt | Op::Lt | Op::Geq | Op::Leq => (2, usize::MAX),
            Op::Not => (1, 1),
            _ => (1, 1),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mathml_name())
    }
}

/// MathML named constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// `<pi/>`.
    Pi,
    /// `<exponentiale/>`.
    ExponentialE,
    /// `<true/>`.
    True,
    /// `<false/>`.
    False,
    /// `<infinity/>`.
    Infinity,
    /// `<notanumber/>`.
    NotANumber,
}

impl Constant {
    /// The MathML element name.
    pub fn mathml_name(self) -> &'static str {
        match self {
            Constant::Pi => "pi",
            Constant::ExponentialE => "exponentiale",
            Constant::True => "true",
            Constant::False => "false",
            Constant::Infinity => "infinity",
            Constant::NotANumber => "notanumber",
        }
    }

    /// Inverse of [`Constant::mathml_name`].
    pub fn from_mathml_name(name: &str) -> Option<Constant> {
        Some(match name {
            "pi" => Constant::Pi,
            "exponentiale" => Constant::ExponentialE,
            "true" => Constant::True,
            "false" => Constant::False,
            "infinity" => Constant::Infinity,
            "notanumber" => Constant::NotANumber,
            _ => return None,
        })
    }

    /// Numeric value (booleans map to 1/0 as in the paper's evaluator).
    pub fn value(self) -> f64 {
        match self {
            Constant::Pi => std::f64::consts::PI,
            Constant::ExponentialE => std::f64::consts::E,
            Constant::True => 1.0,
            Constant::False => 0.0,
            Constant::Infinity => f64::INFINITY,
            Constant::NotANumber => f64::NAN,
        }
    }
}

/// SBML `<csymbol>` kinds (definitionURL-identified special symbols).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CsymbolKind {
    /// Simulation time (`.../symbols/time`).
    Time,
    /// Avogadro's number (`.../symbols/avogadro`).
    Avogadro,
    /// Delayed value (`.../symbols/delay`) — parsed, evaluated as identity.
    Delay,
}

impl CsymbolKind {
    /// Canonical SBML definitionURL.
    pub fn definition_url(self) -> &'static str {
        match self {
            CsymbolKind::Time => "http://www.sbml.org/sbml/symbols/time",
            CsymbolKind::Avogadro => "http://www.sbml.org/sbml/symbols/avogadro",
            CsymbolKind::Delay => "http://www.sbml.org/sbml/symbols/delay",
        }
    }

    /// Recognise a definitionURL (suffix match, tolerant of hosts).
    pub fn from_definition_url(url: &str) -> Option<CsymbolKind> {
        if url.ends_with("/time") {
            Some(CsymbolKind::Time)
        } else if url.ends_with("/avogadro") {
            Some(CsymbolKind::Avogadro)
        } else if url.ends_with("/delay") {
            Some(CsymbolKind::Delay)
        } else {
            None
        }
    }
}

/// A content-MathML expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MathExpr {
    /// `<cn>` — a numeric literal.
    Num(f64),
    /// `<ci>` — an identifier reference (species, parameter, compartment,
    /// function, reaction or local parameter id).
    Ci(String),
    /// `<csymbol>` — special symbol; the original text name is preserved for
    /// round-tripping.
    Csymbol {
        /// Which special symbol.
        kind: CsymbolKind,
        /// Original display text (e.g. `t` or `time`).
        name: String,
    },
    /// A named constant element.
    Const(Constant),
    /// `<apply>` of a built-in operator.
    Apply {
        /// The operator.
        op: Op,
        /// Operands in document order.
        args: Vec<MathExpr>,
    },
    /// `<apply><ci>f</ci> args...</apply>` — call of a user-defined function
    /// (SBML function definition).
    Call {
        /// Function definition id.
        function: String,
        /// Arguments in order.
        args: Vec<MathExpr>,
    },
    /// `<piecewise>` with (value, condition) pieces and optional otherwise.
    Piecewise {
        /// `(value, condition)` pairs in document order.
        pieces: Vec<(MathExpr, MathExpr)>,
        /// `<otherwise>` value, if present.
        otherwise: Option<Box<MathExpr>>,
    },
    /// `<lambda>` — function definition body with bound variables.
    Lambda {
        /// Bound variable names in order.
        params: Vec<String>,
        /// Function body.
        body: Box<MathExpr>,
    },
}

impl MathExpr {
    /// Shorthand for an n-ary application.
    pub fn apply(op: Op, args: Vec<MathExpr>) -> MathExpr {
        MathExpr::Apply { op, args }
    }

    /// Shorthand for an identifier.
    pub fn ci(name: impl Into<String>) -> MathExpr {
        MathExpr::Ci(name.into())
    }

    /// Shorthand for a literal.
    pub fn num(value: f64) -> MathExpr {
        MathExpr::Num(value)
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        1 + match self {
            MathExpr::Apply { args, .. } | MathExpr::Call { args, .. } => {
                args.iter().map(MathExpr::size).sum()
            }
            MathExpr::Piecewise { pieces, otherwise } => {
                pieces.iter().map(|(v, c)| v.size() + c.size()).sum::<usize>()
                    + otherwise.as_deref().map_or(0, MathExpr::size)
            }
            MathExpr::Lambda { body, .. } => body.size(),
            _ => 0,
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        1 + match self {
            MathExpr::Apply { args, .. } | MathExpr::Call { args, .. } => {
                args.iter().map(MathExpr::depth).max().unwrap_or(0)
            }
            MathExpr::Piecewise { pieces, otherwise } => pieces
                .iter()
                .map(|(v, c)| v.depth().max(c.depth()))
                .chain(otherwise.as_deref().map(MathExpr::depth))
                .max()
                .unwrap_or(0),
            MathExpr::Lambda { body, .. } => body.depth(),
            _ => 0,
        }
    }

    /// True for leaves (`cn`, `ci`, `csymbol`, constants).
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            MathExpr::Num(_) | MathExpr::Ci(_) | MathExpr::Csymbol { .. } | MathExpr::Const(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_flags() {
        assert!(Op::Plus.is_commutative());
        assert!(Op::Times.is_commutative());
        assert!(Op::Eq.is_commutative());
        assert!(Op::And.is_commutative());
        assert!(!Op::Minus.is_commutative());
        assert!(!Op::Divide.is_commutative());
        assert!(!Op::Power.is_commutative());
        assert!(!Op::Lt.is_commutative());
    }

    #[test]
    fn op_name_round_trip() {
        for op in [
            Op::Plus,
            Op::Times,
            Op::Minus,
            Op::Divide,
            Op::Power,
            Op::Root,
            Op::Exp,
            Op::Ln,
            Op::Log,
            Op::Abs,
            Op::Floor,
            Op::Ceiling,
            Op::Factorial,
            Op::Sin,
            Op::Cos,
            Op::Tan,
            Op::Arcsin,
            Op::Arccos,
            Op::Arctan,
            Op::Sinh,
            Op::Cosh,
            Op::Tanh,
            Op::Eq,
            Op::Neq,
            Op::Gt,
            Op::Lt,
            Op::Geq,
            Op::Leq,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
        ] {
            assert_eq!(Op::from_mathml_name(op.mathml_name()), Some(op));
        }
        assert_eq!(Op::from_mathml_name("bogus"), None);
    }

    #[test]
    fn constant_round_trip_and_values() {
        for c in [
            Constant::Pi,
            Constant::ExponentialE,
            Constant::True,
            Constant::False,
            Constant::Infinity,
            Constant::NotANumber,
        ] {
            assert_eq!(Constant::from_mathml_name(c.mathml_name()), Some(c));
        }
        assert_eq!(Constant::True.value(), 1.0);
        assert_eq!(Constant::False.value(), 0.0);
        assert!(Constant::NotANumber.value().is_nan());
        assert!((Constant::Pi.value() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn csymbol_urls() {
        assert_eq!(
            CsymbolKind::from_definition_url("http://www.sbml.org/sbml/symbols/time"),
            Some(CsymbolKind::Time)
        );
        assert_eq!(
            CsymbolKind::from_definition_url("urn:other/avogadro"),
            Some(CsymbolKind::Avogadro)
        );
        assert_eq!(CsymbolKind::from_definition_url("http://nothing"), None);
    }

    #[test]
    fn size_and_depth() {
        // k1 * A * B
        let e = MathExpr::apply(
            Op::Times,
            vec![MathExpr::ci("k1"), MathExpr::ci("A"), MathExpr::ci("B")],
        );
        assert_eq!(e.size(), 4);
        assert_eq!(e.depth(), 2);

        let nested = MathExpr::apply(Op::Plus, vec![e.clone(), MathExpr::num(1.0)]);
        assert_eq!(nested.size(), 6);
        assert_eq!(nested.depth(), 3);

        assert!(MathExpr::ci("x").is_leaf());
        assert!(!nested.is_leaf());
    }

    #[test]
    fn piecewise_size() {
        let pw = MathExpr::Piecewise {
            pieces: vec![(MathExpr::num(1.0), MathExpr::ci("c"))],
            otherwise: Some(Box::new(MathExpr::num(0.0))),
        };
        assert_eq!(pw.size(), 4);
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(Op::Divide.arity(), (2, 2));
        assert_eq!(Op::Plus.arity().0, 1);
        assert_eq!(Op::Not.arity(), (1, 1));
    }
}
