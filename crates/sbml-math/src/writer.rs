//! [`MathExpr`] → content MathML and infix text.

use sbml_xml::Element;

use crate::ast::{MathExpr, Op};

/// The MathML 2.0 namespace SBML requires on `<math>` elements.
pub const MATHML_NS: &str = "http://www.w3.org/1998/Math/MathML";

/// Wrap an expression in a namespaced `<math>` element.
pub fn to_math_element(expr: &MathExpr) -> Element {
    Element::new("math").with_attr("xmlns", MATHML_NS).with_child(to_element(expr))
}

/// Serialize one expression node (without the `<math>` wrapper).
pub fn to_element(expr: &MathExpr) -> Element {
    match expr {
        MathExpr::Num(v) => Element::new("cn").with_text(format_number(*v)),
        MathExpr::Ci(name) => Element::new("ci").with_text(format!(" {name} ")),
        MathExpr::Csymbol { kind, name } => Element::new("csymbol")
            .with_attr("encoding", "text")
            .with_attr("definitionURL", kind.definition_url())
            .with_text(format!(" {name} ")),
        MathExpr::Const(c) => Element::new(c.mathml_name()),
        MathExpr::Apply { op, args } => {
            let mut apply = Element::new("apply").with_child(Element::new(op.mathml_name()));
            let mut rest: &[MathExpr] = args;
            // Re-materialise qualifiers so parse(write(x)) == x.
            match op {
                Op::Root => {
                    let (degree, tail) = args.split_first().expect("root arity >= 1");
                    if degree != &MathExpr::Num(2.0) {
                        apply.push_child(
                            Element::new("degree").with_child(to_element(degree)),
                        );
                    }
                    rest = tail;
                }
                Op::Log => {
                    let (base, tail) = args.split_first().expect("log arity >= 1");
                    if base != &MathExpr::Num(10.0) {
                        apply.push_child(
                            Element::new("logbase").with_child(to_element(base)),
                        );
                    }
                    rest = tail;
                }
                _ => {}
            }
            for arg in rest {
                apply.push_child(to_element(arg));
            }
            apply
        }
        MathExpr::Call { function, args } => {
            let mut apply =
                Element::new("apply").with_child(Element::new("ci").with_text(format!(" {function} ")));
            for arg in args {
                apply.push_child(to_element(arg));
            }
            apply
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            let mut pw = Element::new("piecewise");
            for (value, cond) in pieces {
                pw.push_child(
                    Element::new("piece").with_child(to_element(value)).with_child(to_element(cond)),
                );
            }
            if let Some(other) = otherwise {
                pw.push_child(Element::new("otherwise").with_child(to_element(other)));
            }
            pw
        }
        MathExpr::Lambda { params, body } => {
            let mut lambda = Element::new("lambda");
            for p in params {
                lambda.push_child(
                    Element::new("bvar").with_child(Element::new("ci").with_text(format!(" {p} "))),
                );
            }
            lambda.push_child(to_element(body));
            lambda
        }
    }
}

/// Shortest round-trip decimal representation of a number.
pub fn format_number(v: f64) -> String {
    if v == 0.0 {
        // normalise -0.0
        return "0".to_owned();
    }
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render an expression as human-readable infix text (parseable back by
/// [`crate::infix::parse`]).
pub fn to_infix(expr: &MathExpr) -> String {
    let mut out = String::with_capacity(32);
    write_infix(expr, 0, &mut out);
    out
}

// Precedence levels: 1 or, 2 and, 3 not, 4 relational, 5 add, 6 mul,
// 7 unary minus, 8 power, 9 atom.
fn write_infix(expr: &MathExpr, parent_prec: u8, out: &mut String) {
    match expr {
        MathExpr::Num(v) => out.push_str(&format_number(*v)),
        MathExpr::Ci(name) => out.push_str(name),
        MathExpr::Csymbol { kind, .. } => out.push_str(match kind {
            crate::ast::CsymbolKind::Time => "time",
            crate::ast::CsymbolKind::Avogadro => "avogadro",
            crate::ast::CsymbolKind::Delay => "delay",
        }),
        MathExpr::Const(c) => out.push_str(c.mathml_name()),
        MathExpr::Apply { op, args } => write_infix_apply(*op, args, parent_prec, out),
        MathExpr::Call { function, args } => {
            out.push_str(function);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_infix(a, 0, out);
            }
            out.push(')');
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            out.push_str("piecewise(");
            let mut first = true;
            for (v, c) in pieces {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                write_infix(v, 0, out);
                out.push_str(", ");
                write_infix(c, 0, out);
            }
            if let Some(other) = otherwise {
                if !first {
                    out.push_str(", ");
                }
                write_infix(other, 0, out);
            }
            out.push(')');
        }
        MathExpr::Lambda { params, body } => {
            out.push_str("lambda(");
            for p in params {
                out.push_str(p);
                out.push_str(", ");
            }
            write_infix(body, 0, out);
            out.push(')');
        }
    }
}

fn write_infix_apply(op: Op, args: &[MathExpr], parent_prec: u8, out: &mut String) {
    let (symbol, prec): (&str, u8) = match op {
        Op::Plus => (" + ", 5),
        Op::Minus if args.len() == 2 => (" - ", 5),
        Op::Minus => ("-", 7), // unary
        Op::Times => (" * ", 6),
        Op::Divide => (" / ", 6),
        Op::Power => ("^", 8),
        Op::Eq => (" == ", 4),
        Op::Neq => (" != ", 4),
        Op::Gt => (" > ", 4),
        Op::Lt => (" < ", 4),
        Op::Geq => (" >= ", 4),
        Op::Leq => (" <= ", 4),
        Op::And => (" && ", 2),
        Op::Or => (" || ", 1),
        Op::Xor => ("", 0),
        Op::Not => ("!", 3),
        _ => ("", 0),
    };

    match op {
        Op::Minus if args.len() == 1 => {
            let need = parent_prec > prec;
            if need {
                out.push('(');
            }
            out.push('-');
            write_infix(&args[0], prec + 1, out);
            if need {
                out.push(')');
            }
        }
        Op::Not => {
            let need = parent_prec > prec;
            if need {
                out.push('(');
            }
            out.push('!');
            write_infix(&args[0], prec + 1, out);
            if need {
                out.push(')');
            }
        }
        Op::Plus
        | Op::Minus
        | Op::Times
        | Op::Divide
        | Op::Power
        | Op::Eq
        | Op::Neq
        | Op::Gt
        | Op::Lt
        | Op::Geq
        | Op::Leq
        | Op::And
        | Op::Or => {
            let need = parent_prec > prec || (parent_prec == prec && !op.is_associative());
            if need {
                out.push('(');
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(symbol);
                }
                // Right operand of -, /, ^ needs tighter binding.
                let child_prec = if i == 0 { prec } else { prec + 1 };
                write_infix(a, child_prec, out);
            }
            if need {
                out.push(')');
            }
        }
        // Everything else renders as a function call.
        other => {
            out.push_str(match other {
                Op::Root => "root",
                Op::Log => "log",
                other => other.mathml_name(),
            });
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_infix(a, 0, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Constant;
    use crate::parser::parse;

    fn round_trip(expr: &MathExpr) -> MathExpr {
        let element = to_math_element(expr);
        parse(&element).unwrap()
    }

    #[test]
    fn mathml_round_trip_basics() {
        let cases = vec![
            MathExpr::num(3.5),
            MathExpr::num(-0.0),
            MathExpr::num(1e-9),
            MathExpr::ci("k1"),
            MathExpr::Const(Constant::Pi),
            MathExpr::apply(Op::Times, vec![MathExpr::ci("k1"), MathExpr::ci("A")]),
            MathExpr::apply(Op::Minus, vec![MathExpr::ci("x")]),
            MathExpr::apply(Op::Root, vec![MathExpr::num(3.0), MathExpr::ci("x")]),
            MathExpr::apply(Op::Root, vec![MathExpr::num(2.0), MathExpr::ci("x")]),
            MathExpr::apply(Op::Log, vec![MathExpr::num(2.0), MathExpr::ci("x")]),
            MathExpr::Call { function: "f".into(), args: vec![MathExpr::num(1.0)] },
            MathExpr::Piecewise {
                pieces: vec![(
                    MathExpr::num(1.0),
                    MathExpr::apply(Op::Lt, vec![MathExpr::ci("x"), MathExpr::num(2.0)]),
                )],
                otherwise: Some(Box::new(MathExpr::num(0.0))),
            },
            MathExpr::Lambda {
                params: vec!["x".into()],
                body: Box::new(MathExpr::apply(
                    Op::Plus,
                    vec![MathExpr::ci("x"), MathExpr::num(1.0)],
                )),
            },
        ];
        for expr in cases {
            let back = round_trip(&expr);
            // -0.0 normalises to 0.
            if let MathExpr::Num(v) = expr {
                if v == 0.0 {
                    assert_eq!(back, MathExpr::num(0.0));
                    continue;
                }
            }
            assert_eq!(back, expr);
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(-0.0), "0");
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(-5.0), "-5");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(1e20), "100000000000000000000");
        assert_eq!(format_number(6.022e23), "602200000000000000000000");
    }

    #[test]
    fn infix_precedence() {
        let e = MathExpr::apply(
            Op::Times,
            vec![
                MathExpr::apply(Op::Plus, vec![MathExpr::ci("a"), MathExpr::ci("b")]),
                MathExpr::ci("c"),
            ],
        );
        assert_eq!(to_infix(&e), "(a + b) * c");

        let f = MathExpr::apply(
            Op::Minus,
            vec![
                MathExpr::ci("a"),
                MathExpr::apply(Op::Minus, vec![MathExpr::ci("b"), MathExpr::ci("c")]),
            ],
        );
        assert_eq!(to_infix(&f), "a - (b - c)");
    }

    #[test]
    fn infix_unary_and_power() {
        let e = MathExpr::apply(
            Op::Power,
            vec![MathExpr::ci("x"), MathExpr::num(2.0)],
        );
        assert_eq!(to_infix(&e), "x^2");
        let neg = MathExpr::apply(Op::Minus, vec![MathExpr::ci("x")]);
        assert_eq!(to_infix(&neg), "-x");
        let prod = MathExpr::apply(Op::Times, vec![MathExpr::num(2.0), neg]);
        assert_eq!(to_infix(&prod), "2 * -x"); // re-parses identically
    }

    #[test]
    fn infix_functions() {
        let e = MathExpr::apply(Op::Sin, vec![MathExpr::ci("x")]);
        assert_eq!(to_infix(&e), "sin(x)");
        let call = MathExpr::Call {
            function: "mm".into(),
            args: vec![MathExpr::ci("S"), MathExpr::ci("V")],
        };
        assert_eq!(to_infix(&call), "mm(S, V)");
    }

    #[test]
    fn math_element_is_namespaced() {
        let m = to_math_element(&MathExpr::num(1.0));
        assert_eq!(m.attr("xmlns"), Some(MATHML_NS));
        assert_eq!(m.name, "math");
    }
}
