//! Identifier collection, renaming and substitution over expression trees.
//!
//! The merge engine renames components to resolve ID clashes; every formula
//! that mentions a renamed component must be rewritten, which is what
//! [`rename`] does (respecting lambda-bound variables). [`collect_identifiers`]
//! feeds the conflict checker, and [`substitute`] inlines function arguments.

use std::collections::{BTreeSet, HashMap};
use std::hash::BuildHasher;

use crate::ast::MathExpr;

/// A read-only identifier mapping (old id → new id).
///
/// [`rename`] and [`crate::pattern::Pattern::of_mapped`] were originally
/// hard-wired to `HashMap`; callers that keep their mappings in sharded or
/// overlaid structures (a composition engine running merge passes
/// concurrently, a scoped rename that hides lambda/local bindings)
/// implement this trait instead of materialising a merged map per lookup.
pub trait Resolver {
    /// The replacement for `id`, or `None` to leave it unchanged.
    fn resolve(&self, id: &str) -> Option<&str>;

    /// `true` when no identifier resolves — lets walkers skip work. The
    /// default is conservative (`false`).
    fn is_identity(&self) -> bool {
        false
    }
}

impl<S: BuildHasher> Resolver for HashMap<String, String, S> {
    fn resolve(&self, id: &str) -> Option<&str> {
        self.get(id).map(String::as_str)
    }

    fn is_identity(&self) -> bool {
        self.is_empty()
    }
}

impl<R: Resolver + ?Sized> Resolver for &R {
    fn resolve(&self, id: &str) -> Option<&str> {
        (**self).resolve(id)
    }

    fn is_identity(&self) -> bool {
        (**self).is_identity()
    }
}

/// All free identifiers referenced by the expression (sorted, deduplicated).
/// Function-call targets are included; lambda-bound parameters are not.
pub fn collect_identifiers(expr: &MathExpr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut bound = Vec::new();
    walk_collect(expr, &mut bound, &mut out);
    out
}

fn walk_collect(expr: &MathExpr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match expr {
        MathExpr::Ci(name) => {
            if !bound.iter().any(|b| b == name) {
                out.insert(name.clone());
            }
        }
        MathExpr::Apply { args, .. } => {
            for a in args {
                walk_collect(a, bound, out);
            }
        }
        MathExpr::Call { function, args } => {
            out.insert(function.clone());
            for a in args {
                walk_collect(a, bound, out);
            }
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            for (v, c) in pieces {
                walk_collect(v, bound, out);
                walk_collect(c, bound, out);
            }
            if let Some(other) = otherwise {
                walk_collect(other, bound, out);
            }
        }
        MathExpr::Lambda { params, body } => {
            let before = bound.len();
            bound.extend(params.iter().cloned());
            walk_collect(body, bound, out);
            bound.truncate(before);
        }
        MathExpr::Num(_) | MathExpr::Csymbol { .. } | MathExpr::Const(_) => {}
    }
}

/// Rename free identifiers (and function-call targets) through `map`.
/// Lambda-bound parameters shadow the map inside their body.
pub fn rename<S: BuildHasher>(expr: &MathExpr, map: &HashMap<String, String, S>) -> MathExpr {
    rename_resolved(expr, map)
}

/// [`rename`] over any [`Resolver`] (sharded tables, scoped overlays, ...).
pub fn rename_resolved<R: Resolver + ?Sized>(expr: &MathExpr, map: &R) -> MathExpr {
    let mut bound = Vec::new();
    walk_rename(expr, map, &mut bound)
}

fn walk_rename<R: Resolver + ?Sized>(
    expr: &MathExpr,
    map: &R,
    bound: &mut Vec<String>,
) -> MathExpr {
    match expr {
        MathExpr::Ci(name) => {
            if bound.iter().any(|b| b == name) {
                expr.clone()
            } else if let Some(new) = map.resolve(name) {
                MathExpr::Ci(new.to_owned())
            } else {
                expr.clone()
            }
        }
        MathExpr::Apply { op, args } => MathExpr::Apply {
            op: *op,
            args: args.iter().map(|a| walk_rename(a, map, bound)).collect(),
        },
        MathExpr::Call { function, args } => MathExpr::Call {
            function: map.resolve(function).map(str::to_owned).unwrap_or_else(|| function.clone()),
            args: args.iter().map(|a| walk_rename(a, map, bound)).collect(),
        },
        MathExpr::Piecewise { pieces, otherwise } => MathExpr::Piecewise {
            pieces: pieces
                .iter()
                .map(|(v, c)| (walk_rename(v, map, bound), walk_rename(c, map, bound)))
                .collect(),
            otherwise: otherwise.as_ref().map(|o| Box::new(walk_rename(o, map, bound))),
        },
        MathExpr::Lambda { params, body } => {
            let before = bound.len();
            bound.extend(params.iter().cloned());
            let new_body = walk_rename(body, map, bound);
            bound.truncate(before);
            MathExpr::Lambda { params: params.clone(), body: Box::new(new_body) }
        }
        MathExpr::Num(_) | MathExpr::Csymbol { .. } | MathExpr::Const(_) => expr.clone(),
    }
}

/// [`rename`] mutating the expression **in place**: free identifier
/// leaves (and call targets) are rewritten where they stand, so callers
/// that already own the tree (a freshly cloned component about to be
/// inserted) skip the full rebuild-and-reallocate walk.
pub fn rename_in_place<R: Resolver + ?Sized>(expr: &mut MathExpr, map: &R) {
    if map.is_identity() {
        return;
    }
    let mut bound = Vec::new();
    walk_rename_in_place(expr, map, &mut bound);
}

fn walk_rename_in_place<R: Resolver + ?Sized>(
    expr: &mut MathExpr,
    map: &R,
    bound: &mut Vec<String>,
) {
    match expr {
        MathExpr::Ci(name) => {
            if !bound.iter().any(|b| b == name) {
                if let Some(new) = map.resolve(name) {
                    *name = new.to_owned();
                }
            }
        }
        MathExpr::Apply { args, .. } => {
            for a in args {
                walk_rename_in_place(a, map, bound);
            }
        }
        MathExpr::Call { function, args } => {
            if let Some(new) = map.resolve(function) {
                *function = new.to_owned();
            }
            for a in args {
                walk_rename_in_place(a, map, bound);
            }
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            for (v, c) in pieces {
                walk_rename_in_place(v, map, bound);
                walk_rename_in_place(c, map, bound);
            }
            if let Some(other) = otherwise {
                walk_rename_in_place(other, map, bound);
            }
        }
        MathExpr::Lambda { params, body } => {
            let before = bound.len();
            bound.extend(params.iter().cloned());
            walk_rename_in_place(body, map, bound);
            bound.truncate(before);
        }
        MathExpr::Num(_) | MathExpr::Csymbol { .. } | MathExpr::Const(_) => {}
    }
}

/// Replace every free occurrence of identifier `name` with `replacement`.
pub fn substitute(expr: &MathExpr, name: &str, replacement: &MathExpr) -> MathExpr {
    match expr {
        MathExpr::Ci(n) if n == name => replacement.clone(),
        MathExpr::Apply { op, args } => MathExpr::Apply {
            op: *op,
            args: args.iter().map(|a| substitute(a, name, replacement)).collect(),
        },
        MathExpr::Call { function, args } => MathExpr::Call {
            function: function.clone(),
            args: args.iter().map(|a| substitute(a, name, replacement)).collect(),
        },
        MathExpr::Piecewise { pieces, otherwise } => MathExpr::Piecewise {
            pieces: pieces
                .iter()
                .map(|(v, c)| (substitute(v, name, replacement), substitute(c, name, replacement)))
                .collect(),
            otherwise: otherwise.as_ref().map(|o| Box::new(substitute(o, name, replacement))),
        },
        MathExpr::Lambda { params, body } => {
            if params.iter().any(|p| p == name) {
                expr.clone() // shadowed
            } else {
                MathExpr::Lambda {
                    params: params.clone(),
                    body: Box::new(substitute(body, name, replacement)),
                }
            }
        }
        other => other.clone(),
    }
}

/// Expand a function definition call by substituting arguments into the
/// lambda body. Used by the simulator to flatten kinetic laws once instead
/// of interpreting calls on every step.
pub fn inline_call(params: &[String], body: &MathExpr, args: &[MathExpr]) -> MathExpr {
    let mut result = body.clone();
    for (p, a) in params.iter().zip(args) {
        result = substitute(&result, p, a);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infix::parse;

    #[test]
    fn collect_basic() {
        let e = parse("k1*A + f(B, k2)").unwrap();
        let ids = collect_identifiers(&e);
        let expected: Vec<&str> = vec!["A", "B", "f", "k1", "k2"];
        assert_eq!(ids.iter().map(String::as_str).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn collect_skips_bound_params() {
        let lambda = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + y").unwrap()),
        };
        let ids = collect_identifiers(&lambda);
        assert!(ids.contains("y"));
        assert!(!ids.contains("x"));
    }

    #[test]
    fn rename_free_ids() {
        let e = parse("k1*A + k1*B").unwrap();
        let mut map = HashMap::new();
        map.insert("k1".to_owned(), "kf".to_owned());
        let renamed = rename(&e, &map);
        assert_eq!(renamed, parse("kf*A + kf*B").unwrap());
    }

    #[test]
    fn rename_respects_lambda_shadowing() {
        let lambda = MathExpr::Lambda {
            params: vec!["k1".into()],
            body: Box::new(parse("k1 + other").unwrap()),
        };
        let mut map = HashMap::new();
        map.insert("k1".to_owned(), "kf".to_owned());
        map.insert("other".to_owned(), "renamed".to_owned());
        let out = rename(&lambda, &map);
        match out {
            MathExpr::Lambda { params, body } => {
                assert_eq!(params, vec!["k1".to_owned()]);
                assert_eq!(*body, parse("k1 + renamed").unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rename_in_place_equals_rename() {
        let exprs = [
            parse("k1*A + k1*B").unwrap(),
            parse("f(x) + g(k1)").unwrap(),
            parse("piecewise(a, a < b, b)").unwrap(),
            MathExpr::Lambda {
                params: vec!["k1".into()],
                body: Box::new(parse("k1 + other").unwrap()),
            },
        ];
        let mut map = HashMap::new();
        map.insert("k1".to_owned(), "kf".to_owned());
        map.insert("other".to_owned(), "o2".to_owned());
        map.insert("g".to_owned(), "f".to_owned());
        for e in exprs {
            let rebuilt = rename(&e, &map);
            let mut in_place = e.clone();
            rename_in_place(&mut in_place, &map);
            assert_eq!(in_place, rebuilt);
        }
    }

    #[test]
    fn rename_function_targets() {
        let e = parse("f(x) + g(x)").unwrap();
        let mut map = HashMap::new();
        map.insert("f".to_owned(), "h".to_owned());
        let out = rename(&e, &map);
        assert_eq!(out, parse("h(x) + g(x)").unwrap());
    }

    #[test]
    fn substitute_expression() {
        let e = parse("x^2 + x").unwrap();
        let out = substitute(&e, "x", &parse("a+b").unwrap());
        assert_eq!(out, parse("(a+b)^2 + (a+b)").unwrap());
    }

    #[test]
    fn substitute_shadowed_by_lambda() {
        let lambda = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + 1").unwrap()),
        };
        let out = substitute(&lambda, "x", &MathExpr::num(9.0));
        assert_eq!(out, lambda);
    }

    #[test]
    fn inline_michaelis_menten() {
        let body = parse("Vmax * S / (Km + S)").unwrap();
        let params = vec!["S".to_owned(), "Vmax".to_owned(), "Km".to_owned()];
        let args = vec![parse("glc").unwrap(), MathExpr::num(10.0), MathExpr::num(2.0)];
        let inlined = inline_call(&params, &body, &args);
        assert_eq!(inlined, parse("10 * glc / (2 + glc)").unwrap());
    }

    #[test]
    fn rename_inside_piecewise() {
        let e = parse("piecewise(a, a < b, b)").unwrap();
        let mut map = HashMap::new();
        map.insert("a".to_owned(), "z".to_owned());
        assert_eq!(rename(&e, &map), parse("piecewise(z, z < b, b)").unwrap());
    }
}
