//! Commutativity-aware canonical patterns (the paper's Fig. 7).
//!
//! The paper determines whether two pieces of model mathematics are
//! equivalent by extracting a *pattern* string from each MathML tree and
//! comparing the strings. The pattern takes commutative operators into
//! account "so that it will match commutative maths functions, equations or
//! assignments, regardless of the order of the operands", and leaf
//! identifiers are rewritten through the current ID *mappings* accumulated by
//! the merge (so that `k1*A` in model 2 matches `kf*A` in model 1 once
//! `k1 → kf` has been established).
//!
//! Canonicalisation rules implemented here:
//!
//! * children of commutative operators (`plus`, `times`, `eq`, `neq`, `and`,
//!   `or`, `xor`) are **sorted** by their own pattern text,
//! * associative commutative operators (`plus`, `times`, `and`, `or`) are
//!   **flattened** first, so `(a+b)+c` and `a+(b+c)` agree (an extension of
//!   the paper's algorithm that strictly increases matching power),
//! * children of non-commutative operators carry their child index, exactly
//!   as in the paper's `getMaths` (prefix `C + child number`),
//! * numbers are normalised through the shortest round-trip representation
//!   (`2` matches `2.0`),
//! * lambda parameters are α-renamed to positional names, so function
//!   definitions equal up to bound-variable naming produce the same pattern.

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;

use crate::ast::{MathExpr, Op};
use crate::writer::format_number;

/// A canonical pattern; equality of patterns = equivalence of expressions
/// (up to commutativity, associativity and the supplied ID mappings).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern(String);

impl Pattern {
    /// Pattern of an expression with no ID mappings.
    pub fn of(expr: &MathExpr) -> Pattern {
        Pattern::of_mapped(expr, &HashMap::new())
    }

    /// Pattern of an expression, rewriting identifiers through `mappings`
    /// (model-2 id → model-1 id) first, as the merge algorithm does.
    /// Generic over the map's hasher so callers with faster non-SipHash
    /// tables don't have to convert.
    pub fn of_mapped<S: BuildHasher>(expr: &MathExpr, mappings: &HashMap<String, String, S>) -> Pattern {
        let mut out = String::with_capacity(expr.size() * 6);
        let mut bound = Vec::new();
        build(expr, mappings, &mut bound, &mut out);
        Pattern(out)
    }

    /// The canonical text (stable across runs; suitable as a hash key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Are two expressions equivalent under the given ID mappings?
///
/// `mappings` is applied to **both** sides (the merge applies its mapping
/// table when reading either model's math).
pub fn equivalent<S: BuildHasher>(
    a: &MathExpr,
    b: &MathExpr,
    mappings: &HashMap<String, String, S>,
) -> bool {
    Pattern::of_mapped(a, mappings) == Pattern::of_mapped(b, mappings)
}

fn build<S: BuildHasher>(
    expr: &MathExpr,
    mappings: &HashMap<String, String, S>,
    bound: &mut Vec<String>,
    out: &mut String,
) {
    match expr {
        MathExpr::Num(v) => {
            out.push_str("n:");
            out.push_str(&format_number(*v));
        }
        MathExpr::Ci(name) => {
            // Bound variables (lambda params) are positional.
            if let Some(idx) = bound.iter().rposition(|b| b == name) {
                out.push_str("b:");
                out.push_str(&idx.to_string());
            } else {
                let mapped = mappings.get(name).map(String::as_str).unwrap_or(name);
                out.push_str("v:");
                out.push_str(mapped);
            }
        }
        MathExpr::Csymbol { kind, .. } => {
            out.push_str("s:");
            out.push_str(match kind {
                crate::ast::CsymbolKind::Time => "time",
                crate::ast::CsymbolKind::Avogadro => "avogadro",
                crate::ast::CsymbolKind::Delay => "delay",
            });
        }
        MathExpr::Const(c) => {
            out.push_str("c:");
            out.push_str(c.mathml_name());
        }
        MathExpr::Apply { op, args } => build_apply(*op, args, mappings, bound, out),
        MathExpr::Call { function, args } => {
            out.push_str("f:");
            let mapped = mappings.get(function).map(String::as_str).unwrap_or(function);
            out.push_str(mapped);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                build(a, mappings, bound, out);
            }
            out.push(')');
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            // Piece order is semantic (first true condition wins), so order
            // is preserved.
            out.push_str("pw(");
            for (i, (v, c)) in pieces.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                build(v, mappings, bound, out);
                out.push('|');
                build(c, mappings, bound, out);
                out.push(']');
            }
            if let Some(other) = otherwise {
                out.push_str(",else:");
                build(other, mappings, bound, out);
            }
            out.push(')');
        }
        MathExpr::Lambda { params, body } => {
            out.push_str("lam");
            out.push_str(&params.len().to_string());
            out.push('(');
            let depth_before = bound.len();
            bound.extend(params.iter().cloned());
            build(body, mappings, bound, out);
            bound.truncate(depth_before);
            out.push(')');
        }
    }
}

fn build_apply<S: BuildHasher>(
    op: Op,
    args: &[MathExpr],
    mappings: &HashMap<String, String, S>,
    bound: &mut Vec<String>,
    out: &mut String,
) {
    out.push_str(op.mathml_name());
    out.push('(');
    if op.is_commutative() {
        // Flatten associative nests, then sort child pattern texts.
        let mut flat: Vec<&MathExpr> = Vec::with_capacity(args.len());
        if op.is_associative() {
            flatten(op, args, &mut flat);
        } else {
            flat.extend(args.iter());
        }
        let mut texts: Vec<String> = flat
            .iter()
            .map(|a| {
                let mut s = String::new();
                build(a, mappings, bound, &mut s);
                s
            })
            .collect();
        texts.sort_unstable();
        for (i, t) in texts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(t);
        }
    } else {
        // Paper Fig. 7: non-commutative children carry their child number.
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('C');
            out.push_str(&i.to_string());
            out.push(':');
            build(a, mappings, bound, out);
        }
    }
    out.push(')');
}

fn flatten<'e>(op: Op, args: &'e [MathExpr], out: &mut Vec<&'e MathExpr>) {
    for a in args {
        match a {
            MathExpr::Apply { op: inner, args: inner_args } if *inner == op => {
                flatten(op, inner_args, out)
            }
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infix::parse;

    fn pat(src: &str) -> Pattern {
        Pattern::of(&parse(src).unwrap())
    }

    #[test]
    fn commutative_orders_match() {
        assert_eq!(pat("k1*A*B"), pat("B*k1*A"));
        assert_eq!(pat("a+b"), pat("b+a"));
        assert_eq!(pat("a == b"), pat("b == a"));
        assert_eq!(pat("x && y"), pat("y && x"));
    }

    #[test]
    fn non_commutative_orders_do_not_match() {
        assert_ne!(pat("a-b"), pat("b-a"));
        assert_ne!(pat("a/b"), pat("b/a"));
        assert_ne!(pat("a^b"), pat("b^a"));
        assert_ne!(pat("a < b"), pat("b < a"));
    }

    #[test]
    fn associative_nesting_matches() {
        assert_eq!(pat("(a+b)+c"), pat("a+(b+c)"));
        assert_eq!(pat("(a*b)*c"), pat("c*(b*a)"));
    }

    #[test]
    fn numeric_normalisation() {
        assert_eq!(pat("2*x"), pat("2.0*x"));
        assert_ne!(pat("2*x"), pat("3*x"));
    }

    #[test]
    fn distinct_structures_distinct_patterns() {
        assert_ne!(pat("k1*A"), pat("k1+A"));
        assert_ne!(pat("k1*A"), pat("k1*A*A"));
        assert_ne!(pat("Vmax*S/(Km+S)"), pat("Vmax*S/(Km*S)"));
    }

    #[test]
    fn mappings_applied_to_identifiers() {
        let a = parse("kf*X").unwrap();
        let b = parse("k1*X").unwrap();
        let mut map = HashMap::new();
        assert!(!equivalent(&a, &b, &map));
        map.insert("k1".to_owned(), "kf".to_owned());
        assert!(equivalent(&a, &b, &map));
    }

    #[test]
    fn mappings_applied_to_function_calls() {
        let a = parse("f(x)").unwrap();
        let b = parse("g(x)").unwrap();
        let mut map = HashMap::new();
        assert!(!equivalent(&a, &b, &map));
        map.insert("g".to_owned(), "f".to_owned());
        assert!(equivalent(&a, &b, &map));
    }

    #[test]
    fn lambda_alpha_equivalence() {
        let f = MathExpr::Lambda {
            params: vec!["x".into(), "y".into()],
            body: Box::new(parse("x*y + x").unwrap()),
        };
        let g = MathExpr::Lambda {
            params: vec!["u".into(), "v".into()],
            body: Box::new(parse("u*v + u").unwrap()),
        };
        assert_eq!(Pattern::of(&f), Pattern::of(&g));

        // Swapped parameter use is NOT alpha-equivalent.
        let h = MathExpr::Lambda {
            params: vec!["u".into(), "v".into()],
            body: Box::new(parse("u*v + v").unwrap()),
        };
        assert_ne!(Pattern::of(&f), Pattern::of(&h));
    }

    #[test]
    fn bound_variables_shadow_mappings() {
        // Inside lambda(x, ...), `x` is positional even if mappings rename x.
        let f = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + y").unwrap()),
        };
        let mut map = HashMap::new();
        map.insert("x".to_owned(), "z".to_owned());
        let p = Pattern::of_mapped(&f, &map);
        assert!(p.as_str().contains("b:0"), "{p}");
        assert!(!p.as_str().contains("v:z + b"), "{p}");
    }

    #[test]
    fn piecewise_order_is_semantic() {
        assert_ne!(pat("piecewise(1, x<5, 2, x<9, 0)"), pat("piecewise(2, x<9, 1, x<5, 0)"));
        assert_eq!(pat("piecewise(1, x<5, 0)"), pat("piecewise(1, x<5, 0)"));
        // Mirrored relations (x<5 vs 5>x) are deliberately NOT unified: the
        // paper's pattern only canonicalises commutative operators.
        assert_ne!(pat("piecewise(1, x<5, 0)"), pat("piecewise(1, 5>x, 0)"));
    }

    #[test]
    fn mass_action_examples_from_paper() {
        // Paper Fig. 10/11: -k1[A], k1[A]-k2[B], -k1[A][B].
        // Note `-k1*A` parses as `(-k1)*A` (unary minus binds tightest,
        // as in libSBML), so compare explicitly-grouped forms.
        assert_eq!(pat("-(k1*A)"), pat("-(A*k1)"));
        assert_eq!(pat("(-k1)*A"), pat("A*(-k1)"));
        assert_eq!(pat("k1*A - k2*B"), pat("A*k1 - B*k2"));
        assert_ne!(pat("k1*A - k2*B"), pat("k2*B - k1*A"));
        assert_eq!(pat("k1*A*B"), pat("k1*B*A"));
    }

    #[test]
    fn pattern_is_stable_hash_key() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(pat("k1*A*B"));
        assert!(set.contains(&pat("B*A*k1")));
        assert!(!set.contains(&pat("B+A+k1")));
    }

}
