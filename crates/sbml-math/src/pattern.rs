//! Commutativity-aware canonical patterns (the paper's Fig. 7).
//!
//! The paper determines whether two pieces of model mathematics are
//! equivalent by extracting a *pattern* string from each MathML tree and
//! comparing the strings. The pattern takes commutative operators into
//! account "so that it will match commutative maths functions, equations or
//! assignments, regardless of the order of the operands", and leaf
//! identifiers are rewritten through the current ID *mappings* accumulated by
//! the merge (so that `k1*A` in model 2 matches `kf*A` in model 1 once
//! `k1 → kf` has been established).
//!
//! Canonicalisation rules implemented here:
//!
//! * children of commutative operators (`plus`, `times`, `eq`, `neq`, `and`,
//!   `or`, `xor`) are **sorted** by their own pattern text,
//! * associative commutative operators (`plus`, `times`, `and`, `or`) are
//!   **flattened** first, so `(a+b)+c` and `a+(b+c)` agree (an extension of
//!   the paper's algorithm that strictly increases matching power),
//! * children of non-commutative operators carry their child index, exactly
//!   as in the paper's `getMaths` (prefix `C + child number`),
//! * numbers are normalised through the shortest round-trip representation
//!   (`2` matches `2.0`),
//! * lambda parameters are α-renamed to positional names, so function
//!   definitions equal up to bound-variable naming produce the same pattern.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;

use crate::ast::{MathExpr, Op};
use crate::rewrite::Resolver;
use crate::writer::format_number;

/// A canonical pattern; equality of patterns = equivalence of expressions
/// (up to commutativity, associativity and the supplied ID mappings).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern(String);

impl Pattern {
    /// Pattern of an expression with no ID mappings.
    pub fn of(expr: &MathExpr) -> Pattern {
        Pattern::of_mapped(expr, &HashMap::new())
    }

    /// Pattern of an expression, rewriting identifiers through `mappings`
    /// (model-2 id → model-1 id) first, as the merge algorithm does.
    /// Generic over the map's hasher so callers with faster non-SipHash
    /// tables don't have to convert.
    pub fn of_mapped<S: BuildHasher>(expr: &MathExpr, mappings: &HashMap<String, String, S>) -> Pattern {
        Pattern::of_resolved(expr, mappings)
    }

    /// [`Pattern::of_mapped`] over any [`Resolver`].
    pub fn of_resolved<R: Resolver + ?Sized>(expr: &MathExpr, mappings: &R) -> Pattern {
        let mut out = String::with_capacity(expr.size() * 6);
        let mut bound = Vec::new();
        build(expr, mappings, &mut bound, &mut out);
        Pattern(out)
    }

    /// The canonical text (stable across runs; suitable as a hash key).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A pattern string, adopted verbatim. The caller asserts the text was
    /// produced by this module (a cached canonical key section); arbitrary
    /// strings produce patterns that compare unequal to every real one.
    pub fn from_canonical_text(text: String) -> Pattern {
        Pattern(text)
    }

    /// The incremental rename path: rewrite the identifier leaves of an
    /// **already-canonical** pattern through `mappings` and re-normalise
    /// only the commutative operand groups whose members actually changed.
    ///
    /// Equivalent to `Pattern::of_mapped(expr, mappings)` where `self ==
    /// Pattern::of(expr)` (property-tested), but without revisiting the
    /// expression tree: untouched subtrees are copied as slices and
    /// already-sorted groups keep their order, so a rename touching `k`
    /// leaves costs one scan of the pattern text plus re-sorting the dirty
    /// groups instead of a full re-canonicalisation. Returns
    /// [`Cow::Borrowed`] when no leaf resolves (the common
    /// no-relevant-mapping case: zero allocation).
    ///
    /// Bound variables are already positional (`b:i`) in canonical text, so
    /// lambda shadowing is inherited from the original canonicalisation —
    /// a mapping for a shadowed name cannot apply, exactly as in
    /// [`Pattern::of_mapped`].
    pub fn rename_mapped<S: BuildHasher>(
        &self,
        mappings: &HashMap<String, String, S>,
    ) -> Cow<'_, Pattern> {
        self.rename_resolved(mappings)
    }

    /// [`Pattern::rename_mapped`] over any [`Resolver`].
    pub fn rename_resolved<R: Resolver + ?Sized>(&self, mappings: &R) -> Cow<'_, Pattern> {
        match rename_canonical_text(&self.0, mappings) {
            Some(new) => Cow::Owned(Pattern(new)),
            None => Cow::Borrowed(self),
        }
    }
}

/// Text-level entry point of the incremental rename: rewrite canonical
/// pattern `text` under `mappings`, returning `None` when nothing changed
/// (zero allocation — callers keep the original slice). Callers that hold
/// cached pattern text (canonical-key sections) use this directly instead
/// of round-tripping through a [`Pattern`] value.
pub fn rename_canonical_text<R: Resolver + ?Sized>(text: &str, mappings: &R) -> Option<String> {
    if mappings.is_identity() {
        return None;
    }
    incremental::rewrite_node(text, mappings)
}

/// Split canonical text on `sep` occurrences at bracket depth 0 (over
/// `(`/`[`) — the tokenizer the incremental rename itself walks with,
/// exported for consumers that slice cached canonical *keys* built from
/// pattern sections (e.g. `trigger|delay|assignments` event keys).
/// Yields nothing for an empty string.
pub fn split_canonical_top_level(s: &str, sep: u8) -> impl Iterator<Item = &str> {
    incremental::split_top_level(s, sep)
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Are two expressions equivalent under the given ID mappings?
///
/// `mappings` is applied to **both** sides (the merge applies its mapping
/// table when reading either model's math).
pub fn equivalent<S: BuildHasher>(
    a: &MathExpr,
    b: &MathExpr,
    mappings: &HashMap<String, String, S>,
) -> bool {
    Pattern::of_mapped(a, mappings) == Pattern::of_mapped(b, mappings)
}

fn build<R: Resolver + ?Sized>(
    expr: &MathExpr,
    mappings: &R,
    bound: &mut Vec<String>,
    out: &mut String,
) {
    match expr {
        MathExpr::Num(v) => {
            out.push_str("n:");
            out.push_str(&format_number(*v));
        }
        MathExpr::Ci(name) => {
            // Bound variables (lambda params) are positional.
            if let Some(idx) = bound.iter().rposition(|b| b == name) {
                out.push_str("b:");
                out.push_str(&idx.to_string());
            } else {
                let mapped = mappings.resolve(name).unwrap_or(name);
                out.push_str("v:");
                out.push_str(mapped);
            }
        }
        MathExpr::Csymbol { kind, .. } => {
            out.push_str("s:");
            out.push_str(match kind {
                crate::ast::CsymbolKind::Time => "time",
                crate::ast::CsymbolKind::Avogadro => "avogadro",
                crate::ast::CsymbolKind::Delay => "delay",
            });
        }
        MathExpr::Const(c) => {
            out.push_str("c:");
            out.push_str(c.mathml_name());
        }
        MathExpr::Apply { op, args } => build_apply(*op, args, mappings, bound, out),
        MathExpr::Call { function, args } => {
            out.push_str("f:");
            let mapped = mappings.resolve(function).unwrap_or(function);
            out.push_str(mapped);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                build(a, mappings, bound, out);
            }
            out.push(')');
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            // Piece order is semantic (first true condition wins), so order
            // is preserved.
            out.push_str("pw(");
            for (i, (v, c)) in pieces.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                build(v, mappings, bound, out);
                out.push('|');
                build(c, mappings, bound, out);
                out.push(']');
            }
            if let Some(other) = otherwise {
                out.push_str(",else:");
                build(other, mappings, bound, out);
            }
            out.push(')');
        }
        MathExpr::Lambda { params, body } => {
            out.push_str("lam");
            out.push_str(&params.len().to_string());
            out.push('(');
            let depth_before = bound.len();
            bound.extend(params.iter().cloned());
            build(body, mappings, bound, out);
            bound.truncate(depth_before);
            out.push(')');
        }
    }
}

fn build_apply<R: Resolver + ?Sized>(
    op: Op,
    args: &[MathExpr],
    mappings: &R,
    bound: &mut Vec<String>,
    out: &mut String,
) {
    out.push_str(op.mathml_name());
    out.push('(');
    if op.is_commutative() {
        // Flatten associative nests, then sort child pattern texts.
        let mut flat: Vec<&MathExpr> = Vec::with_capacity(args.len());
        if op.is_associative() {
            flatten(op, args, &mut flat);
        } else {
            flat.extend(args.iter());
        }
        let mut texts: Vec<String> = flat
            .iter()
            .map(|a| {
                let mut s = String::new();
                build(a, mappings, bound, &mut s);
                s
            })
            .collect();
        texts.sort_unstable();
        for (i, t) in texts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(t);
        }
    } else {
        // Paper Fig. 7: non-commutative children carry their child number.
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('C');
            out.push_str(&i.to_string());
            out.push(':');
            build(a, mappings, bound, out);
        }
    }
    out.push(')');
}

fn flatten<'e>(op: Op, args: &'e [MathExpr], out: &mut Vec<&'e MathExpr>) {
    for a in args {
        match a {
            MathExpr::Apply { op: inner, args: inner_args } if *inner == op => {
                flatten(op, inner_args, out)
            }
            other => out.push(other),
        }
    }
}

/// The string-level incremental rename over canonical pattern text: see
/// [`Pattern::rename_mapped`].
///
/// Grammar of the canonical text (as emitted by [`build`]):
///
/// ```text
/// node := "n:" num | "b:" idx | "v:" id | "s:" sym | "c:" const
///       | "f:" id "(" node,* ")"
///       | "pw(" ("[" node "|" node "]"),* (",else:" node)? ")"
///       | "lam" k "(" node ")"
///       | opname "(" children ")"
/// children (commutative op)     := node ("," node)*        -- sorted
/// children (non-commutative op) := "C" i ":" node ("," "C" i ":" node)*
/// ```
///
/// Identifiers are SBML ids (word characters), so the separators
/// `, ( ) [ ] |` can never occur inside a leaf; nesting depth over
/// `(`/`[` makes top-level splitting unambiguous.
mod incremental {
    use super::{Op, Resolver};

    /// Does the canonical text contain any identifier leaf (`v:` / `f:`)
    /// the resolver maps? A flat byte scan — no recursion, no allocation —
    /// that prunes clean subtrees before the structural walk descends
    /// into them. Leaf starts are recognised positionally: a `v`/`f`
    /// followed by `:` at the start of a node, i.e. at the very beginning
    /// or right after one of the separators `, ( [ | :` (identifiers are
    /// word characters, so neither marker can occur *inside* one).
    fn contains_mapped_leaf<R: Resolver + ?Sized>(s: &str, maps: &R) -> bool {
        let bytes = s.as_bytes();
        let mut at_boundary = true;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if at_boundary && (b == b'v' || b == b'f') && bytes.get(i + 1) == Some(&b':') {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len()
                    && !matches!(bytes[end], b',' | b')' | b']' | b'|' | b'(')
                {
                    end += 1;
                }
                if maps.resolve(&s[start..end]).is_some() {
                    return true;
                }
                i = end;
                at_boundary = false;
                continue;
            }
            at_boundary = matches!(b, b',' | b'(' | b'[' | b'|' | b':');
            i += 1;
        }
        false
    }

    /// Rewrite one node; `None` means the subtree is unchanged (callers
    /// then reuse the original slice — zero copies for clean regions).
    /// Child lists are gated by the flat dirty-scan, so a clean subtree
    /// costs one pass over its text and is never structurally parsed.
    pub(super) fn rewrite_node<R: Resolver + ?Sized>(s: &str, maps: &R) -> Option<String> {
        let bytes = s.as_bytes();
        if bytes.len() >= 2 && bytes[1] == b':' {
            return match bytes[0] {
                b'v' => maps.resolve(&s[2..]).map(|new| format!("v:{new}")),
                // numbers, bound variables, csymbols, constants: no ids
                b'n' | b'b' | b's' | b'c' => None,
                b'f' => rewrite_call(s, maps),
                _ => None,
            };
        }
        let open = s.find('(')?;
        let head = &s[..open];
        let inner = &s[open + 1..s.len() - 1];
        if head == "pw" {
            return rewrite_piecewise(s, inner, open, maps);
        }
        if head.starts_with("lam") {
            let body = rewrite_node(inner, maps)?;
            return Some(format!("{head}({body})"));
        }
        let commutative = Op::from_mathml_name(head).is_some_and(Op::is_commutative);
        if commutative {
            rewrite_commutative(s, inner, open, maps)
        } else {
            // Non-commutative children keep their `Ci:` prefix and order.
            splice_children(s, inner, open, maps, |child, maps| {
                let colon = child.find(':').expect("Ci: prefix on non-commutative child");
                rewrite_node(&child[colon + 1..], maps)
                    .map(|new| format!("{}:{new}", &child[..colon]))
            })
        }
    }

    fn rewrite_call<R: Resolver + ?Sized>(s: &str, maps: &R) -> Option<String> {
        let open = s.find('(').expect("call pattern has an argument list");
        let name = &s[2..open];
        let mapped = maps.resolve(name);
        let inner = &s[open + 1..s.len() - 1];
        let args = splice_children(s, inner, open, maps, |child, maps| rewrite_node(child, maps));
        match (mapped, args) {
            (None, None) => None,
            (name_change, args_change) => {
                let final_name = name_change.unwrap_or(name);
                let args_text = match &args_change {
                    Some(new) => {
                        // splice_children rebuilt the whole node under the
                        // ORIGINAL head; keep just its argument list.
                        &new[open + 1..new.len() - 1]
                    }
                    None => inner,
                };
                Some(format!("f:{final_name}({args_text})"))
            }
        }
    }

    fn rewrite_piecewise<R: Resolver + ?Sized>(
        s: &str,
        inner: &str,
        open: usize,
        maps: &R,
    ) -> Option<String> {
        // Pieces are "[value|cond]" segments (order semantic — never
        // re-sorted), optionally followed by an ",else:" tail.
        let mut changed = false;
        let mut out = String::with_capacity(s.len());
        out.push_str(&s[..open + 1]);
        for (i, segment) in split_top_level(inner, b',').enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(tail) = segment.strip_prefix("else:") {
                match gated_rewrite(tail, maps) {
                    Some(new) => {
                        changed = true;
                        out.push_str("else:");
                        out.push_str(&new);
                    }
                    None => out.push_str(segment),
                }
                continue;
            }
            let piece = &segment[1..segment.len() - 1]; // strip [ ]
            let mut halves = split_top_level(piece, b'|');
            let value = halves.next().expect("piecewise piece has a value");
            let cond = halves.next().expect("piecewise piece has a condition");
            let new_value = gated_rewrite(value, maps);
            let new_cond = gated_rewrite(cond, maps);
            if new_value.is_none() && new_cond.is_none() {
                out.push_str(segment);
                continue;
            }
            changed = true;
            out.push('[');
            out.push_str(new_value.as_deref().unwrap_or(value));
            out.push('|');
            out.push_str(new_cond.as_deref().unwrap_or(cond));
            out.push(']');
        }
        out.push(')');
        changed.then_some(out)
    }

    /// Commutative group: rewrite each child; if any changed, the group's
    /// sort order may be stale — re-sort all (rewritten) child texts. An
    /// unchanged group keeps its original (already sorted) order and is
    /// reused as a slice.
    fn rewrite_commutative<R: Resolver + ?Sized>(
        s: &str,
        inner: &str,
        open: usize,
        maps: &R,
    ) -> Option<String> {
        let mut children: Vec<std::borrow::Cow<'_, str>> = Vec::new();
        let mut dirty = false;
        for child in split_top_level(inner, b',') {
            match gated_rewrite(child, maps) {
                Some(new) => {
                    dirty = true;
                    children.push(std::borrow::Cow::Owned(new));
                }
                None => children.push(std::borrow::Cow::Borrowed(child)),
            }
        }
        if !dirty {
            return None;
        }
        // Same comparison `build` uses: byte order over full child texts.
        children.sort_unstable();
        let mut out = String::with_capacity(s.len());
        out.push_str(&s[..open + 1]);
        for (i, c) in children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(c);
        }
        out.push(')');
        Some(out)
    }

    /// Rewrite one child node only if the flat scan says it can change —
    /// a clean subtree is never structurally parsed.
    fn gated_rewrite<R: Resolver + ?Sized>(s: &str, maps: &R) -> Option<String> {
        if contains_mapped_leaf(s, maps) {
            rewrite_node(s, maps)
        } else {
            None
        }
    }

    /// Rewrite an ordered child list via `f`, splicing unchanged children
    /// as slices (dirty-scan-gated). Returns the full rebuilt node text,
    /// or `None` when no child changed.
    fn splice_children<'a, R: Resolver + ?Sized>(
        s: &'a str,
        inner: &'a str,
        open: usize,
        maps: &R,
        f: impl Fn(&'a str, &R) -> Option<String>,
    ) -> Option<String> {
        let mut changed = false;
        let mut out = String::with_capacity(s.len());
        out.push_str(&s[..open + 1]);
        for (i, child) in split_top_level(inner, b',').enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rewritten =
                if contains_mapped_leaf(child, maps) { f(child, maps) } else { None };
            match rewritten {
                Some(new) => {
                    changed = true;
                    out.push_str(&new);
                }
                None => out.push_str(child),
            }
        }
        out.push(')');
        changed.then_some(out)
    }

    /// Split on `sep` at nesting depth 0 (over `(`/`[`). Yields nothing
    /// for an empty string (a zero-argument call / empty group). Depth
    /// saturates on malformed text rather than underflowing — callers
    /// treat surprising shapes as "no match", never as a panic.
    pub(super) fn split_top_level(s: &str, sep: u8) -> impl Iterator<Item = &str> {
        let bytes = s.as_bytes();
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut i = 0usize;
        std::iter::from_fn(move || {
            if start > bytes.len() || bytes.is_empty() {
                return None;
            }
            while i < bytes.len() {
                match bytes[i] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth = depth.saturating_sub(1),
                    b if b == sep && depth == 0 => {
                        let piece = &s[start..i];
                        i += 1;
                        start = i;
                        return Some(piece);
                    }
                    _ => {}
                }
                i += 1;
            }
            let piece = &s[start..];
            start = bytes.len() + 1; // exhausted
            Some(piece)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infix::parse;

    fn pat(src: &str) -> Pattern {
        Pattern::of(&parse(src).unwrap())
    }

    #[test]
    fn commutative_orders_match() {
        assert_eq!(pat("k1*A*B"), pat("B*k1*A"));
        assert_eq!(pat("a+b"), pat("b+a"));
        assert_eq!(pat("a == b"), pat("b == a"));
        assert_eq!(pat("x && y"), pat("y && x"));
    }

    #[test]
    fn non_commutative_orders_do_not_match() {
        assert_ne!(pat("a-b"), pat("b-a"));
        assert_ne!(pat("a/b"), pat("b/a"));
        assert_ne!(pat("a^b"), pat("b^a"));
        assert_ne!(pat("a < b"), pat("b < a"));
    }

    #[test]
    fn associative_nesting_matches() {
        assert_eq!(pat("(a+b)+c"), pat("a+(b+c)"));
        assert_eq!(pat("(a*b)*c"), pat("c*(b*a)"));
    }

    #[test]
    fn numeric_normalisation() {
        assert_eq!(pat("2*x"), pat("2.0*x"));
        assert_ne!(pat("2*x"), pat("3*x"));
    }

    #[test]
    fn distinct_structures_distinct_patterns() {
        assert_ne!(pat("k1*A"), pat("k1+A"));
        assert_ne!(pat("k1*A"), pat("k1*A*A"));
        assert_ne!(pat("Vmax*S/(Km+S)"), pat("Vmax*S/(Km*S)"));
    }

    #[test]
    fn mappings_applied_to_identifiers() {
        let a = parse("kf*X").unwrap();
        let b = parse("k1*X").unwrap();
        let mut map = HashMap::new();
        assert!(!equivalent(&a, &b, &map));
        map.insert("k1".to_owned(), "kf".to_owned());
        assert!(equivalent(&a, &b, &map));
    }

    #[test]
    fn mappings_applied_to_function_calls() {
        let a = parse("f(x)").unwrap();
        let b = parse("g(x)").unwrap();
        let mut map = HashMap::new();
        assert!(!equivalent(&a, &b, &map));
        map.insert("g".to_owned(), "f".to_owned());
        assert!(equivalent(&a, &b, &map));
    }

    #[test]
    fn lambda_alpha_equivalence() {
        let f = MathExpr::Lambda {
            params: vec!["x".into(), "y".into()],
            body: Box::new(parse("x*y + x").unwrap()),
        };
        let g = MathExpr::Lambda {
            params: vec!["u".into(), "v".into()],
            body: Box::new(parse("u*v + u").unwrap()),
        };
        assert_eq!(Pattern::of(&f), Pattern::of(&g));

        // Swapped parameter use is NOT alpha-equivalent.
        let h = MathExpr::Lambda {
            params: vec!["u".into(), "v".into()],
            body: Box::new(parse("u*v + v").unwrap()),
        };
        assert_ne!(Pattern::of(&f), Pattern::of(&h));
    }

    #[test]
    fn bound_variables_shadow_mappings() {
        // Inside lambda(x, ...), `x` is positional even if mappings rename x.
        let f = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + y").unwrap()),
        };
        let mut map = HashMap::new();
        map.insert("x".to_owned(), "z".to_owned());
        let p = Pattern::of_mapped(&f, &map);
        assert!(p.as_str().contains("b:0"), "{p}");
        assert!(!p.as_str().contains("v:z + b"), "{p}");
    }

    #[test]
    fn piecewise_order_is_semantic() {
        assert_ne!(pat("piecewise(1, x<5, 2, x<9, 0)"), pat("piecewise(2, x<9, 1, x<5, 0)"));
        assert_eq!(pat("piecewise(1, x<5, 0)"), pat("piecewise(1, x<5, 0)"));
        // Mirrored relations (x<5 vs 5>x) are deliberately NOT unified: the
        // paper's pattern only canonicalises commutative operators.
        assert_ne!(pat("piecewise(1, x<5, 0)"), pat("piecewise(1, 5>x, 0)"));
    }

    #[test]
    fn mass_action_examples_from_paper() {
        // Paper Fig. 10/11: -k1[A], k1[A]-k2[B], -k1[A][B].
        // Note `-k1*A` parses as `(-k1)*A` (unary minus binds tightest,
        // as in libSBML), so compare explicitly-grouped forms.
        assert_eq!(pat("-(k1*A)"), pat("-(A*k1)"));
        assert_eq!(pat("(-k1)*A"), pat("A*(-k1)"));
        assert_eq!(pat("k1*A - k2*B"), pat("A*k1 - B*k2"));
        assert_ne!(pat("k1*A - k2*B"), pat("k2*B - k1*A"));
        assert_eq!(pat("k1*A*B"), pat("k1*B*A"));
    }

    fn rename_equals_rebuild(src: &str, pairs: &[(&str, &str)]) {
        let expr = parse(src).unwrap();
        let mut map = HashMap::new();
        for (from, to) in pairs {
            map.insert((*from).to_owned(), (*to).to_owned());
        }
        let cached = Pattern::of(&expr);
        let renamed = cached.rename_mapped(&map);
        let rebuilt = Pattern::of_mapped(&expr, &map);
        assert_eq!(renamed.as_ref(), &rebuilt, "src={src} map={pairs:?}");
    }

    #[test]
    fn rename_mapped_equals_of_mapped() {
        rename_equals_rebuild("k1*A*B", &[("k1", "kf")]);
        // A rename that changes the sort order of a commutative group.
        rename_equals_rebuild("a + z", &[("a", "zz")]);
        rename_equals_rebuild("a*b + c*d", &[("c", "a0"), ("b", "x")]);
        // Untouched groups keep their order; nested dirt propagates up.
        rename_equals_rebuild("(a+b) * (c-d) * f(e)", &[("e", "q")]);
        rename_equals_rebuild("f(x) + g(x)", &[("g", "f")]);
        rename_equals_rebuild("piecewise(a, a < b, c)", &[("a", "w"), ("c", "v")]);
        rename_equals_rebuild("pow(a, b) / (c + d)", &[("b", "bb"), ("d", "a")]);
        rename_equals_rebuild("2 + x*1e30", &[("x", "y")]);
        // No-op mapping: borrowed, byte-identical.
        let expr = parse("k1*A + f(B)").unwrap();
        let cached = Pattern::of(&expr);
        let mut map = HashMap::new();
        map.insert("unrelated".to_owned(), "other".to_owned());
        assert!(matches!(cached.rename_mapped(&map), std::borrow::Cow::Borrowed(_)));
    }

    #[test]
    fn rename_mapped_respects_bound_variables() {
        // Lambda params are positional in canonical text; a mapping for the
        // shadowed name must not leak in — same as of_mapped.
        let f = MathExpr::Lambda {
            params: vec!["x".into()],
            body: Box::new(parse("x + y").unwrap()),
        };
        let mut map = HashMap::new();
        map.insert("x".to_owned(), "z".to_owned());
        map.insert("y".to_owned(), "w".to_owned());
        let cached = Pattern::of(&f);
        assert_eq!(cached.rename_mapped(&map).as_ref(), &Pattern::of_mapped(&f, &map));
    }

    #[test]
    fn pattern_is_stable_hash_key() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(pat("k1*A*B"));
        assert!(set.contains(&pat("B*A*k1")));
        assert!(!set.contains(&pat("B+A+k1")));
    }

}
