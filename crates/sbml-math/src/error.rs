//! Error type shared by the MathML parser, infix parser and evaluator.

use std::fmt;

/// Errors from parsing or evaluating mathematics.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Content MathML contained an element we do not understand.
    UnknownElement {
        /// Offending element name.
        name: String,
    },
    /// An `<apply>` had no operator or an operator with bad argument count.
    BadApply {
        /// Human-readable description.
        detail: String,
    },
    /// A `<cn>` payload failed to parse as a number.
    BadNumber {
        /// The raw text.
        text: String,
    },
    /// Infix formula syntax error.
    Syntax {
        /// Byte offset in the formula string.
        offset: usize,
        /// Description of what went wrong.
        detail: String,
    },
    /// Evaluation referenced an identifier missing from the environment.
    UnknownIdentifier {
        /// The identifier.
        name: String,
    },
    /// Evaluation called an unknown function definition.
    UnknownFunction {
        /// The function id.
        name: String,
    },
    /// A function call had the wrong number of arguments.
    WrongArgCount {
        /// The function id.
        function: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// Recursion limit hit while expanding function definitions (cycle).
    RecursionLimit {
        /// The function id where the limit tripped.
        function: String,
    },
    /// A piecewise expression had no true branch and no otherwise.
    NoBranchTaken,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::UnknownElement { name } => {
                write!(f, "unknown MathML element <{name}>")
            }
            MathError::BadApply { detail } => write!(f, "malformed <apply>: {detail}"),
            MathError::BadNumber { text } => write!(f, "malformed <cn> number: {text:?}"),
            MathError::Syntax { offset, detail } => {
                write!(f, "formula syntax error at byte {offset}: {detail}")
            }
            MathError::UnknownIdentifier { name } => {
                write!(f, "unknown identifier {name:?} during evaluation")
            }
            MathError::UnknownFunction { name } => {
                write!(f, "call of unknown function definition {name:?}")
            }
            MathError::WrongArgCount { function, expected, got } => {
                write!(f, "function {function:?} expects {expected} argument(s), got {got}")
            }
            MathError::RecursionLimit { function } => {
                write!(f, "recursion limit expanding function {function:?} (cyclic definition?)")
            }
            MathError::NoBranchTaken => {
                write!(f, "piecewise expression: no condition true and no <otherwise>")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(MathError, &str)> = vec![
            (MathError::UnknownElement { name: "blob".into() }, "blob"),
            (MathError::BadNumber { text: "1.2.3".into() }, "1.2.3"),
            (MathError::UnknownIdentifier { name: "k9".into() }, "k9"),
            (
                MathError::WrongArgCount { function: "f".into(), expected: 2, got: 3 },
                "expects 2",
            ),
            (MathError::NoBranchTaken, "otherwise"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
