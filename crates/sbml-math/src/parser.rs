//! Content-MathML → [`MathExpr`] parsing.
//!
//! Accepts the SBML subset of MathML 2.0 content markup: `cn` (including
//! `integer`, `real`, `e-notation` and `rational` types), `ci`, `csymbol`,
//! named constants, `apply` with built-in operators or function-definition
//! calls, `degree`/`logbase` qualifiers, `piecewise` and `lambda`.
//! Namespace prefixes on element names are ignored (`m:apply` == `apply`).

use sbml_xml::Element;

use crate::ast::{Constant, CsymbolKind, MathExpr, Op};
use crate::error::MathError;

/// Strip any namespace prefix from a qualified name.
pub fn local_name(qualified: &str) -> &str {
    match qualified.rfind(':') {
        Some(idx) => &qualified[idx + 1..],
        None => qualified,
    }
}

/// Parse a `<math>` wrapper or a bare MathML operand element.
pub fn parse(element: &Element) -> Result<MathExpr, MathError> {
    if local_name(&element.name) == "math" {
        let mut operands = element.child_elements();
        let Some(first) = operands.next() else {
            return Err(MathError::BadApply { detail: "<math> has no child".to_owned() });
        };
        if operands.next().is_some() {
            return Err(MathError::BadApply {
                detail: "<math> has more than one child".to_owned(),
            });
        }
        parse_node(first)
    } else {
        parse_node(element)
    }
}

fn parse_node(e: &Element) -> Result<MathExpr, MathError> {
    match local_name(&e.name) {
        "cn" => parse_cn(e),
        "ci" => Ok(MathExpr::Ci(e.text().trim().to_owned())),
        "csymbol" => parse_csymbol(e),
        "apply" => parse_apply(e),
        "piecewise" => parse_piecewise(e),
        "lambda" => parse_lambda(e),
        other => {
            if let Some(c) = Constant::from_mathml_name(other) {
                Ok(MathExpr::Const(c))
            } else {
                Err(MathError::UnknownElement { name: other.to_owned() })
            }
        }
    }
}

fn parse_cn(e: &Element) -> Result<MathExpr, MathError> {
    let ty = e.attr("type").unwrap_or("real");
    // e-notation / rational use a <sep/> element between two number parts.
    let parts: Vec<String> = split_on_sep(e);
    let bad = || MathError::BadNumber { text: e.text().trim().to_owned() };
    match ty {
        "e-notation" => {
            if parts.len() != 2 {
                return Err(bad());
            }
            let mantissa: f64 = parts[0].trim().parse().map_err(|_| bad())?;
            let exponent: f64 = parts[1].trim().parse().map_err(|_| bad())?;
            Ok(MathExpr::Num(mantissa * 10f64.powf(exponent)))
        }
        "rational" => {
            if parts.len() != 2 {
                return Err(bad());
            }
            let num: f64 = parts[0].trim().parse().map_err(|_| bad())?;
            let den: f64 = parts[1].trim().parse().map_err(|_| bad())?;
            Ok(MathExpr::Num(num / den))
        }
        // "integer" | "real" | anything else: single payload
        _ => {
            let text = e.text();
            let trimmed = text.trim();
            let value: f64 = trimmed.parse().map_err(|_| bad())?;
            Ok(MathExpr::Num(value))
        }
    }
}

/// Split `<cn>` content on `<sep/>` children.
fn split_on_sep(e: &Element) -> Vec<String> {
    let mut parts = vec![String::new()];
    for node in &e.children {
        match node {
            sbml_xml::Node::Text(t) | sbml_xml::Node::CData(t) => {
                parts.last_mut().expect("non-empty").push_str(t);
            }
            sbml_xml::Node::Element(el) if local_name(&el.name) == "sep" => {
                parts.push(String::new());
            }
            _ => {}
        }
    }
    parts
}

fn parse_csymbol(e: &Element) -> Result<MathExpr, MathError> {
    let url = e.attr("definitionURL").unwrap_or("");
    let Some(kind) = CsymbolKind::from_definition_url(url) else {
        return Err(MathError::UnknownElement { name: format!("csymbol[{url}]") });
    };
    Ok(MathExpr::Csymbol { kind, name: e.text().trim().to_owned() })
}

fn parse_apply(e: &Element) -> Result<MathExpr, MathError> {
    let kids: Vec<&Element> = e.child_elements().collect();
    let Some((head, rest)) = kids.split_first() else {
        return Err(MathError::BadApply { detail: "<apply> is empty".to_owned() });
    };

    // Function-definition call: <apply><ci>f</ci> args...</apply>
    if local_name(&head.name) == "ci" {
        let function = head.text().trim().to_owned();
        let args = rest.iter().map(|a| parse_node(a)).collect::<Result<Vec<_>, _>>()?;
        return Ok(MathExpr::Call { function, args });
    }

    let op_name = local_name(&head.name);
    let Some(op) = Op::from_mathml_name(op_name) else {
        return Err(MathError::UnknownElement { name: op_name.to_owned() });
    };

    // Qualifiers: <degree> (root) and <logbase> (log) become the first arg.
    let mut args: Vec<MathExpr> = Vec::with_capacity(rest.len());
    let mut qualifier: Option<MathExpr> = None;
    for child in rest {
        match local_name(&child.name) {
            "degree" | "logbase" => {
                let inner = child.child_elements().next().ok_or_else(|| MathError::BadApply {
                    detail: format!("empty <{}>", local_name(&child.name)),
                })?;
                qualifier = Some(parse_node(inner)?);
            }
            _ => args.push(parse_node(child)?),
        }
    }
    if let Some(q) = qualifier {
        args.insert(0, q);
    } else if op == Op::Root {
        args.insert(0, MathExpr::Num(2.0)); // default square root
    } else if op == Op::Log {
        args.insert(0, MathExpr::Num(10.0)); // default base-10 log
    }

    let (min, max) = op.arity();
    if args.len() < min || args.len() > max {
        return Err(MathError::BadApply {
            detail: format!("<{op_name}> applied to {} operand(s)", args.len()),
        });
    }
    Ok(MathExpr::Apply { op, args })
}

fn parse_piecewise(e: &Element) -> Result<MathExpr, MathError> {
    let mut pieces = Vec::new();
    let mut otherwise = None;
    for child in e.child_elements() {
        match local_name(&child.name) {
            "piece" => {
                let parts: Vec<&Element> = child.child_elements().collect();
                if parts.len() != 2 {
                    return Err(MathError::BadApply {
                        detail: format!("<piece> needs 2 children, has {}", parts.len()),
                    });
                }
                pieces.push((parse_node(parts[0])?, parse_node(parts[1])?));
            }
            "otherwise" => {
                let inner = child.child_elements().next().ok_or_else(|| MathError::BadApply {
                    detail: "empty <otherwise>".to_owned(),
                })?;
                otherwise = Some(Box::new(parse_node(inner)?));
            }
            other => return Err(MathError::UnknownElement { name: other.to_owned() }),
        }
    }
    Ok(MathExpr::Piecewise { pieces, otherwise })
}

fn parse_lambda(e: &Element) -> Result<MathExpr, MathError> {
    let mut params = Vec::new();
    let mut body = None;
    for child in e.child_elements() {
        match local_name(&child.name) {
            "bvar" => {
                let ci = child.child_elements().next().ok_or_else(|| MathError::BadApply {
                    detail: "empty <bvar>".to_owned(),
                })?;
                params.push(ci.text().trim().to_owned());
            }
            _ => {
                if body.is_some() {
                    return Err(MathError::BadApply {
                        detail: "<lambda> has multiple bodies".to_owned(),
                    });
                }
                body = Some(parse_node(child)?);
            }
        }
    }
    let Some(body) = body else {
        return Err(MathError::BadApply { detail: "<lambda> has no body".to_owned() });
    };
    Ok(MathExpr::Lambda { params, body: Box::new(body) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_xml::parse_element;

    fn parse_str(xml: &str) -> MathExpr {
        parse(&parse_element(xml).unwrap()).unwrap()
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_str("<cn>3.5</cn>"), MathExpr::Num(3.5));
        assert_eq!(parse_str("<cn type=\"integer\">42</cn>"), MathExpr::Num(42.0));
        assert_eq!(parse_str("<cn type=\"e-notation\">2<sep/>3</cn>"), MathExpr::Num(2000.0));
        assert_eq!(parse_str("<cn type=\"rational\">1<sep/>4</cn>"), MathExpr::Num(0.25));
        assert_eq!(parse_str("<cn> -1e-3 </cn>"), MathExpr::Num(-0.001));
    }

    #[test]
    fn bad_numbers_rejected() {
        for bad in ["<cn>abc</cn>", "<cn type=\"e-notation\">2</cn>", "<cn/>"] {
            assert!(parse(&parse_element(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn identifiers_and_constants() {
        assert_eq!(parse_str("<ci> k1 </ci>"), MathExpr::ci("k1"));
        assert_eq!(parse_str("<pi/>"), MathExpr::Const(Constant::Pi));
        assert_eq!(parse_str("<true/>"), MathExpr::Const(Constant::True));
    }

    #[test]
    fn csymbol_time() {
        let e = parse_str(
            "<csymbol definitionURL=\"http://www.sbml.org/sbml/symbols/time\">t</csymbol>",
        );
        assert_eq!(e, MathExpr::Csymbol { kind: CsymbolKind::Time, name: "t".into() });
    }

    #[test]
    fn apply_nary_times() {
        let e = parse_str("<apply><times/><ci>k1</ci><ci>A</ci><ci>B</ci></apply>");
        assert_eq!(
            e,
            MathExpr::apply(
                Op::Times,
                vec![MathExpr::ci("k1"), MathExpr::ci("A"), MathExpr::ci("B")]
            )
        );
    }

    #[test]
    fn math_wrapper() {
        let e = parse_str(
            "<math xmlns=\"http://www.w3.org/1998/Math/MathML\"><apply><plus/><cn>1</cn><cn>2</cn></apply></math>",
        );
        assert_eq!(e, MathExpr::apply(Op::Plus, vec![MathExpr::num(1.0), MathExpr::num(2.0)]));
    }

    #[test]
    fn function_call() {
        let e = parse_str("<apply><ci>mm</ci><ci>S</ci><ci>Vmax</ci><ci>Km</ci></apply>");
        assert_eq!(
            e,
            MathExpr::Call {
                function: "mm".into(),
                args: vec![MathExpr::ci("S"), MathExpr::ci("Vmax"), MathExpr::ci("Km")]
            }
        );
    }

    #[test]
    fn root_with_default_and_explicit_degree() {
        let sqrt = parse_str("<apply><root/><ci>x</ci></apply>");
        assert_eq!(sqrt, MathExpr::apply(Op::Root, vec![MathExpr::num(2.0), MathExpr::ci("x")]));
        let cbrt = parse_str("<apply><root/><degree><cn>3</cn></degree><ci>x</ci></apply>");
        assert_eq!(cbrt, MathExpr::apply(Op::Root, vec![MathExpr::num(3.0), MathExpr::ci("x")]));
    }

    #[test]
    fn log_with_base() {
        let lg = parse_str("<apply><log/><ci>x</ci></apply>");
        assert_eq!(lg, MathExpr::apply(Op::Log, vec![MathExpr::num(10.0), MathExpr::ci("x")]));
        let l2 = parse_str("<apply><log/><logbase><cn>2</cn></logbase><ci>x</ci></apply>");
        assert_eq!(l2, MathExpr::apply(Op::Log, vec![MathExpr::num(2.0), MathExpr::ci("x")]));
    }

    #[test]
    fn piecewise() {
        let e = parse_str(
            "<piecewise><piece><cn>1</cn><apply><lt/><ci>x</ci><cn>5</cn></apply></piece><otherwise><cn>0</cn></otherwise></piecewise>",
        );
        match e {
            MathExpr::Piecewise { pieces, otherwise } => {
                assert_eq!(pieces.len(), 1);
                assert_eq!(pieces[0].0, MathExpr::num(1.0));
                assert_eq!(*otherwise.unwrap(), MathExpr::num(0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lambda() {
        let e = parse_str(
            "<lambda><bvar><ci>x</ci></bvar><bvar><ci>y</ci></bvar><apply><plus/><ci>x</ci><ci>y</ci></apply></lambda>",
        );
        match e {
            MathExpr::Lambda { params, body } => {
                assert_eq!(params, vec!["x".to_owned(), "y".to_owned()]);
                assert_eq!(
                    *body,
                    MathExpr::apply(Op::Plus, vec![MathExpr::ci("x"), MathExpr::ci("y")])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn namespaced_elements_accepted() {
        let e = parse_str("<m:apply><m:plus/><m:cn>1</m:cn><m:cn>2</m:cn></m:apply>");
        assert_eq!(e, MathExpr::apply(Op::Plus, vec![MathExpr::num(1.0), MathExpr::num(2.0)]));
    }

    #[test]
    fn arity_violations() {
        for bad in [
            "<apply><divide/><cn>1</cn></apply>",
            "<apply><not/><cn>1</cn><cn>2</cn></apply>",
            "<apply/>",
            "<apply><power/><cn>1</cn><cn>2</cn><cn>3</cn></apply>",
        ] {
            assert!(parse(&parse_element(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn unknown_elements() {
        assert!(matches!(
            parse(&parse_element("<matrix/>").unwrap()),
            Err(MathError::UnknownElement { .. })
        ));
        assert!(parse(&parse_element("<csymbol definitionURL=\"urn:x\">q</csymbol>").unwrap())
            .is_err());
    }
}
