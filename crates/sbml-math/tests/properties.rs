//! Property tests for the math engine:
//! * MathML and infix round-trips preserve the AST,
//! * Fig. 7 patterns are invariant under random commutative shuffles,
//! * patterns distinguish structurally different expressions,
//! * evaluation agrees before/after round-trips and shuffles.

use proptest::prelude::*;
use sbml_math::{
    ast::{MathExpr, Op},
    eval::{evaluate, Env},
    infix,
    parser::parse as parse_mathml,
    pattern::Pattern,
    writer::{to_infix, to_math_element},
};

/// Strategy for closed arithmetic expressions over a tiny variable alphabet.
fn expr_strategy() -> impl Strategy<Value = MathExpr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|n| MathExpr::num(n as f64)),
        (1u32..=4).prop_map(|n| MathExpr::num(n as f64 / 2.0)),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("k1"), Just("k2")]
            .prop_map(MathExpr::ci),
    ];
    leaf.prop_recursive(5, 48, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|args| MathExpr::apply(Op::Plus, args)),
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|args| MathExpr::apply(Op::Times, args)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MathExpr::apply(Op::Minus, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MathExpr::apply(Op::Divide, vec![a, b])),
            // Unary minus over a literal would constant-fold on reparse
            // (`-3` lexes as a negative number), so shield literals with abs.
            inner.clone().prop_map(|a| {
                let a = match a {
                    MathExpr::Num(v) => MathExpr::apply(Op::Abs, vec![MathExpr::num(v)]),
                    other => other,
                };
                MathExpr::apply(Op::Minus, vec![a])
            }),
            inner.prop_map(|a| MathExpr::apply(Op::Abs, vec![a])),
        ]
    })
}

/// Recursively shuffle arguments of commutative operators using `seed`.
fn shuffle_commutative(expr: &MathExpr, seed: u64) -> MathExpr {
    match expr {
        MathExpr::Apply { op, args } => {
            let mut new_args: Vec<MathExpr> = args
                .iter()
                .enumerate()
                .map(|(i, a)| shuffle_commutative(a, seed.wrapping_mul(31).wrapping_add(i as u64)))
                .collect();
            if op.is_commutative() {
                // Deterministic pseudo-shuffle: rotate by seed, then swap.
                let n = new_args.len();
                new_args.rotate_left((seed as usize) % n.max(1));
                if n >= 2 && seed.is_multiple_of(2) {
                    new_args.swap(0, n - 1);
                }
            }
            MathExpr::Apply { op: *op, args: new_args }
        }
        other => other.clone(),
    }
}

/// Richer strategy for the rename tests: adds function calls, piecewise
/// and lambda nodes so every canonical-pattern construct is exercised.
fn rename_expr_strategy() -> impl Strategy<Value = MathExpr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|n| MathExpr::num(n as f64)),
        prop_oneof![
            Just("a"),
            Just("b"),
            Just("c"),
            Just("k1"),
            Just("k2"),
            Just("x"),
            Just("zz")
        ]
        .prop_map(MathExpr::ci),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|args| MathExpr::apply(Op::Plus, args)),
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|args| MathExpr::apply(Op::Times, args)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MathExpr::apply(Op::Minus, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MathExpr::apply(Op::Divide, vec![a, b])),
            (prop_oneof![Just("f"), Just("g"), Just("k1")], proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(name, args)| MathExpr::Call { function: name.to_owned(), args }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(v, c, o)| {
                MathExpr::Piecewise {
                    pieces: vec![(v, MathExpr::apply(Op::Lt, vec![c, MathExpr::num(5.0)]))],
                    otherwise: Some(Box::new(o)),
                }
            }),
            // Lambda params deliberately collide with free ids ("a", "x")
            // so bound-variable shadowing of mappings is exercised.
            (prop_oneof![Just("a"), Just("x"), Just("p")], inner)
                .prop_map(|(p, body)| MathExpr::Lambda {
                    params: vec![p.to_owned()],
                    body: Box::new(body),
                }),
        ]
    })
}

/// Strategy for mapping tables over the same alphabet: includes no-op
/// entries (unused ids), identity-adjacent targets and order-changing
/// renames (short → long, long → short).
fn mapping_strategy() -> impl Strategy<Value = std::collections::HashMap<String, String>> {
    let sources = ["a", "b", "c", "k1", "k2", "x", "zz", "f", "g", "unused"];
    let targets = ["a0", "zzz", "m", "k9", "b", "w_1", "longer_name"];
    proptest::collection::vec((0..sources.len(), 0..targets.len()), 0..6).prop_map(
        move |pairs| {
            let mut map = std::collections::HashMap::new();
            for (s, t) in pairs {
                map.insert(sources[s].to_owned(), targets[t].to_owned());
            }
            map
        },
    )
}

fn env() -> Env {
    Env::new()
        .with_var("a", 1.25)
        .with_var("b", -2.0)
        .with_var("c", 3.5)
        .with_var("k1", 0.5)
        .with_var("k2", 7.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mathml_round_trip(expr in expr_strategy()) {
        let element = to_math_element(&expr);
        let back = parse_mathml(&element).unwrap();
        prop_assert_eq!(back, expr);
    }

    #[test]
    fn mathml_survives_xml_serialization(expr in expr_strategy()) {
        // AST -> MathML element -> XML text -> element -> AST
        let element = to_math_element(&expr);
        let doc = sbml_xml::Document { declaration: None, root: element };
        let text = sbml_xml::write_compact(&doc);
        let parsed = sbml_xml::parse_document(&text).unwrap();
        let back = parse_mathml(&parsed.root).unwrap();
        prop_assert_eq!(back, expr);
    }

    #[test]
    fn infix_round_trip(expr in expr_strategy()) {
        let printed = to_infix(&expr);
        let back = infix::parse(&printed).unwrap();
        // Infix printing may re-nest n-ary chains; compare via patterns,
        // which canonicalise associativity, and check evaluation agrees.
        prop_assert_eq!(Pattern::of(&back), Pattern::of(&expr), "printed: {}", printed);
        let e = env();
        match (evaluate(&expr, &e), evaluate(&back, &e)) {
            (Ok(x), Ok(y)) => {
                if x.is_finite() && y.is_finite() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    prop_assert!(((x - y) / scale).abs() < 1e-9, "{} vs {} from {}", x, y, printed);
                }
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "eval disagreement: {:?} vs {:?}", x, y),
        }
    }

    #[test]
    fn pattern_invariant_under_commutative_shuffle(expr in expr_strategy(), seed in 0u64..1000) {
        let shuffled = shuffle_commutative(&expr, seed);
        prop_assert_eq!(Pattern::of(&expr), Pattern::of(&shuffled));
    }

    #[test]
    fn shuffle_preserves_evaluation(expr in expr_strategy(), seed in 0u64..1000) {
        let shuffled = shuffle_commutative(&expr, seed);
        let e = env();
        if let (Ok(x), Ok(y)) = (evaluate(&expr, &e), evaluate(&shuffled, &e)) {
            if x.is_finite() && y.is_finite() {
                let scale = x.abs().max(y.abs()).max(1.0);
                prop_assert!(((x - y) / scale).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pattern_stability(expr in expr_strategy()) {
        // Pattern computation is deterministic.
        prop_assert_eq!(Pattern::of(&expr), Pattern::of(&expr.clone()));
    }

    #[test]
    fn infix_parser_never_panics(src in "[a-z0-9+*/() ^.,<>=!&|-]{0,64}") {
        let _ = infix::parse(&src);
    }

    #[test]
    fn rename_mapped_equals_of_mapped(
        expr in rename_expr_strategy(),
        map in mapping_strategy(),
    ) {
        // The incremental string-level rename of a cached canonical
        // pattern must be byte-identical to re-canonicalising the
        // expression under the mappings — including lambda shadowing,
        // dirty-group re-sorting and no-op mappings.
        let cached = Pattern::of(&expr);
        let renamed = cached.rename_mapped(&map);
        let rebuilt = Pattern::of_mapped(&expr, &map);
        prop_assert_eq!(renamed.as_ref(), &rebuilt, "pattern: {}", cached);
    }

    #[test]
    fn rename_mapped_noop_is_borrowed(expr in rename_expr_strategy()) {
        // A mapping that touches no identifier of the expression returns
        // the original pattern without allocating.
        let cached = Pattern::of(&expr);
        let mut map = std::collections::HashMap::new();
        map.insert("not_present_anywhere".to_owned(), "whatever".to_owned());
        let out = cached.rename_mapped(&map);
        prop_assert!(matches!(out, std::borrow::Cow::Borrowed(_)));
    }
}
