//! Deterministic synthetic stand-in for the BioModels corpus.
//!
//! The paper's Figure 8 composes "187 models ... sourced from the BioModels
//! database. Model size ranged from 0 to 194 nodes and 0 to 313 edges",
//! every model with every other in ascending size order. The real curated
//! files are not redistributable here, so this crate generates a corpus
//! with the same *shape*:
//!
//! * exactly **187 models**, sizes spanning **0–194 nodes** and **0–313
//!   edges** with the right-skewed distribution real BioModels has (many
//!   small models, a long tail of large ones),
//! * species drawn from a shared pool (plus common biochemical vocabulary),
//!   so distinct models overlap and composition actually *shares* nodes,
//! * kinetic laws spanning the paper's Figures 10–12: first- and
//!   second-order mass action, reversible mass action, explicit
//!   Michaelis–Menten and Michaelis–Menten via a function definition,
//! * a sprinkling of events, rules, initial assignments and unit
//!   definitions so every Fig. 4 pipeline stage does real work,
//!
//! plus the **17-model corpus** of the Figure 9 comparison ("only 17 test
//! models ... with all models already annotated biologically", 4–7 nodes,
//! 0–3 edges — names resolvable in the annotation database).
//!
//! Everything is seeded: `corpus_187()` returns byte-identical models on
//! every call, which the benches rely on.
//!
//! For index-scale workloads there is additionally a **scale tier**
//! ([`corpus_scale`]): an arbitrarily large deterministic corpus of
//! motif-sharing models (most tiny, a right-skewed tail of large ones)
//! whose posting lists genuinely collide — the input of the 10k-model
//! incremental/sharded index benches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

/// Names shared with the annotation database / synonym tables, so the
/// baselines' lookups and SBMLCompose's synonym matching both get hits.
pub const COMMON_SPECIES: &[&str] = &[
    "glucose", "ATP", "ADP", "NAD", "NADH", "pyruvate", "lactate", "citrate", "oxygen",
    "water", "phosphate", "fructose", "G6P", "F6P", "PEP", "G3P",
];

/// Number of models in the Figure 8 corpus.
pub const CORPUS_SIZE: usize = 187;
/// Maximum node count, as in the paper.
pub const MAX_NODES: usize = 194;
/// Maximum edge count, as in the paper.
pub const MAX_EDGES: usize = 313;

/// The planned (nodes, edges) of corpus model `i`, following a right-skewed
/// ramp from (0, 0) to exactly (194, 313).
pub fn planned_size(index: usize) -> (usize, usize) {
    assert!(index < CORPUS_SIZE, "corpus has {CORPUS_SIZE} models");
    let frac = index as f64 / (CORPUS_SIZE - 1) as f64;
    // Right-skew: most models small (BioModels reality), tail to the max.
    let nodes = (MAX_NODES as f64 * frac.powf(1.6)).round() as usize;
    let edges = (MAX_EDGES as f64 * frac.powf(1.6)).round() as usize;
    (nodes, edges)
}

/// Generate corpus model `index` (deterministic).
pub fn generate_model(index: usize) -> Model {
    let (nodes, edges) = planned_size(index);
    let mut rng = StdRng::seed_from_u64(0xB10_0000 + index as u64);
    build_model(&format!("BIOMD{index:04}"), nodes, edges, &mut rng, index)
}

/// The full 187-model Figure 8 corpus, in ascending size order.
pub fn corpus_187() -> Vec<Model> {
    (0..CORPUS_SIZE).map(generate_model).collect()
}

/// A contiguous slice `range` of the Figure 8 ramp, generated without
/// materialising the rest of the corpus — what batch smoke runs and
/// examples want (`corpus_slice(0..CORPUS_SIZE)` equals [`corpus_187`]).
pub fn corpus_slice(range: std::ops::Range<usize>) -> Vec<Model> {
    assert!(range.end <= CORPUS_SIZE, "corpus has {CORPUS_SIZE} models");
    range.map(generate_model).collect()
}

/// The 17 small annotated models of the Figure 9 comparison
/// (4–7 nodes, 0–3 edges, all species named from the common vocabulary).
pub fn corpus_17() -> Vec<Model> {
    (0..17)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x5E_17 + i as u64);
            let nodes = 4 + (i % 4); // 4..=7
            let edges = i % 4; // 0..=3
            build_small_annotated(&format!("SEMSBML{i:02}"), nodes, edges, &mut rng, i)
        })
        .collect()
}

/// Number of shared reaction motifs the scale tier draws from: every
/// scale-tier model carries at least one motif family's chain verbatim
/// (same species labels, same kinetics), so index postings collide the
/// way conserved pathways make real BioModels entries collide.
pub const SCALE_MOTIF_FAMILIES: usize = 48;

/// Species pool of the scale tier (wider than the Fig. 8 pool so 10k
/// models do not degenerate into one fully-connected key space).
pub const SCALE_SPECIES_POOL: usize = 600;

/// A deterministic `n`-model corpus for the 10k+ **scale tier** —
/// the index growth/sharding benches' input. Same generator idioms as
/// [`corpus_187`] (seeded [`StdRng`] per model, overlapping species
/// pool, mass-action kinetics) but shaped for indexing at corpus scale:
///
/// * **size-skewed**: most models are motif-sized (3–8 species), with a
///   right-skewed tail of larger ones — so per-model analysis cost is
///   CI-sane at 10 000 models;
/// * **shared-motif families**: model `i` embeds motif family
///   `i % `[`SCALE_MOTIF_FAMILIES`] — a fixed 3-step reaction chain over
///   fixed pool species with fixed kinetics — so posting lists genuinely
///   collide (~`n / 48` models per family key) and candidate generation
///   has real pruning work at every semantics level;
/// * **unique tails**: larger models add private species and random
///   reactions, giving every model distinguishing postings too.
///
/// `scale_model(i)` is independent of `n`: growing the corpus appends
/// models without changing existing ones, which the incremental-append
/// bench relies on.
pub fn corpus_scale(n: usize) -> Vec<Model> {
    (0..n).map(scale_model).collect()
}

/// Scale-tier model `i` (deterministic, independent of corpus size).
pub fn scale_model(i: usize) -> Model {
    let mut rng = StdRng::seed_from_u64(0x5CA1E_0000 + i as u64);
    let family = i % SCALE_MOTIF_FAMILIES;
    let mut b = ModelBuilder::new(format!("SCALE{i:05}"))
        .name(format!("scale-tier entry {i}, motif family {family}"))
        .compartment("cell", 1.0);

    // Collect the pool species first (deduplicated), add them to the
    // builder in one pass, then wire the reactions over their ids.
    let mut pool_slots: Vec<usize> = Vec::new();
    let add_slot = |pool_slots: &mut Vec<usize>, slot: usize| -> String {
        let slot = slot % SCALE_SPECIES_POOL;
        if !pool_slots.contains(&slot) {
            pool_slots.push(slot);
        }
        pool_species(slot).0
    };

    // The family motif: a fixed 3-step chain over the family's own pool
    // slice with fixed per-family kinetics — identical in every model of
    // the family, so node, edge, participant and heavy content keys all
    // collide across the family.
    let base = family * 12;
    let chain: Vec<String> = (0..4).map(|j| add_slot(&mut pool_slots, base + j)).collect();

    // Cross-family overlap: a couple of species from the rolling Fig. 8
    // style offset, connecting neighbouring models outside their family.
    for j in 0..2 {
        add_slot(&mut pool_slots, i * 3 + j);
    }

    let mut ids: Vec<String> = Vec::new();
    for slot in pool_slots {
        let (sid, name) = pool_species(slot);
        b = match name {
            Some(display) => b.species_named(&sid, &display, (slot % 10) as f64),
            None => b.species(&sid, (slot % 10) as f64),
        };
        ids.push(sid);
    }

    for j in 0..3 {
        let k_id = format!("kf{family}_{j}");
        let k_val = round3(0.05 + ((family * 7 + j * 3) % 190) as f64 / 100.0);
        b = b.parameter(&k_id, k_val).reaction(
            &format!("m{family}_r{j}"),
            &[chain[j].as_str()],
            &[chain[j + 1].as_str()],
            &format!("{k_id}*{}", chain[j]),
        );
    }

    // Right-skewed unique tail: most models stop at the motif; a few
    // grow private species and random mass-action reactions on top.
    let frac = rng.gen_range(0.0..1.0_f64);
    let extra = (48.0 * frac.powf(6.0)).round() as usize;
    for j in 0..extra {
        let sid = format!("u{i}_{j}");
        b = b.species(&sid, j as f64);
        ids.push(sid);
    }
    for r in 0..extra / 3 {
        let from = ids[rng.gen_range(0..ids.len())].clone();
        let to = ids[rng.gen_range(0..ids.len())].clone();
        if from == to {
            continue;
        }
        let k_id = format!("ku{r}");
        b = b.parameter(&k_id, round3(rng.gen_range(0.01..2.0))).reaction(
            &format!("u{i}_r{r}"),
            &[from.as_str()],
            &[to.as_str()],
            &format!("{k_id}*{from}"),
        );
    }
    b.build()
}

/// Species id for pool slot `n`: common vocabulary first, then generic.
fn pool_species(n: usize) -> (String, Option<String>) {
    if n < COMMON_SPECIES.len() {
        let display = COMMON_SPECIES[n];
        // ids must be simple; display names keep their natural form
        let id = display.to_lowercase().replace([' ', '-'], "_");
        (id, Some(display.to_owned()))
    } else {
        (format!("sp_{n:03}"), None)
    }
}

fn build_model(id: &str, nodes: usize, edges: usize, rng: &mut StdRng, index: usize) -> Model {
    let mut b = ModelBuilder::new(id).name(format!("synthetic BioModels entry {index}"));
    if nodes == 0 {
        // The paper's corpus includes size-0 models; they are legal SBML.
        return b.build();
    }
    b = b.compartment("cell", 1.0);

    // Species from an overlapping pool: model i starts at offset i*3 so
    // neighbouring models share a suffix/prefix of the pool.
    let pool_size = 420usize;
    let offset = (index * 3) % pool_size;
    let mut ids: Vec<String> = Vec::with_capacity(nodes);
    for j in 0..nodes {
        let (sid, name) = pool_species((offset + j) % pool_size);
        let amount = rng.gen_range(0.0..100.0_f64).round();
        b = match name {
            Some(display) => b.species_named(&sid, &display, amount),
            None => b.species(&sid, amount),
        };
        ids.push(sid);
    }

    // A Michaelis–Menten function definition for some models (exercises
    // function-definition merging; Fig. 12 kinetics).
    let has_mm_fn = index.is_multiple_of(5);
    if has_mm_fn {
        b = b.function("mm", &["S", "Vmax", "Km"], "Vmax*S/(Km+S)");
    }

    // Reactions until the planned edge budget is consumed.
    let mut remaining = edges;
    let mut r_idx = 0usize;
    while remaining > 0 {
        let bimolecular = remaining >= 2 && nodes >= 3 && rng.gen_bool(0.2);
        let kind = rng.gen_range(0..10);
        let s = |rng: &mut StdRng| ids[rng.gen_range(0..ids.len())].clone();
        let k_id = format!("k{r_idx}");
        let k_val = round3(rng.gen_range(0.01..2.0));
        if bimolecular {
            // A + B -> C : 2 reactants × 1 product = 2 edges.
            let (a, bb, c) = (s(rng), s(rng), s(rng));
            if a == bb {
                continue; // avoid accidental homodimer complicating counts
            }
            b = b.parameter(&k_id, k_val).reaction(
                &format!("r{r_idx}"),
                &[a.as_str(), bb.as_str()],
                &[c.as_str()],
                &format!("{k_id}*{a}*{bb}"),
            );
            remaining -= 2;
        } else {
            let (from, to) = (s(rng), s(rng));
            b = match kind {
                // reversible mass action (paper Fig. 11)
                0 => {
                    let kr_id = format!("kr{r_idx}");
                    let kr_val = round3(rng.gen_range(0.01..1.0));
                    b.parameter(&k_id, k_val).parameter(&kr_id, kr_val).reversible_reaction(
                        &format!("r{r_idx}"),
                        &[from.as_str()],
                        &[to.as_str()],
                        &format!("{k_id}*{from} - {kr_id}*{to}"),
                    )
                }
                // explicit Michaelis–Menten (paper Fig. 12)
                1 => {
                    let vmax = format!("Vmax{r_idx}");
                    let km = format!("Km{r_idx}");
                    b.parameter(&vmax, round3(rng.gen_range(0.5..10.0)))
                        .parameter(&km, round3(rng.gen_range(1.0..20.0)))
                        .reaction(
                            &format!("r{r_idx}"),
                            &[from.as_str()],
                            &[to.as_str()],
                            &format!("{vmax}*{from}/({km}+{from})"),
                        )
                }
                // MM via the shared function definition
                2 if has_mm_fn => {
                    let vmax = format!("Vmax{r_idx}");
                    let km = format!("Km{r_idx}");
                    b.parameter(&vmax, round3(rng.gen_range(0.5..10.0)))
                        .parameter(&km, round3(rng.gen_range(1.0..20.0)))
                        .reaction(
                            &format!("r{r_idx}"),
                            &[from.as_str()],
                            &[to.as_str()],
                            &format!("mm({from}, {vmax}, {km})"),
                        )
                }
                // degradation (1 edge by the nodes+edges metric)
                3 => b.parameter(&k_id, k_val).reaction(
                    &format!("r{r_idx}"),
                    &[from.as_str()],
                    &[],
                    &format!("{k_id}*{from}"),
                ),
                // plain first-order mass action (paper Fig. 10)
                _ => b.parameter(&k_id, k_val).reaction(
                    &format!("r{r_idx}"),
                    &[from.as_str()],
                    &[to.as_str()],
                    &format!("{k_id}*{from}"),
                ),
            };
            remaining -= 1;
        }
        r_idx += 1;
    }

    // Occasional extra component kinds so every merge stage is exercised.
    if index.is_multiple_of(7) && nodes >= 2 {
        b = b.initial_assignment(&ids[0].clone(), "2 * 5");
    }
    if index.is_multiple_of(11) && nodes >= 2 {
        let first = ids[0].clone();
        b = b.constraint(&format!("{first} >= 0"), Some("non-negative"));
    }
    if index.is_multiple_of(13) && nodes >= 1 {
        let first = ids[0].clone();
        b = b.event(
            &format!("pulse_{index}"),
            "time >= 50",
            &[(first.as_str(), &format!("{first} + 10") as &str)],
        );
    }
    if index.is_multiple_of(17) {
        use sbml_units::{Unit, UnitDefinition, UnitKind};
        b = b.unit_definition(UnitDefinition::new(
            "per_second",
            vec![Unit::of(UnitKind::Second).pow(-1)],
        ));
    }

    b.build()
}

fn build_small_annotated(
    id: &str,
    nodes: usize,
    edges: usize,
    rng: &mut StdRng,
    index: usize,
) -> Model {
    let mut b = ModelBuilder::new(id)
        .name(format!("annotated comparison model {index}"))
        .compartment("cell", 1.0);
    // All species from the common vocabulary (rotating window) so that the
    // baseline's database lookups resolve, as the paper's 17 models did.
    let mut ids = Vec::with_capacity(nodes);
    for j in 0..nodes {
        let (sid, name) = pool_species((index + j) % COMMON_SPECIES.len());
        let display = name.expect("common species have names");
        let amount = rng.gen_range(1.0..50.0_f64).round();
        b = b.species_named(&sid, &display, amount);
        ids.push(sid);
    }
    for e in 0..edges {
        let from = ids[e % ids.len()].clone();
        let to = ids[(e + 1) % ids.len()].clone();
        if from == to {
            continue;
        }
        let k = format!("k{e}");
        b = b.parameter(&k, round3(rng.gen_range(0.05..1.0))).reaction(
            &format!("r{e}"),
            &[from.as_str()],
            &[to.as_str()],
            &format!("{k}*{from}"),
        );
    }
    b.build()
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Number of shared-id parameters every [`corpus_conflict`] model carries
/// (each pair of models disagrees on all of their values).
pub const CONFLICT_SHARED_PARAMS: usize = 16;

/// Number of name-mapped alias species per [`corpus_conflict`] model.
pub const CONFLICT_ALIASES: usize = 8;

/// A deterministic **conflict-heavy corpus**: `n` models of identical
/// shape built so that *every* pair forces renames and records mappings —
/// the workload where per-pair cost is dominated by revalidating cached
/// content keys under live ID mappings:
///
/// * **parameters** share ids (`k{j}`) with values that diverge per model,
///   so every pair conflicts on every shared parameter — the incoming one
///   is renamed (`k{j}_1`) and the rename recorded as a mapping;
/// * **alias species** carry per-model ids under shared display names, so
///   every pair unifies them *by name* and records a mapping per alias;
/// * the bulk species share ids and values (plain id-hit duplicates), and
///   **reactions, rules, constraints and events** carry model-unique ids
///   and *large* commutative formulas (≈ two dozen operand groups) that
///   reference one or two mapped aliases amid dozens of untouched shared
///   species. Every such formula fails the clean-references fast path —
///   its cached key must be revalidated under the pair's mappings, after
///   which most components content-match the base model's — while only a
///   leaf or two of each actually changed: the exact shape that separates
///   incremental key renaming (O(touched leaves), dirty commutative
///   groups only) from full re-canonicalisation (O(formula));
/// * every eighth reaction references a conflicted `k{j}` instead, so its
///   mapped kinetics match nothing and the full insert path (rename the
///   maths, claim the id, extend the indexes) stays exercised too.
///
/// Deterministic and RNG-free: `corpus_conflict(n)` returns byte-identical
/// models on every call. Each model has 257 keyed components (64 + 8
/// species, 64 reactions, 48 rules, 24 constraints, 32 events, 16
/// functions, one compartment), which also clears the default
/// `parallel_push_threshold` of 256.
pub fn corpus_conflict(n: usize) -> Vec<Model> {
    (0..n).map(conflict_model).collect()
}

fn conflict_model(i: usize) -> Model {
    use sbml_math::infix;
    use sbml_model::{Event, EventAssignment, FunctionDefinition, Rule};

    const SPECIES: usize = 64;
    const REACTIONS: usize = 64;
    const RULES: usize = 48;
    const CONSTRAINTS: usize = 24;
    const EVENTS: usize = 32;
    const FUNCTIONS: usize = 16;

    // Shared-id species: id hits in every pair, never mapped — the
    // untouched operands of every formula.
    let sp = |j: usize| format!("cs{}", j % SPECIES);
    let al = |j: usize| format!("alias{i}_{}", j % CONFLICT_ALIASES);
    let k = |j: usize| format!("k{}", j % CONFLICT_SHARED_PARAMS);
    // A wide commutative sum of species products: `groups` untouched
    // operand groups seeded by `salt`, plus the caller-chosen head term.
    let wide = |head: String, salt: usize, groups: usize| -> String {
        let mut terms = vec![head];
        terms.extend((0..groups).map(|t| format!("{} * {}", sp(salt + t), sp(salt + 5 * t + 2))));
        terms.join(" + ")
    };

    let mut b = ModelBuilder::new(format!("CONF{i:03}")).compartment("cell", 1.0);
    for j in 0..SPECIES {
        b = b.species(&sp(j), (j % 9) as f64);
    }
    for j in 0..CONFLICT_ALIASES {
        // Divergent ids under shared names -> Mapped in every pair.
        b = b.species_named(&al(j), &format!("conf_alias{j}"), 2.0 + j as f64);
    }
    for j in 0..CONFLICT_SHARED_PARAMS {
        // Shared ids, divergent values -> conflict + rename in every pair.
        b = b.parameter(&k(j), round3(0.1 * (j + 1) as f64 + 0.013 * (i + 1) as f64));
    }
    for j in 0..REACTIONS {
        // Most reactions content-match the base once the alias mapping is
        // applied; every eighth references a conflicted parameter instead
        // and must be inserted with rewritten maths.
        let head = if j % 8 == 0 {
            format!("{} * {}", k(j), sp(j + 3))
        } else {
            format!("{} * {}", al(j), sp(j + 3))
        };
        let law = wide(head, j, 40);
        let (a, c) = (sp(j), sp(j + 1));
        b = b.reaction(&format!("r{i}_{j}"), &[a.as_str()], &[c.as_str()], &law);
    }
    let mut m = b.build();
    for j in 0..FUNCTIONS {
        // Model-unique ids and bodies (the trailing constant differs per
        // model), so pairs neither id- nor content-match: pure insert
        // work, runnable in the pipeline's first wave.
        m.function_definitions.push(FunctionDefinition::new(
            format!("f{i}_{j}"),
            vec!["x".into(), "y".into()],
            infix::parse(&format!("x*y + x*{j} + y + {i}")).unwrap(),
        ));
    }
    for j in 0..RULES {
        // Algebraic (variable-free) so the mapped rule content-matches.
        let math = wide(format!("{} * {}", al(j), sp(j + 7)), j + 11, 32);
        m.rules.push(Rule::Algebraic { math: infix::parse(&math).unwrap() });
    }
    for j in 0..CONSTRAINTS {
        let sum = wide(al(j), j + 29, 24);
        m.constraints.push(sbml_model::rule::Constraint {
            math: infix::parse(&format!("{sum} >= 0")).unwrap(),
            message: None,
        });
    }
    for j in 0..EVENTS {
        let trigger = wide(al(j), j + 41, 16);
        let mut ev = Event::new(infix::parse(&format!("{trigger} > 3")).unwrap());
        ev.id = Some(format!("e{i}_{j}"));
        for t in 0..2 {
            let sum = wide(format!("{} * {}", al(j + t), sp(j + t + 1)), j + t + 53, 12);
            ev.assignments.push(EventAssignment {
                variable: sp(j + t),
                math: infix::parse(&sum).unwrap(),
            });
        }
        m.events.push(ev);
    }
    m
}

/// A deterministic connected **query fragment** of a model — the kind of
/// subnetwork a corpus search starts from ("find this pathway fragment
/// across the corpus"). The fragment is the radius-`radius` reaction-hop
/// neighbourhood ([`sbml_compose::extract_submodel`]) of one seed species
/// (chosen by `seed` modulo the species count), so it keeps the host's
/// ids, names and kinetics verbatim: by construction it *embeds* in its
/// host under every semantics level, which is exactly what the matching
/// benches and property tests exercise. A species-free model yields an
/// empty fragment.
pub fn query_fragment(model: &Model, seed: usize, radius: usize) -> Model {
    let mut fragment = match model.species.len() {
        0 => Model::new(""),
        n => {
            let species = &model.species[seed % n];
            sbml_compose::extract_submodel(model, &[species.id.as_str()], radius)
        }
    };
    fragment.id = format!("{}_q{}r{}", model.id, seed, radius);
    fragment
}

/// Synonym groups used by [`synonym_variant`]: pairs of (canonical, alias)
/// drawn from the builtin synonym table, so heavy-semantics matching can
/// unify the variant with the original while id-based matching cannot.
const SYNONYM_ALIASES: &[(&str, &str)] = &[
    ("glucose", "dextrose"),
    ("ATP", "adenosine triphosphate"),
    ("ADP", "adenosine diphosphate"),
    ("NAD", "NAD+"),
    ("pyruvate", "pyruvic acid"),
    ("lactate", "lactic acid"),
    ("citrate", "citric acid"),
    ("oxygen", "O2"),
    ("water", "H2O"),
    ("phosphate", "Pi"),
    ("G6P", "glucose 6-phosphate"),
    ("F6P", "fructose 6-phosphate"),
    ("PEP", "phosphoenolpyruvate"),
    ("G3P", "glyceraldehyde 3-phosphate"),
];

/// Produce a *synonym-divergent* twin of a model, as if a second group had
/// curated the same pathway independently:
///
/// * every species id gets a `v2_` prefix (no id-level matches possible),
/// * species named with common vocabulary are renamed to a registered
///   synonym (`glucose` → `dextrose`, ...), so only synonym-aware matching
///   recovers the correspondence,
/// * commutative kinetic-law operands are reversed (`k*A` stays, `k*A*B`
///   becomes `B*A*k` structurally), exercising the Fig. 7 pattern,
/// * reaction and parameter ids get a `v2_` prefix too.
///
/// Heavy semantics should merge the twin back into the original with full
/// sharing; no-semantics should share nothing.
pub fn synonym_variant(model: &Model) -> Model {
    let mut twin = model.clone();
    twin.id = format!("{}_v2", model.id);

    // Batch-rename every global id with a v2_ prefix.
    let mut renames = std::collections::HashMap::new();
    for id in model.global_ids() {
        if id == "cell" {
            continue; // shared compartment keeps its identity
        }
        renames.insert(id.clone(), format!("v2_{id}"));
    }
    sbml_compose::rename::apply_renames(&mut twin, &renames);

    // Swap display names to synonyms where we have them. Unnamed species
    // get their original id as a display name — a second curator typically
    // preserves the biological label even while minting fresh ids, and
    // name-based matching is exactly what the paper's synonym tables feed.
    for (s, original) in twin.species.iter_mut().zip(&model.species) {
        match &s.name {
            Some(name) => {
                if let Some((_, alias)) =
                    SYNONYM_ALIASES.iter().find(|(canon, _)| canon.eq_ignore_ascii_case(name))
                {
                    s.name = Some((*alias).to_owned());
                }
            }
            None => s.name = Some(original.id.clone()),
        }
    }

    // Reverse commutative operand order in every kinetic law.
    for r in &mut twin.reactions {
        if let Some(kl) = &mut r.kinetic_law {
            kl.math = reverse_commutative(&kl.math);
        }
    }
    twin
}

/// Recursively reverse the operand order of commutative applications.
fn reverse_commutative(expr: &sbml_math::MathExpr) -> sbml_math::MathExpr {
    use sbml_math::MathExpr;
    match expr {
        MathExpr::Apply { op, args } => {
            let mut new_args: Vec<MathExpr> = args.iter().map(reverse_commutative).collect();
            if op.is_commutative() {
                new_args.reverse();
            }
            MathExpr::Apply { op: *op, args: new_args }
        }
        MathExpr::Call { function, args } => MathExpr::Call {
            function: function.clone(),
            args: args.iter().map(reverse_commutative).collect(),
        },
        MathExpr::Piecewise { pieces, otherwise } => MathExpr::Piecewise {
            pieces: pieces
                .iter()
                .map(|(v, c)| (reverse_commutative(v), reverse_commutative(c)))
                .collect(),
            otherwise: otherwise.as_ref().map(|o| Box::new(reverse_commutative(o))),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tier_is_deterministic_and_collides() {
        let corpus = corpus_scale(200);
        assert_eq!(corpus.len(), 200);
        // Deterministic and independent of corpus size: regenerating a
        // prefix yields byte-identical models.
        assert_eq!(corpus_scale(50), corpus[..50], "prefix-stable generation");
        // Family members share the motif chain verbatim: same species
        // ids and same reaction kinetics.
        let (a, b) = (&corpus[3], &corpus[3 + SCALE_MOTIF_FAMILIES]);
        let motif = |m: &Model| -> Vec<_> {
            m.reactions
                .iter()
                .filter(|r| r.id.starts_with("m3_"))
                .map(|r| (r.id.clone(), r.reactants.clone(), r.products.clone()))
                .collect()
        };
        assert_eq!(motif(a).len(), 3, "every model carries its family's 3-step chain");
        assert_eq!(motif(a), motif(b), "family members share the chain verbatim");
        // Size skew: most models are motif-sized, some grow a tail.
        let sizes: Vec<usize> = corpus.iter().map(|m| m.species.len()).collect();
        let small = sizes.iter().filter(|&&s| s <= 10).count();
        assert!(small > corpus.len() / 2, "most models are motif-sized");
        assert!(sizes.iter().any(|&s| s > 20), "a right-skewed tail exists");
    }

    #[test]
    fn corpus_has_documented_shape() {
        let corpus = corpus_187();
        assert_eq!(corpus.len(), CORPUS_SIZE);
        let nodes: Vec<usize> = corpus.iter().map(Model::nodes).collect();
        let edges: Vec<usize> = corpus.iter().map(Model::edges).collect();
        assert_eq!(*nodes.first().unwrap(), 0, "smallest model has 0 nodes");
        assert_eq!(*nodes.iter().max().unwrap(), MAX_NODES, "largest hits 194 nodes");
        assert_eq!(*edges.iter().max().unwrap(), MAX_EDGES, "largest hits 313 edges");
        // ascending size order (nodes+edges), as the experiment requires
        let sizes: Vec<usize> = corpus.iter().map(Model::size).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "corpus must come out in ascending size order");
    }

    #[test]
    fn deterministic() {
        let a = generate_model(42);
        let b = generate_model(42);
        assert_eq!(a, b);
        let c = generate_model(43);
        assert_ne!(a, c);
    }

    #[test]
    fn planned_sizes_are_exact() {
        for i in [0, 1, 50, 100, 186] {
            let (n, e) = planned_size(i);
            let m = generate_model(i);
            assert_eq!(m.nodes(), n, "model {i} nodes");
            assert_eq!(m.edges(), e, "model {i} edges");
        }
    }

    #[test]
    fn models_are_valid_sbml() {
        for i in [0, 1, 13, 35, 70, 119, 186] {
            let m = generate_model(i);
            let issues = sbml_model::validate(&m);
            let errors: Vec<_> = issues
                .iter()
                .filter(|x| x.severity == sbml_model::Severity::Error)
                .collect();
            assert!(errors.is_empty(), "model {i}: {errors:?}");
            // and they round-trip through SBML text
            let text = sbml_model::write_sbml(&m);
            let back = sbml_model::parse_sbml(&text).unwrap();
            assert_eq!(back, m, "model {i} round trip");
        }
    }

    #[test]
    fn corpus_17_shape() {
        let models = corpus_17();
        assert_eq!(models.len(), 17);
        for m in &models {
            assert!((4..=7).contains(&m.nodes()), "nodes {} out of 4–7", m.nodes());
            assert!(m.edges() <= 3, "edges {} out of 0–3", m.edges());
            // all species annotated (names from the common vocabulary)
            for s in &m.species {
                assert!(s.name.is_some());
            }
        }
    }

    #[test]
    fn models_overlap_for_composition() {
        // Neighbouring corpus models share species (pool overlap), so
        // composition has real work to do.
        let a = generate_model(100);
        let b = generate_model(101);
        let ids_a: std::collections::BTreeSet<_> =
            a.species.iter().map(|s| s.id.clone()).collect();
        let shared = b.species.iter().filter(|s| ids_a.contains(&s.id)).count();
        assert!(shared > 0, "adjacent models must overlap");
    }

    #[test]
    fn corpus_slice_matches_full_corpus() {
        let slice = corpus_slice(40..44);
        let full = corpus_187();
        assert_eq!(slice.as_slice(), &full[40..44]);
    }

    #[test]
    fn batch_all_pairs_on_corpus_equals_raw_pairs() {
        // The Fig. 8 workload in miniature: prepared batch composition
        // over a corpus slice must match raw pairwise composition.
        let models = corpus_slice(38..43);
        let composer = sbml_compose::Composer::default();
        let batch = sbml_compose::BatchComposer::new(composer.clone()).with_threads(2);
        let prepared = batch.prepare_corpus(&models);
        let results = batch.all_pairs_with(&prepared, |i, j, result| (i, j, result));
        assert_eq!(results.len(), 5 * 4 / 2);
        for (i, j, result) in &results {
            let raw = composer.compose(&models[*i], &models[*j]);
            assert_eq!(result.model, raw.model, "pair ({i},{j})");
            assert_eq!(result.log.events, raw.log.events, "pair ({i},{j})");
            assert_eq!(result.mappings, raw.mappings, "pair ({i},{j})");
        }
    }

    #[test]
    fn corpus_models_compose_cleanly() {
        let composer = sbml_compose::Composer::default();
        let a = generate_model(30);
        let b = generate_model(31);
        let result = composer.compose(&a, &b);
        // No validity errors in the composed model.
        let issues = sbml_model::validate(&result.model);
        let errors: Vec<_> = issues
            .iter()
            .filter(|x| x.severity == sbml_model::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}\n{}", result.log.to_text());
    }

    #[test]
    fn conflict_corpus_is_deterministic_and_conflict_heavy() {
        let a = corpus_conflict(3);
        let b = corpus_conflict(3);
        assert_eq!(a, b, "corpus must be byte-identical across calls");
        assert_eq!(a.len(), 3);

        // Every pair must force renames AND mappings.
        let composer = sbml_compose::Composer::default();
        let result = composer.compose(&a[0], &a[1]);
        use sbml_compose::EventKind;
        let mapped = result.log.of_kind(EventKind::Mapped).count();
        let renamed = result.log.of_kind(EventKind::Renamed).count();
        assert!(mapped >= CONFLICT_ALIASES, "alias species should map by name ({mapped})");
        assert!(renamed >= CONFLICT_SHARED_PARAMS, "all shared parameters should rename ({renamed})");
        assert!(
            result.mappings.len() >= CONFLICT_SHARED_PARAMS + CONFLICT_ALIASES,
            "every pair records param renames and alias mappings ({})",
            result.mappings.len()
        );
    }

    #[test]
    fn conflict_corpus_pipelined_equals_serial() {
        let models = corpus_conflict(2);
        let serial_opts = sbml_compose::ComposeOptions::default()
            .with_merge_pipeline(false)
            .with_parallel_push_threshold(0);
        let pipelined_opts = sbml_compose::ComposeOptions::default()
            .with_parallel_push_threshold(0)
            .with_pipeline_threads(4);
        let serial = sbml_compose::Composer::new(serial_opts).compose(&models[0], &models[1]);
        let pipelined =
            sbml_compose::Composer::new(pipelined_opts).compose(&models[0], &models[1]);
        assert_eq!(pipelined.model, serial.model);
        assert_eq!(pipelined.log.events, serial.log.events);
        assert_eq!(pipelined.mappings, serial.mappings);
    }

    #[test]
    fn query_fragments_are_deterministic_verbatim_subsets() {
        let m = generate_model(120);
        let a = query_fragment(&m, 7, 1);
        let b = query_fragment(&m, 7, 1);
        assert_eq!(a, b, "fragments must be deterministic");
        assert!(!a.species.is_empty());
        assert!(a.species.len() < m.species.len(), "a fragment is a proper subset");
        // Every fragment component is the host's, verbatim.
        for s in &a.species {
            assert_eq!(m.species_by_id(&s.id), Some(s));
        }
        for r in &a.reactions {
            assert_eq!(m.reaction_by_id(&r.id), Some(r));
        }
        // Larger radius never shrinks the fragment.
        let wider = query_fragment(&m, 7, 2);
        assert!(wider.species.len() >= a.species.len());
        // Species-free hosts produce empty fragments.
        assert!(query_fragment(&Model::new("void"), 0, 1).species.is_empty());
    }

    #[test]
    fn largest_model_simulates() {
        // The biggest corpus model must at least compile into a system and
        // take a few ODE steps without error.
        let m = generate_model(186);
        let trace = bio_sim::ode::simulate_rk4(&m, 0.1, 0.01).unwrap();
        assert!(trace.len() > 5);
    }
}

#[cfg(test)]
mod synonym_variant_tests {
    use super::*;

    #[test]
    fn variant_shares_nothing_by_id_everything_by_synonym() {
        let original = corpus_17()[4].clone();
        let twin = synonym_variant(&original);
        // No species id survives verbatim.
        let orig_ids: std::collections::BTreeSet<_> =
            original.species.iter().map(|s| s.id.clone()).collect();
        assert!(twin.species.iter().all(|s| !orig_ids.contains(&s.id)));

        // Heavy semantics re-unifies all species; none-semantics cannot.
        let heavy = sbml_compose::Composer::default().compose(&original, &twin);
        assert_eq!(
            heavy.model.species.len(),
            original.species.len(),
            "heavy semantics must unify every synonym pair\n{}",
            heavy.log.to_text()
        );
        let none = sbml_compose::Composer::new(sbml_compose::ComposeOptions::none())
            .compose(&original, &twin);
        assert_eq!(
            none.model.species.len(),
            original.species.len() + twin.species.len(),
            "no-semantics must share nothing"
        );
    }

    #[test]
    fn variant_is_valid_and_deterministic() {
        let m = generate_model(50);
        let t1 = synonym_variant(&m);
        let t2 = synonym_variant(&m);
        assert_eq!(t1, t2);
        let issues = sbml_model::validate(&t1);
        assert!(
            issues.iter().all(|i| i.severity != sbml_model::Severity::Error),
            "{issues:?}"
        );
    }

    #[test]
    fn commutative_reversal_preserves_patterns() {
        use sbml_math::pattern::Pattern;
        let m = generate_model(60);
        for r in &m.reactions {
            if let Some(kl) = &r.kinetic_law {
                let reversed = reverse_commutative(&kl.math);
                assert_eq!(Pattern::of(&kl.math), Pattern::of(&reversed), "{}", r.id);
            }
        }
    }
}
