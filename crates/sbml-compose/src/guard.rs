//! Resource governance and fault isolation for every fan-out path.
//!
//! The rest of the crate is written for the happy path: merge passes may
//! `panic!` on internal invariant violations, and batch fan-outs join
//! worker threads with `expect`. That is fine for a one-shot CLI run but
//! not for the long-running corpus service the ROADMAP aims at, where one
//! poisoned pair must not abort a 17k-pair batch. This module supplies the
//! vocabulary that turns those crashes and overruns into data:
//!
//! * [`Budget`] — a declarative resource envelope: an optional work-step
//!   ceiling and an optional wall-clock deadline. [`Budget::start`] turns
//!   it into a running [`Meter`].
//! * [`Meter`] — the running counterpart, shared by reference across
//!   worker threads; charged at *push* granularity and checked at *pass*
//!   granularity by the merge pipeline.
//! * [`ExecError`] — the structured failure vocabulary: a contained panic,
//!   an exceeded deadline, or an exhausted step ceiling, each tagged with
//!   the [`Site`] where it surfaced.
//! * [`ItemOutcome`] / [`BatchReport`] — per-item results of a guarded
//!   fan-out ([`crate::BatchComposer::try_all_pairs`] and friends): every
//!   item is `Ok`, `Degraded` (completed on a fallback rung), or `Failed`,
//!   and surviving items are bit-identical to a fault-free run.
//! * [`PushOutcome`] — result of one guarded session push
//!   ([`crate::CompositionSession::push_guarded`]); records whether the
//!   degradation ladder fell back from the pipelined DAG executor to the
//!   serial reference path.
//! * [`fail_point`] — deterministic fault-injection hook, compiled to a
//!   no-op unless the crate's `fault-injection` feature is enabled. Tests
//!   arm a `injection::FailPlan` naming the [`Site`]s that must panic.
//!
//! Guarded entry points never let a contained fault corrupt the
//! accumulator: a failed push rolls the session back to its pre-push
//! state, and a failed batch item leaves every other item untouched.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A place where execution can fault or exhaust its budget. Sites are
/// keyed by deterministic indexes (pass number, item ordinal), never by
/// thread identity, so fault injection and error reports are stable
/// across scheduling orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// One merge pass (Fig. 4 pass index, 0–11) inside a push's DAG
    /// execution.
    Pass(usize),
    /// One session push as a whole (ordinal of the push in the session).
    Push(usize),
    /// One item of a batch fan-out: the pair ordinal in `try_all_pairs`
    /// or the corpus index in `try_map_corpus`.
    Shard(usize),
    /// One candidate refinement of a corpus query (candidate ordinal).
    Query(usize),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Pass(i) => write!(f, "pass {i}"),
            Site::Push(i) => write!(f, "push {i}"),
            Site::Shard(i) => write!(f, "shard {i}"),
            Site::Query(i) => write!(f, "query candidate {i}"),
        }
    }
}

/// How one unit of guarded work ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The work panicked; the panic was contained at the fan-out boundary
    /// and the payload preserved as text.
    Panicked {
        /// Where the panic surfaced.
        site: Site,
        /// The panic payload, stringified.
        detail: String,
    },
    /// The wall-clock deadline of the governing [`Budget`] passed.
    DeadlineExceeded {
        /// The check point that observed the overrun.
        site: Site,
        /// Elapsed time since the meter started, in milliseconds.
        elapsed_ms: u64,
    },
    /// The work-step ceiling of the governing [`Budget`] was reached.
    StepsExhausted {
        /// The charge point that hit the ceiling.
        site: Site,
        /// The configured ceiling.
        limit: u64,
    },
}

impl ExecError {
    /// The site the error is attributed to.
    pub fn site(&self) -> Site {
        match *self {
            ExecError::Panicked { site, .. }
            | ExecError::DeadlineExceeded { site, .. }
            | ExecError::StepsExhausted { site, .. } => site,
        }
    }

    /// True for resource exhaustion (deadline or steps), false for a
    /// contained panic.
    pub fn is_budget(&self) -> bool {
        !matches!(self, ExecError::Panicked { .. })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Panicked { site, detail } => {
                write!(f, "panic contained at {site}: {detail}")
            }
            ExecError::DeadlineExceeded { site, elapsed_ms } => {
                write!(f, "deadline exceeded at {site} after {elapsed_ms} ms")
            }
            ExecError::StepsExhausted { site, limit } => {
                write!(f, "step budget of {limit} exhausted at {site}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A declarative resource envelope: how much work a guarded operation may
/// do before it must stop. The default is unlimited on both axes.
///
/// Budgets are plain data — cheap to copy, and *fingerprint-neutral* like
/// every other execution knob: they never change what a successful
/// operation computes, only whether it is allowed to finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    max_steps: Option<u64>,
    deadline: Option<Duration>,
}

impl Budget {
    /// No ceiling on steps or wall-clock time.
    pub const fn unlimited() -> Budget {
        Budget { max_steps: None, deadline: None }
    }

    /// Cap total work steps. For session pushes a step is one incoming
    /// component; for batch fan-outs each item costs its component count.
    #[must_use]
    pub fn with_max_steps(mut self, steps: u64) -> Budget {
        self.max_steps = Some(steps);
        self
    }

    /// Set a wall-clock deadline relative to [`Budget::start`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// [`Budget::with_deadline`] in milliseconds, matching the CLI flag.
    #[must_use]
    pub fn with_deadline_ms(self, ms: u64) -> Budget {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// The configured step ceiling, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// True when neither axis is bounded.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline.is_none()
    }

    /// Start the clock: produce a running [`Meter`] for this budget.
    pub fn start(&self) -> Meter {
        let started = Instant::now();
        Meter {
            started,
            deadline: self.deadline.map(|d| started + d),
            max_steps: self.max_steps,
            steps: AtomicU64::new(0),
        }
    }
}

/// A running [`Budget`]: tracks steps spent and the absolute deadline.
/// Shared by `&Meter` across worker threads (step counting is atomic).
#[derive(Debug)]
pub struct Meter {
    started: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: AtomicU64,
}

impl Meter {
    /// A meter that never trips — useful as a default.
    pub fn unlimited() -> Meter {
        Budget::unlimited().start()
    }

    /// Charge `n` work steps at `site`, then check the deadline. Fails
    /// with [`ExecError::StepsExhausted`] once cumulative charges exceed
    /// the ceiling.
    pub fn charge(&self, n: u64, site: Site) -> Result<(), ExecError> {
        if let Some(limit) = self.max_steps {
            let before = self.steps.fetch_add(n, Ordering::Relaxed);
            if before.saturating_add(n) > limit {
                return Err(ExecError::StepsExhausted { site, limit });
            }
        } else {
            self.steps.fetch_add(n, Ordering::Relaxed);
        }
        self.check_deadline(site)
    }

    /// Check only the wall-clock axis at `site`.
    pub fn check_deadline(&self, site: Site) -> Result<(), ExecError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExecError::DeadlineExceeded {
                    site,
                    elapsed_ms: self.started.elapsed().as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

/// How one item of a guarded fan-out ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome<T> {
    /// Completed normally — bit-identical to a fault-free run.
    Ok(T),
    /// Completed, but on a fallback rung of the degradation ladder; the
    /// fault that forced the fallback is preserved.
    Degraded {
        /// The result, identical to what the primary rung would produce.
        value: T,
        /// Why the primary rung was abandoned.
        fault: ExecError,
    },
    /// Did not complete; no partial state escaped the item boundary.
    Failed(ExecError),
}

impl<T> ItemOutcome<T> {
    /// The computed value, if the item completed (normally or degraded).
    pub fn value(&self) -> Option<&T> {
        match self {
            ItemOutcome::Ok(v) | ItemOutcome::Degraded { value: v, .. } => Some(v),
            ItemOutcome::Failed(_) => None,
        }
    }

    /// Consume the outcome, keeping the value if the item completed.
    pub fn into_value(self) -> Option<T> {
        match self {
            ItemOutcome::Ok(v) | ItemOutcome::Degraded { value: v, .. } => Some(v),
            ItemOutcome::Failed(_) => None,
        }
    }

    /// The fault, if any (degraded items carry one too).
    pub fn error(&self) -> Option<&ExecError> {
        match self {
            ItemOutcome::Ok(_) => None,
            ItemOutcome::Degraded { fault, .. } => Some(fault),
            ItemOutcome::Failed(e) => Some(e),
        }
    }

    /// True for [`ItemOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ItemOutcome::Ok(_))
    }

    /// True for [`ItemOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, ItemOutcome::Failed(_))
    }
}

/// Per-item results of a guarded fan-out, in deterministic item order
/// (pair ordinal for `try_all_pairs`, corpus index for `try_map_corpus`).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport<T> {
    /// One outcome per fan-out item, in item order.
    pub items: Vec<ItemOutcome<T>>,
}

impl<T> BatchReport<T> {
    /// Items that completed normally.
    pub fn ok_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_ok()).count()
    }

    /// Items that failed.
    pub fn failed_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_failed()).count()
    }

    /// True when every item completed normally.
    pub fn fully_ok(&self) -> bool {
        self.items.iter().all(|i| i.is_ok())
    }

    /// The surviving values (normal and degraded), in item order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.items.iter().filter_map(|i| i.value())
    }

    /// `(item index, fault)` for every failed or degraded item.
    pub fn errors(&self) -> impl Iterator<Item = (usize, &ExecError)> {
        self.items.iter().enumerate().filter_map(|(k, i)| i.error().map(|e| (k, e)))
    }
}

/// Result of one guarded session push that completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushOutcome {
    /// `None` when the primary rung succeeded; `Some(fault)` when the
    /// pipelined DAG execution faulted and the serial reference path
    /// produced the (identical) result instead.
    pub degraded: Option<ExecError>,
}

impl PushOutcome {
    pub(crate) fn clean() -> PushOutcome {
        PushOutcome { degraded: None }
    }
}

/// Stringify a caught panic payload for [`ExecError::Panicked`].
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Deterministic fault-injection point. Without the `fault-injection`
/// cargo feature this compiles to a no-op and costs nothing; with the
/// feature enabled it panics when the armed `injection::FailPlan`
/// names `site`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fail_point(_site: Site) {}

/// Deterministic fault-injection point (feature-enabled build): panics
/// when the armed `injection::FailPlan` names `site`.
#[cfg(feature = "fault-injection")]
pub fn fail_point(site: Site) {
    injection::hit(site);
}

/// Test-only fault injection: a process-global plan of [`Site`]s that
/// must panic, armed for the duration of one closure. Only compiled with
/// the `fault-injection` cargo feature.
#[cfg(feature = "fault-injection")]
pub mod injection {
    use super::Site;
    use std::sync::Mutex;

    /// Marker prefix of every injected panic payload, so contained-error
    /// details are recognizable in assertions.
    pub const INJECTED: &str = "injected fault";

    static PLAN: Mutex<Option<FailPlan>> = Mutex::new(None);
    // Serializes `with_plan` callers so concurrently running tests cannot
    // observe each other's plans.
    static SERIAL: Mutex<()> = Mutex::new(());

    /// The set of sites that must panic while the plan is armed.
    #[derive(Debug, Clone, Default)]
    pub struct FailPlan {
        sites: Vec<Site>,
    }

    impl FailPlan {
        /// An empty plan (no site fails).
        pub fn new() -> FailPlan {
            FailPlan::default()
        }

        /// Add a site that must panic.
        #[must_use]
        pub fn fail_at(mut self, site: Site) -> FailPlan {
            self.sites.push(site);
            self
        }
    }

    pub(super) fn hit(site: Site) {
        let armed = PLAN.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(plan) = armed.as_ref() {
            if plan.sites.contains(&site) {
                drop(armed);
                panic!("{INJECTED} at {site}");
            }
        }
    }

    /// Run `f` with `plan` armed, then disarm. Callers are serialized on
    /// a global lock; the plan is disarmed even if `f` panics.
    pub fn with_plan<T>(plan: FailPlan, f: impl FnOnce() -> T) -> T {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = None;
        match result {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let meter = Meter::unlimited();
        for i in 0..1000 {
            meter.charge(u64::MAX / 2000, Site::Push(i)).expect("unlimited");
        }
        meter.check_deadline(Site::Push(0)).expect("no deadline");
    }

    #[test]
    fn step_ceiling_trips_at_the_right_charge() {
        let meter = Budget::unlimited().with_max_steps(10).start();
        meter.charge(6, Site::Push(0)).expect("6 <= 10");
        meter.charge(4, Site::Push(1)).expect("10 <= 10");
        let err = meter.charge(1, Site::Push(2)).unwrap_err();
        assert_eq!(err, ExecError::StepsExhausted { site: Site::Push(2), limit: 10 });
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let meter = Budget::unlimited().with_deadline_ms(0).start();
        let err = meter.check_deadline(Site::Pass(3)).unwrap_err();
        assert!(matches!(err, ExecError::DeadlineExceeded { site: Site::Pass(3), .. }));
        assert!(err.is_budget());
    }

    #[test]
    fn report_partitions_outcomes() {
        let report = BatchReport {
            items: vec![
                ItemOutcome::Ok(1),
                ItemOutcome::Failed(ExecError::StepsExhausted { site: Site::Shard(1), limit: 5 }),
                ItemOutcome::Degraded {
                    value: 3,
                    fault: ExecError::Panicked { site: Site::Shard(2), detail: "x".into() },
                },
            ],
        };
        assert_eq!(report.ok_count(), 1);
        assert_eq!(report.failed_count(), 1);
        assert!(!report.fully_ok());
        assert_eq!(report.values().copied().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(report.errors().map(|(k, _)| k).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn display_is_stable() {
        let e = ExecError::Panicked { site: Site::Pass(7), detail: "boom".into() };
        assert_eq!(e.to_string(), "panic contained at pass 7: boom");
        assert_eq!(e.site(), Site::Pass(7));
        let e = ExecError::StepsExhausted { site: Site::Query(2), limit: 9 };
        assert_eq!(e.to_string(), "step budget of 9 exhausted at query candidate 2");
    }
}
