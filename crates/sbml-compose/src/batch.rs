//! Corpus-scale batch composition: the paper's Figure 8 workload
//! (compose every model of a corpus with every other) as a first-class
//! API instead of a caller-side double loop.
//!
//! The raw path re-derives each model's analysis (content keys, indexes,
//! initial values) inside every pair, so an *n*-model corpus pays for each
//! model's analysis *n−1* times. [`BatchComposer`] prepares every model
//! exactly once ([`BatchComposer::prepare_corpus`]), publishes the
//! preparations as a shared read-only key store
//! (`Vec<Arc<PreparedModel>>`), and fans the 187×186/2 pair grid out over
//! worker threads — preparations are immutable, so workers share them
//! without locks or copies.
//!
//! Output is bit-for-bit identical to calling [`Composer::compose`] on
//! each raw pair (property-tested), in deterministic ascending
//! `(i, j), i < j` order regardless of thread count.
//!
//! # Cost model
//!
//! For an *n*-model corpus with per-model size *m* and *W* workers:
//!
//! * [`BatchComposer::prepare_corpus`] — n independent preparations,
//!   O(n·m) work striped across W threads; each result is `Arc`-shared,
//!   so publishing it to every pair is a refcount bump.
//! * [`BatchComposer::all_pairs`] / [`all_pairs_with`] — n(n−1)/2 merges
//!   of prepared pairs, O(m) each (index probes, no per-pair
//!   re-analysis), striped across W threads; results are re-ordered into
//!   ascending pair order after the join, so scheduling never leaks into
//!   output.
//!
//! Parallelism granularity is complementary to the session's: this module
//! fans out *across* models/pairs, while
//! [`CompositionSession`](crate::CompositionSession) can additionally fan
//! out the key computation *inside* one large push
//! ([`ComposeOptions::parallel_push_threshold`](crate::ComposeOptions::parallel_push_threshold)).
//!
//! [`all_pairs_with`]: BatchComposer::all_pairs_with

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use sbml_model::Model;

use crate::composer::{ComposeResult, Composer, SharedComposeResult};
use crate::guard::{self, BatchReport, Budget, ExecError, ItemOutcome, Site};
use crate::pool::WorkerPool;
use crate::prepared::PreparedModel;

/// Batch driver over a [`Composer`]; see the [module docs](self).
///
/// ```
/// use sbml_compose::{BatchComposer, Composer};
/// use sbml_model::builder::ModelBuilder;
///
/// let models: Vec<_> = (0..4)
///     .map(|i| {
///         ModelBuilder::new(format!("m{i}"))
///             .compartment("cell", 1.0)
///             .species(&format!("S{i}"), 1.0)
///             .species("shared", 2.0)
///             .build()
///     })
///     .collect();
/// let batch = BatchComposer::new(Composer::default());
/// let prepared = batch.prepare_corpus(&models);
/// let pairs = batch.all_pairs(&prepared);
/// assert_eq!(pairs.len(), 4 * 3 / 2);
/// assert!(pairs.iter().all(|p| p.species == 3)); // S_i, S_j, shared
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchComposer {
    composer: Composer,
    threads: usize,
    /// Lazily-spawned batch-lifetime [`WorkerPool`], shared by every
    /// pair session of every `all_pairs*` call on this composer, so a
    /// session that needs intra-push parallelism never spawns per pair.
    pool: OnceLock<Arc<WorkerPool>>,
}

/// Compact per-pair outcome of [`BatchComposer::all_pairs`] — the corpus
/// grid is large (17 391 pairs for the paper's 187 models), so the default
/// entry point keeps counts, not merged models; use
/// [`BatchComposer::all_pairs_with`] to observe full [`ComposeResult`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSummary {
    /// Index of the pair's first (base) model in the prepared corpus.
    pub a: usize,
    /// Index of the pair's second model.
    pub b: usize,
    /// Species count of the composed model.
    pub species: usize,
    /// Reaction count of the composed model.
    pub reactions: usize,
    /// Total component count of the composed model.
    pub components: usize,
    /// Conflicts logged while composing.
    pub conflicts: usize,
    /// ID mappings recorded (second-model id → composed id).
    pub mappings: usize,
}

impl BatchComposer {
    /// Batch driver using `composer`'s options, with automatic thread
    /// count (one worker per available core).
    pub fn new(composer: Composer) -> BatchComposer {
        BatchComposer { composer, threads: 0, pool: OnceLock::new() }
    }

    /// Fix the worker-thread count (`0` = automatic). Thread count never
    /// affects output, only wall time.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> BatchComposer {
        self.threads = threads;
        self
    }

    /// The underlying composer.
    pub fn composer(&self) -> &Composer {
        &self.composer
    }

    /// The batch-lifetime worker pool, spawned on first use and sized by
    /// the composer's [`pool_threads`](crate::ComposeOptions::pool_threads)
    /// knob (`0` = host parallelism). Every fan-out on this composer —
    /// pair grids, corpus sweeps, and the per-pair session internals —
    /// runs on this one pool, and callers layering their own fan-out on
    /// top (e.g. `sbml-match`'s shard scatter) should reuse it via
    /// [`WorkerPool::run_scoped`] rather than spawning threads: nested
    /// `run_scoped` calls on the same pool are deadlock-free by
    /// construction.
    pub fn shared_pool(&self) -> Arc<WorkerPool> {
        Arc::clone(self.pool.get_or_init(|| {
            Arc::new(match self.composer.options().pool_threads {
                0 => WorkerPool::for_host(),
                n => WorkerPool::new(n),
            })
        }))
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        };
        let n = if self.threads == 0 { auto() } else { self.threads };
        n.clamp(1, jobs.max(1))
    }

    /// Prepare every corpus model exactly once, sharding the independent
    /// preparations across worker threads. The result is the shared
    /// read-only key store every later batch call borrows from.
    pub fn prepare_corpus(&self, models: &[Model]) -> Vec<Arc<PreparedModel>> {
        let workers = self.worker_count(models.len());
        if workers <= 1 {
            return models.iter().map(|m| Arc::new(self.composer.prepare(m))).collect();
        }
        self.striped(models.len(), workers, |i| Arc::new(self.composer.prepare(&models[i])))
    }

    /// Shared engine of the corpus fan-outs: run `job` for `0..jobs`
    /// striped across `workers` stripes on the shared pool (the caller
    /// thread runs stripe 0 and drains unclaimed stripes, per
    /// [`WorkerPool::run_scoped`]), returning results in job order
    /// regardless of scheduling.
    fn striped<T, J>(&self, jobs: usize, workers: usize, job: J) -> Vec<T>
    where
        T: Send,
        J: Fn(usize) -> T + Sync,
    {
        let mut stripes: Vec<Vec<(usize, T)>> = Vec::new();
        stripes.resize_with(workers, Vec::new);
        {
            let run_stripe = |w: usize| -> Vec<(usize, T)> {
                let mut out = Vec::new();
                let mut i = w;
                while i < jobs {
                    out.push((i, job(i)));
                    i += workers;
                }
                out
            };
            let (head, tail) = stripes.split_at_mut(1);
            let run_stripe = &run_stripe;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = tail
                .iter_mut()
                .enumerate()
                .map(|(k, cell)| {
                    Box::new(move || *cell = run_stripe(k + 1)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let head_cell = &mut head[0];
            self.shared_pool().run_scoped(|| *head_cell = run_stripe(0), tasks);
        }
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(jobs, || None);
        for (i, value) in stripes.into_iter().flatten() {
            slots[i] = Some(value);
        }
        slots.into_iter().map(|slot| slot.expect("every job produced a result")).collect()
    }

    /// Map every prepared corpus model through `f` on the batch's worker
    /// threads — the same thread-per-shard fan-out as
    /// [`BatchComposer::all_pairs`], but one job per *model* instead of
    /// per pair. Results come back in corpus order regardless of
    /// scheduling. This is the read-only corpus sweep behind parallel
    /// matching (`sbml-match`'s `MatchIndex::query_corpus` refines each
    /// candidate model on one of these shards).
    pub fn map_corpus<T, F>(&self, prepared: &[Arc<PreparedModel>], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &PreparedModel) -> T + Sync,
    {
        let workers = self.worker_count(prepared.len());
        if workers <= 1 {
            return prepared.iter().enumerate().map(|(i, p)| f(i, p)).collect();
        }
        self.striped(prepared.len(), workers, |i| f(i, &prepared[i]))
    }

    /// Compose every unordered pair `(i, j), i < j` of the prepared
    /// corpus, mapping each [`ComposeResult`] through `map` as it is
    /// produced (so the full merged models never accumulate). Pairs are
    /// striped across worker threads; results come back in ascending pair
    /// order independent of scheduling.
    pub fn all_pairs_with<T, F>(&self, prepared: &[Arc<PreparedModel>], map: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize, ComposeResult) -> T + Sync,
    {
        self.all_pairs_shared_with(prepared, |i, j, result| {
            map(i, j, result.into_compose_result())
        })
    }

    /// [`BatchComposer::all_pairs_with`] without forcing a materialised
    /// model per pair: each base is adopted copy-on-write
    /// ([`Composer::compose_shared`]), so a pair whose second model is
    /// fully absorbed as duplicates yields
    /// [`SharedModel::Base`](crate::SharedModel::Base) — the corpus `Arc`
    /// itself, no per-pair clone of the base. This is the engine under
    /// [`BatchComposer::all_pairs`]: the Fig. 8 fixed cost per pair drops
    /// from O(base size) to O(1) + merge work.
    pub fn all_pairs_shared_with<T, F>(&self, prepared: &[Arc<PreparedModel>], map: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize, SharedComposeResult) -> T + Sync,
    {
        let n = prepared.len();
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect();
        let workers = self.worker_count(pairs.len());
        let pool = self.shared_pool();
        let mut results: Vec<(usize, T)> = std::thread::scope(|scope| {
            let composer = &self.composer;
            let (pairs, prepared, map, pool) = (&pairs, prepared, &map, &pool);
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut k = w;
                        while k < pairs.len() {
                            let (i, j) = pairs[k];
                            let result = composer.compose_shared_on(
                                Arc::clone(&prepared[i]),
                                &prepared[j],
                                Some(Arc::clone(pool)),
                            );
                            out.push((k, map(i, j, result)));
                            k += workers;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("pair worker panicked"))
                .collect()
        });
        results.sort_unstable_by_key(|(k, _)| *k);
        results.into_iter().map(|(_, value)| value).collect()
    }

    /// The Fig. 8 workload: every unordered corpus pair, summarised. Runs
    /// on the copy-on-write pair path — a Duplicate-only pair never
    /// clones its base.
    pub fn all_pairs(&self, prepared: &[Arc<PreparedModel>]) -> Vec<PairSummary> {
        self.all_pairs_shared_with(prepared, |a, b, result| {
            let model = result.model.as_model();
            PairSummary {
                a,
                b,
                species: model.species.len(),
                reactions: model.reactions.len(),
                components: model.component_count(),
                conflicts: result.log.conflict_count(),
                mappings: result.mappings.len(),
            }
        })
    }

    /// Fault-contained [`BatchComposer::all_pairs_with`]: every pair runs
    /// under `budget` with its panics caught at the item boundary, so one
    /// poisoned pair becomes one [`ItemOutcome::Failed`] entry while all
    /// surviving pairs complete bit-identical to a fault-free run. The
    /// step ceiling charges each pair its combined component count in
    /// ascending pair order, so which pairs a tight budget cuts off is
    /// deterministic — independent of thread count and scheduling; the
    /// wall-clock deadline is shared across the batch and checked before
    /// each pair starts.
    pub fn try_all_pairs_with<T, F>(
        &self,
        prepared: &[Arc<PreparedModel>],
        budget: &Budget,
        map: F,
    ) -> BatchReport<T>
    where
        T: Send,
        F: Fn(usize, usize, ComposeResult) -> T + Sync,
    {
        let n = prepared.len();
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j))).collect();
        let costs: Vec<u64> = pairs
            .iter()
            .map(|&(i, j)| {
                (prepared[i].model().component_count() + prepared[j].model().component_count())
                    as u64
            })
            .collect();
        let pool = self.shared_pool();
        let outcome = |k: usize| {
            let (i, j) = pairs[k];
            let result = self.composer.compose_shared_on(
                Arc::clone(&prepared[i]),
                &prepared[j],
                Some(Arc::clone(&pool)),
            );
            map(i, j, result.into_compose_result())
        };
        self.run_guarded(pairs.len(), &costs, budget, outcome)
    }

    /// Fault-contained [`BatchComposer::all_pairs`]: the Fig. 8 grid as a
    /// [`BatchReport`] of [`PairSummary`] items.
    pub fn try_all_pairs(
        &self,
        prepared: &[Arc<PreparedModel>],
        budget: &Budget,
    ) -> BatchReport<PairSummary> {
        self.try_all_pairs_with(prepared, budget, |a, b, result| PairSummary {
            a,
            b,
            species: result.model.species.len(),
            reactions: result.model.reactions.len(),
            components: result.model.component_count(),
            conflicts: result.log.conflict_count(),
            mappings: result.mappings.len(),
        })
    }

    /// Fault-contained [`BatchComposer::map_corpus`]: one job per corpus
    /// model under `budget`, with the same containment and deterministic
    /// step-gating semantics as [`BatchComposer::try_all_pairs_with`]
    /// (each model costs its component count).
    pub fn try_map_corpus<T, F>(
        &self,
        prepared: &[Arc<PreparedModel>],
        budget: &Budget,
        f: F,
    ) -> BatchReport<T>
    where
        T: Send,
        F: Fn(usize, &PreparedModel) -> T + Sync,
    {
        let costs: Vec<u64> =
            prepared.iter().map(|p| p.model().component_count() as u64).collect();
        self.run_guarded(prepared.len(), &costs, budget, |k| f(k, &prepared[k]))
    }

    /// Shared engine of the `try_*` fan-outs: stripe `jobs` items across
    /// the worker threads, each item gated by the budget and contained by
    /// `catch_unwind`, and return the outcomes in item order.
    fn run_guarded<T, J>(
        &self,
        jobs: usize,
        costs: &[u64],
        budget: &Budget,
        job: J,
    ) -> BatchReport<T>
    where
        T: Send,
        J: Fn(usize) -> T + Sync,
    {
        // Deterministic step gate: items are charged their cost in item
        // order up front, so a tight ceiling always cuts off the same
        // suffix no matter how threads interleave.
        let gate: Option<(Vec<bool>, u64)> = budget.max_steps().map(|limit| {
            let mut spent = 0u64;
            let allowed = costs
                .iter()
                .map(|&c| {
                    spent = spent.saturating_add(c);
                    spent <= limit
                })
                .collect();
            (allowed, limit)
        });
        let started = Instant::now();
        let deadline = budget.deadline().map(|d| started + d);

        let outcome = |k: usize| -> ItemOutcome<T> {
            if let Some((allowed, limit)) = &gate {
                if !allowed[k] {
                    return ItemOutcome::Failed(ExecError::StepsExhausted {
                        site: Site::Shard(k),
                        limit: *limit,
                    });
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return ItemOutcome::Failed(ExecError::DeadlineExceeded {
                        site: Site::Shard(k),
                        elapsed_ms: started.elapsed().as_millis() as u64,
                    });
                }
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                guard::fail_point(Site::Shard(k));
                job(k)
            })) {
                Ok(value) => ItemOutcome::Ok(value),
                Err(payload) => ItemOutcome::Failed(ExecError::Panicked {
                    site: Site::Shard(k),
                    detail: guard::panic_detail(payload.as_ref()),
                }),
            }
        };

        let workers = self.worker_count(jobs);
        if workers <= 1 {
            return BatchReport { items: (0..jobs).map(outcome).collect() };
        }
        let mut results: Vec<(usize, ItemOutcome<T>)> = std::thread::scope(|scope| {
            let outcome = &outcome;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut k = w;
                        while k < jobs {
                            out.push((k, outcome(k)));
                            k += workers;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("guarded batch worker"))
                .collect()
        });
        results.sort_unstable_by_key(|(k, _)| *k);
        BatchReport { items: results.into_iter().map(|(_, o)| o).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ComposeOptions;
    use sbml_model::builder::ModelBuilder;

    fn corpus(n: usize) -> Vec<Model> {
        (0..n)
            .map(|i| {
                ModelBuilder::new(format!("m{i}"))
                    .compartment("cell", 1.0)
                    .species(&format!("S{i}"), i as f64)
                    .species(&format!("S{}", i + 1), 0.0)
                    .parameter(&format!("k{i}"), 0.1 * (i + 1) as f64)
                    .reaction(
                        &format!("r{i}"),
                        &[format!("S{i}").as_str()],
                        &[format!("S{}", i + 1).as_str()],
                        &format!("k{i}*S{i}"),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn all_pairs_matches_raw_pairwise_compose() {
        let models = corpus(5);
        let batch = BatchComposer::new(Composer::default());
        let prepared = batch.prepare_corpus(&models);
        let raw = Composer::default();
        let batched = batch.all_pairs_with(&prepared, |i, j, result| (i, j, result));
        assert_eq!(batched.len(), 5 * 4 / 2);
        for (i, j, result) in &batched {
            let reference = raw.compose(&models[*i], &models[*j]);
            assert_eq!(result.model, reference.model, "pair ({i},{j})");
            assert_eq!(result.log.events, reference.log.events, "pair ({i},{j})");
            assert_eq!(result.mappings, reference.mappings, "pair ({i},{j})");
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let models = corpus(6);
        let serial = BatchComposer::new(Composer::default()).with_threads(1);
        let threaded = BatchComposer::new(Composer::default()).with_threads(3);
        let prepared_serial = serial.prepare_corpus(&models);
        let prepared_threaded = threaded.prepare_corpus(&models);
        assert_eq!(serial.all_pairs(&prepared_serial), threaded.all_pairs(&prepared_threaded));
    }

    #[test]
    fn one_preparation_serves_every_pair() {
        let models = corpus(4);
        let batch = BatchComposer::new(Composer::default()).with_threads(2);
        let prepared = batch.prepare_corpus(&models);
        assert_eq!(prepared.len(), models.len());
        for (p, m) in prepared.iter().zip(&models) {
            assert_eq!(p.model(), m);
        }
        // The whole grid runs off the same Arcs — no re-preparation.
        let before: Vec<usize> = prepared.iter().map(Arc::strong_count).collect();
        let _ = batch.all_pairs(&prepared);
        let after: Vec<usize> = prepared.iter().map(Arc::strong_count).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn map_corpus_preserves_order_across_thread_counts() {
        let models = corpus(7);
        let serial = BatchComposer::new(Composer::default()).with_threads(1);
        let threaded = BatchComposer::new(Composer::default()).with_threads(3);
        let prepared = serial.prepare_corpus(&models);
        let expected: Vec<(usize, String)> =
            models.iter().enumerate().map(|(i, m)| (i, m.id.clone())).collect();
        let a = serial.map_corpus(&prepared, |i, p| (i, p.model().id.clone()));
        let b = threaded.map_corpus(&prepared, |i, p| (i, p.model().id.clone()));
        assert_eq!(a, expected);
        assert_eq!(b, expected);
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let batch = BatchComposer::new(Composer::new(ComposeOptions::default()));
        assert!(batch.all_pairs(&batch.prepare_corpus(&[])).is_empty());
        let one = batch.prepare_corpus(&corpus(1));
        assert!(batch.all_pairs(&one).is_empty());
        let two = batch.prepare_corpus(&corpus(2));
        assert_eq!(batch.all_pairs(&two).len(), 1);
    }
}
