//! Composition options: semantics level, index structure, synonym table.

use bio_synonyms::SynonymTable;

use crate::index::IndexKind;

/// How much meaning the matcher may use (the paper's §5 heavy/light/none
/// semantics spectrum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SemanticsLevel {
    /// Full SBMLCompose behaviour: synonym tables, commutative math
    /// patterns, unit conversion, initial-value evaluation.
    #[default]
    Heavy,
    /// Name normalisation + synonym tables only; math is compared
    /// structurally without commutativity, units are compared by id, and
    /// initial assignments are compared without evaluation.
    Light,
    /// Exact-id matching only (the generic method "without semantics").
    None,
}

/// Options controlling one composition run.
#[derive(Debug, Clone)]
pub struct ComposeOptions {
    /// Semantics level (default: heavy — the full published algorithm).
    pub semantics: SemanticsLevel,
    /// Index structure used for component lookup (default: hash map).
    pub index: IndexKind,
    /// Synonym table consulted for name equality (default: builtins).
    pub synonyms: SynonymTable,
    /// Cache canonical math patterns per component instead of recomputing
    /// on every candidate comparison (default: true; the paper's "mappings
    /// are stored to reduce comparison time"). The `ablation_cache` bench
    /// switches this off.
    pub cache_patterns: bool,
    /// Keep the canonical content key of every merged component alive
    /// across [`crate::session::CompositionSession`] pushes instead of
    /// recomputing it per comparison (default: true). Turning this off
    /// ablates the session's content-key cache while leaving its
    /// persistent indexes in place; output is identical either way.
    pub cache_content_keys: bool,
    /// Evaluate initial assignments before merging and use the values in
    /// conflict checks (default: true).
    pub collect_initial_values: bool,
    /// Maintain the accumulator's initial values *incrementally* across
    /// [`crate::session::CompositionSession`] pushes (default: true). The
    /// session then seeds an [`crate::initial_values::IncrementalValues`]
    /// store once and updates it with each push's additions through a
    /// dependency graph of initial assignments — O(k) for a push touching
    /// k components — instead of re-running
    /// [`crate::initial_values::collect`] over the whole accumulator
    /// (O(n)) at every push. Values (and hence output) are identical
    /// either way; turning this off ablates the store for benchmarking.
    pub incremental_initial_values: bool,
    /// Keyed-component count (components that carry a canonical content
    /// or name key — everything except parameters and initial
    /// assignments) at or above which a *raw* (unprepared) pushed model
    /// gets its keys computed on a scoped thread pool before the serial
    /// merge pass consumes them — the per-model analogue of
    /// [`crate::BatchComposer::prepare_corpus`]'s across-model fan-out
    /// (default: 256). Output never depends on this knob or on the thread
    /// count; `usize::MAX` disables the parallel path, `0` forces it for
    /// every non-empty push.
    pub parallel_push_threshold: usize,
    /// Run the Fig. 4 merge passes of one push as a **dependency DAG** on a
    /// small scoped-thread pipeline instead of strictly in sequence
    /// (default: true). Each per-kind pass declares the mapping-table kinds
    /// it reads and writes; passes whose dependencies are satisfied run
    /// concurrently, with the push's mapping table split into per-kind
    /// shards so writers never contend. The pipeline only engages when the
    /// push's content keys were precomputed **and** the push has at least
    /// [`ComposeOptions::parallel_push_threshold`] keyed components —
    /// pushes below the threshold (prepared or raw) keep the plain serial
    /// pass order, which they cannot lose from. Output is
    /// bit-for-bit identical to the serial passes either way
    /// (property-tested across thread counts), so this knob — like
    /// [`ComposeOptions::pipeline_threads`] — is an *execution detail*
    /// deliberately excluded from [`ComposeOptions::fingerprint`].
    pub merge_pipeline: bool,
    /// Worker threads for the merge-pass pipeline; `0` (the default) uses
    /// the host's available parallelism. The value is an **upper bound**
    /// — a push's workers are CPU-bound, so the resolved count is capped
    /// at the host parallelism (oversubscribing adds context-switch churn
    /// and can never overlap work). An explicit value engages the
    /// dependency-DAG executor even when the cap resolves to one worker;
    /// the automatic `0` keeps single-core hosts on the plain serial pass
    /// order. Never affects output.
    pub pipeline_threads: usize,
    /// Revalidate cached content keys by **incremental renaming** when a
    /// push's ID mappings touch a component's references (default: true,
    /// heavy semantics only). Instead of re-canonicalising the whole
    /// formula from its AST, the cached canonical key's identifier leaves
    /// are rewritten in place and only the commutative operand groups
    /// whose members changed are re-sorted
    /// ([`sbml_math::pattern::Pattern::rename_mapped`]) — O(touched
    /// leaves), not O(formula). Keys are byte-identical either way
    /// (property-tested), so this is an execution detail excluded from
    /// [`ComposeOptions::fingerprint`]; turning it off is the
    /// full-recompute ablation the `pipeline_conflict` bench measures
    /// against.
    pub incremental_key_rename: bool,
    /// Adopt an `Arc`-shared prepared base **copy-on-write** (default:
    /// true): [`crate::session::CompositionSession::with_shared_base`]
    /// and [`crate::Composer::compose_shared`] then start with no owned
    /// copy of the base — component lists, per-kind indexes, the interned
    /// key cache and the initial-value store stay shared with the
    /// [`crate::PreparedModel`] until a push actually appends something,
    /// so a Duplicate-only composition never clones the base at all.
    /// Turning this off makes the shared entry points fall back to the
    /// eager clone-on-adopt path (the differential harness's oracle
    /// engine). Output is bit-for-bit identical either way
    /// (property-tested), so this knob — like the pipeline knobs — is an
    /// execution detail excluded from [`ComposeOptions::fingerprint`].
    pub adopt_base: bool,
    /// Size of the session-lifetime [`crate::WorkerPool`] that replaces
    /// per-push scoped thread spawns in the merge-pass pipeline and the
    /// within-push key fan-out; `0` (the default) sizes it to the host's
    /// available parallelism. A session creates its pool lazily on the
    /// first push that goes parallel and parks it between pushes;
    /// [`crate::BatchComposer`] and the `sbml-serve` daemon inject one
    /// shared batch-lifetime pool instead so hot serving reuses warm
    /// workers. `1` means no background workers (all lanes run on the
    /// calling thread). Never affects output, hence
    /// fingerprint-neutral.
    pub pool_threads: usize,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            semantics: SemanticsLevel::Heavy,
            index: IndexKind::HashMap,
            synonyms: SynonymTable::with_builtins(),
            cache_patterns: true,
            cache_content_keys: true,
            collect_initial_values: true,
            incremental_initial_values: true,
            parallel_push_threshold: 256,
            merge_pipeline: true,
            pipeline_threads: 0,
            incremental_key_rename: true,
            adopt_base: true,
            pool_threads: 0,
        }
    }
}

impl ComposeOptions {
    /// Full heavy-semantics defaults.
    pub fn heavy() -> ComposeOptions {
        ComposeOptions::default()
    }

    /// Light-semantics variant.
    pub fn light() -> ComposeOptions {
        ComposeOptions { semantics: SemanticsLevel::Light, ..ComposeOptions::default() }
    }

    /// No-semantics variant (exact ids, empty synonym table).
    pub fn none() -> ComposeOptions {
        ComposeOptions {
            semantics: SemanticsLevel::None,
            synonyms: SynonymTable::new(),
            ..ComposeOptions::default()
        }
    }

    /// Builder: set the semantics level. Unlike [`ComposeOptions::none`],
    /// this leaves the synonym table untouched — combine with
    /// [`ComposeOptions::with_synonyms`] to drop it as well.
    #[must_use]
    pub fn with_semantics(mut self, semantics: SemanticsLevel) -> ComposeOptions {
        self.semantics = semantics;
        self
    }

    /// Builder: set the index kind.
    #[must_use]
    pub fn with_index(mut self, index: IndexKind) -> ComposeOptions {
        self.index = index;
        self
    }

    /// Builder: set the synonym table.
    #[must_use]
    pub fn with_synonyms(mut self, synonyms: SynonymTable) -> ComposeOptions {
        self.synonyms = synonyms;
        self
    }

    /// Builder: toggle pattern caching.
    #[must_use]
    pub fn with_pattern_cache(mut self, on: bool) -> ComposeOptions {
        self.cache_patterns = on;
        self
    }

    /// Builder: toggle the session-level content-key cache.
    #[must_use]
    pub fn with_content_key_cache(mut self, on: bool) -> ComposeOptions {
        self.cache_content_keys = on;
        self
    }

    /// Builder: toggle initial-value collection and evaluation.
    #[must_use]
    pub fn with_initial_values(mut self, on: bool) -> ComposeOptions {
        self.collect_initial_values = on;
        self
    }

    /// Builder: toggle incremental initial-value maintenance across
    /// session pushes (the re-collect ablation when off).
    #[must_use]
    pub fn with_incremental_initial_values(mut self, on: bool) -> ComposeOptions {
        self.incremental_initial_values = on;
        self
    }

    /// Builder: set the keyed-component count at which a raw push
    /// switches to parallel content-key computation (`usize::MAX` =
    /// never, `0` = always).
    #[must_use]
    pub fn with_parallel_push_threshold(mut self, threshold: usize) -> ComposeOptions {
        self.parallel_push_threshold = threshold;
        self
    }

    /// Builder: toggle the merge-pass pipeline (serial Fig. 4 order when
    /// off — the pipeline ablation).
    #[must_use]
    pub fn with_merge_pipeline(mut self, on: bool) -> ComposeOptions {
        self.merge_pipeline = on;
        self
    }

    /// Builder: set the pipeline worker count (`0` = host parallelism,
    /// `1` = serial).
    #[must_use]
    pub fn with_pipeline_threads(mut self, threads: usize) -> ComposeOptions {
        self.pipeline_threads = threads;
        self
    }

    /// Builder: toggle incremental cached-key renaming (the
    /// full-recompute ablation when off).
    #[must_use]
    pub fn with_incremental_key_rename(mut self, on: bool) -> ComposeOptions {
        self.incremental_key_rename = on;
        self
    }

    /// Builder: toggle copy-on-write base adoption (eager clone-on-adopt
    /// when off — the differential harness's oracle engine).
    #[must_use]
    pub fn with_adopt_base(mut self, on: bool) -> ComposeOptions {
        self.adopt_base = on;
        self
    }

    /// Builder: set the session worker-pool size (`0` = host
    /// parallelism, `1` = no background workers).
    #[must_use]
    pub fn with_pool_threads(mut self, threads: usize) -> ComposeOptions {
        self.pool_threads = threads;
        self
    }

    /// Fingerprint of every option that influences canonical content keys
    /// and merge decisions. A [`crate::PreparedModel`] records the
    /// fingerprint it was prepared under; composing it under options with a
    /// different fingerprint is rejected, since the cached analysis would
    /// silently diverge from what the raw path computes.
    ///
    /// [`ComposeOptions::merge_pipeline`] and
    /// [`ComposeOptions::pipeline_threads`] are deliberately **not** part
    /// of the fingerprint: pipeline scheduling is an execution detail with
    /// property-tested bit-for-bit identical output, so a preparation built
    /// under one pipeline setting stays valid under any other.
    pub fn fingerprint(&self) -> OptionsFingerprint {
        OptionsFingerprint {
            semantics: self.semantics,
            index: self.index,
            cache_patterns: self.cache_patterns,
            cache_content_keys: self.cache_content_keys,
            collect_initial_values: self.collect_initial_values,
            incremental_initial_values: self.incremental_initial_values,
            parallel_push_threshold: self.parallel_push_threshold,
            synonym_hash: self.synonyms.content_hash(),
        }
    }
}

/// Identity of a [`ComposeOptions`] value as far as cached per-model
/// analysis is concerned; see [`ComposeOptions::fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionsFingerprint {
    semantics: SemanticsLevel,
    index: IndexKind,
    cache_patterns: bool,
    cache_content_keys: bool,
    collect_initial_values: bool,
    incremental_initial_values: bool,
    parallel_push_threshold: usize,
    /// [`bio_synonyms::SynonymTable::content_hash`] of the synonym table
    /// — two tables with the same group count but different contents must
    /// not fingerprint equal.
    synonym_hash: u64,
}

impl OptionsFingerprint {
    /// A stable 64-bit digest of the fingerprint, suitable for embedding
    /// in on-disk formats (the `sbml-serve` snapshot header records it so
    /// a snapshot is rejected when loaded under options whose cached
    /// analysis would diverge). Equal fingerprints always digest equal;
    /// the digest is a pure function of the fingerprint's fields, not of
    /// process layout, so it is comparable across runs and builds.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over an explicit field encoding: no derived Hash (whose
        // output is allowed to vary across compiler versions), no
        // pointers.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        eat(match self.semantics {
            SemanticsLevel::Heavy => 0,
            SemanticsLevel::Light => 1,
            SemanticsLevel::None => 2,
        });
        eat(match self.index {
            IndexKind::HashMap => 0,
            IndexKind::BTree => 1,
            IndexKind::LinearScan => 2,
        });
        eat(u8::from(self.cache_patterns));
        eat(u8::from(self.cache_content_keys));
        eat(u8::from(self.collect_initial_values));
        eat(u8::from(self.incremental_initial_values));
        for byte in (self.parallel_push_threshold as u64).to_le_bytes() {
            eat(byte);
        }
        for byte in self.synonym_hash.to_le_bytes() {
            eat(byte);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(ComposeOptions::heavy().semantics, SemanticsLevel::Heavy);
        assert_eq!(ComposeOptions::light().semantics, SemanticsLevel::Light);
        let none = ComposeOptions::none();
        assert_eq!(none.semantics, SemanticsLevel::None);
        assert_eq!(none.synonyms.group_count(), 0);
    }

    #[test]
    fn builders() {
        let o = ComposeOptions::default()
            .with_index(IndexKind::LinearScan)
            .with_pattern_cache(false)
            .with_content_key_cache(false)
            .with_semantics(SemanticsLevel::Light)
            .with_initial_values(false);
        assert_eq!(o.index, IndexKind::LinearScan);
        assert!(!o.cache_patterns);
        assert!(!o.cache_content_keys);
        assert_eq!(o.semantics, SemanticsLevel::Light);
        assert!(!o.collect_initial_values);
        // with_semantics keeps the synonym table, unlike the none() preset.
        assert!(o.synonyms.group_count() > 0);
    }

    #[test]
    fn fingerprints_track_key_affecting_options() {
        let base = ComposeOptions::default();
        assert_eq!(base.fingerprint(), ComposeOptions::default().fingerprint());
        assert_ne!(base.fingerprint(), ComposeOptions::light().fingerprint());
        assert_ne!(base.fingerprint(), ComposeOptions::none().fingerprint());
        assert_ne!(
            base.fingerprint(),
            ComposeOptions::default().with_index(IndexKind::BTree).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ComposeOptions::default().with_initial_values(false).fingerprint()
        );
    }

    #[test]
    fn fingerprints_track_incremental_and_parallel_knobs() {
        // Regression: a PreparedModel built under different incremental /
        // parallel settings must be rejected by the fingerprint check,
        // like every other knob.
        let base = ComposeOptions::default();
        assert_ne!(
            base.fingerprint(),
            ComposeOptions::default().with_incremental_initial_values(false).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ComposeOptions::default().with_parallel_push_threshold(0).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ComposeOptions::default().with_parallel_push_threshold(usize::MAX).fingerprint()
        );
        // Same settings still fingerprint equal.
        assert_eq!(
            ComposeOptions::default().with_parallel_push_threshold(64).fingerprint(),
            ComposeOptions::default().with_parallel_push_threshold(64).fingerprint()
        );
    }

    #[test]
    fn stable_hash_tracks_fingerprint_equality() {
        let heavy = ComposeOptions::heavy().fingerprint();
        assert_eq!(heavy.stable_hash(), ComposeOptions::heavy().fingerprint().stable_hash());
        for other in [ComposeOptions::light(), ComposeOptions::none()] {
            assert_ne!(heavy.stable_hash(), other.fingerprint().stable_hash());
        }
        assert_ne!(
            heavy.stable_hash(),
            ComposeOptions::default().with_pattern_cache(false).fingerprint().stable_hash()
        );
        // Pipeline knobs are fingerprint-neutral, hence digest-neutral.
        assert_eq!(
            heavy.stable_hash(),
            ComposeOptions::default().with_merge_pipeline(false).fingerprint().stable_hash()
        );
    }

    #[test]
    fn pipeline_knobs_do_not_change_the_fingerprint() {
        // Regression: the merge-pass pipeline is an execution detail — a
        // PreparedModel built under one pipeline setting must be accepted
        // under any other, so these knobs stay out of the fingerprint.
        let base = ComposeOptions::default();
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default().with_merge_pipeline(false).fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default().with_pipeline_threads(4).fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default()
                .with_merge_pipeline(false)
                .with_pipeline_threads(1)
                .fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default().with_incremental_key_rename(false).fingerprint()
        );
        // The zero-copy knobs are execution details too: a preparation
        // built under either engine or any pool size stays valid — and
        // digest-equal — under every other.
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default().with_adopt_base(false).fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            ComposeOptions::default().with_pool_threads(3).fingerprint()
        );
        assert_eq!(
            base.fingerprint().stable_hash(),
            ComposeOptions::default()
                .with_adopt_base(false)
                .with_pool_threads(1)
                .fingerprint()
                .stable_hash()
        );
    }
}
