//! The per-component-kind lookup index (paper Fig. 5, line 5).
//!
//! "Currently the indexing structure ... is a hash map. ... This index
//! structure will be the subject of future research. We hope to determine
//! which is the best index for this scenario." — the paper's future-work
//! item 7 asks whether hashing (or a suffix tree) takes the merge from
//! O(nm) to O(n+m). [`IndexKind`] makes the structure pluggable so the
//! `ablation_index` bench can answer exactly that question:
//!
//! * [`IndexKind::HashMap`] — the paper's implementation (O(1) lookups),
//! * [`IndexKind::BTree`] — ordered tree (O(log n)),
//! * [`IndexKind::LinearScan`] — no index at all (O(n) per lookup, giving
//!   the O(nm) overall behaviour the paper measured).

use std::collections::{BTreeMap, HashMap};

/// Which index structure the merge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexKind {
    /// Hash map (the paper's choice).
    #[default]
    HashMap,
    /// Ordered B-tree map.
    BTree,
    /// Linear scan over an association list.
    LinearScan,
}

/// A string-keyed index over component positions.
#[derive(Debug, Clone)]
pub enum ComponentIndex {
    /// Hash-map backed.
    Hash(HashMap<String, usize>),
    /// B-tree backed.
    BTree(BTreeMap<String, usize>),
    /// Association-list backed (deliberately un-indexed).
    Linear(Vec<(String, usize)>),
}

impl ComponentIndex {
    /// An empty index of the given kind.
    pub fn new(kind: IndexKind) -> ComponentIndex {
        match kind {
            IndexKind::HashMap => ComponentIndex::Hash(HashMap::new()),
            IndexKind::BTree => ComponentIndex::BTree(BTreeMap::new()),
            IndexKind::LinearScan => ComponentIndex::Linear(Vec::new()),
        }
    }

    /// Insert a key → position entry. First insertion wins (mirrors the
    /// paper's first-model-wins policy for colliding keys).
    pub fn insert(&mut self, key: String, position: usize) {
        match self {
            ComponentIndex::Hash(m) => {
                m.entry(key).or_insert(position);
            }
            ComponentIndex::BTree(m) => {
                m.entry(key).or_insert(position);
            }
            ComponentIndex::Linear(v) => {
                if !v.iter().any(|(k, _)| k == &key) {
                    v.push((key, position));
                }
            }
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<usize> {
        match self {
            ComponentIndex::Hash(m) => m.get(key).copied(),
            ComponentIndex::BTree(m) => m.get(key).copied(),
            ComponentIndex::Linear(v) => {
                v.iter().find(|(k, _)| k == key).map(|(_, pos)| *pos)
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ComponentIndex::Hash(m) => m.len(),
            ComponentIndex::BTree(m) => m.len(),
            ComponentIndex::Linear(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_behave_identically() {
        for kind in [IndexKind::HashMap, IndexKind::BTree, IndexKind::LinearScan] {
            let mut idx = ComponentIndex::new(kind);
            assert!(idx.is_empty());
            idx.insert("alpha".into(), 0);
            idx.insert("beta".into(), 1);
            idx.insert("alpha".into(), 99); // first wins
            assert_eq!(idx.len(), 2, "{kind:?}");
            assert_eq!(idx.get("alpha"), Some(0), "{kind:?}");
            assert_eq!(idx.get("beta"), Some(1), "{kind:?}");
            assert_eq!(idx.get("gamma"), None, "{kind:?}");
        }
    }

    #[test]
    fn default_is_hashmap() {
        assert_eq!(IndexKind::default(), IndexKind::HashMap);
    }
}
