//! The per-component-kind lookup index (paper Fig. 5, line 5).
//!
//! "Currently the indexing structure ... is a hash map. ... This index
//! structure will be the subject of future research. We hope to determine
//! which is the best index for this scenario." — the paper's future-work
//! item 7 asks whether hashing (or a suffix tree) takes the merge from
//! O(nm) to O(n+m). [`IndexKind`] makes the structure pluggable so the
//! `ablation_index` bench can answer exactly that question:
//!
//! * [`IndexKind::HashMap`] — the paper's implementation (O(1) lookups),
//! * [`IndexKind::BTree`] — ordered tree (O(log n)),
//! * [`IndexKind::LinearScan`] — no index at all (O(n) per lookup, giving
//!   the O(nm) overall behaviour the paper measured).
//!
//! Keys are interned as `Arc<str>` so the same canonical content key can
//! be shared between an index, the [`crate::session`] content-key cache,
//! and sibling indexes without re-allocation, and every lookup/insert
//! takes `&str` — callers never build an owned `String` just to probe.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Dependency-free FxHash-style hasher (multiply-xor over word-sized
/// chunks). Component ids and content keys are short, trusted strings
/// hashed millions of times in a batch composition — the default SipHash's
/// DoS resistance buys nothing here and costs measurably.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for (i, b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(*b) << (8 * i);
        }
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(v)).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by short trusted strings, using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` of short trusted strings, using [`FxHasher`].
pub type FastSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Which index structure the merge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexKind {
    /// Hash map (the paper's choice).
    #[default]
    HashMap,
    /// Ordered B-tree map.
    BTree,
    /// Linear scan over an association list.
    LinearScan,
}

/// A string-keyed index over component positions.
#[derive(Debug, Clone)]
pub enum ComponentIndex {
    /// Hash-map backed.
    Hash(FastMap<Arc<str>, usize>),
    /// B-tree backed.
    BTree(BTreeMap<Arc<str>, usize>),
    /// Association-list backed (deliberately un-indexed).
    Linear(Vec<(Arc<str>, usize)>),
}

impl ComponentIndex {
    /// An empty index of the given kind.
    pub fn new(kind: IndexKind) -> ComponentIndex {
        match kind {
            IndexKind::HashMap => ComponentIndex::Hash(FastMap::default()),
            IndexKind::BTree => ComponentIndex::BTree(BTreeMap::new()),
            IndexKind::LinearScan => ComponentIndex::Linear(Vec::new()),
        }
    }

    /// Insert a key → position entry. First insertion wins (mirrors the
    /// paper's first-model-wins policy for colliding keys). The key is
    /// only allocated when it is actually absent; returns whether the
    /// entry was inserted.
    pub fn insert(&mut self, key: &str, position: usize) -> bool {
        if self.contains(key) {
            return false;
        }
        self.insert_unchecked(Arc::from(key), position);
        true
    }

    /// [`ComponentIndex::insert`], but sharing an already-interned key —
    /// the `Arc` is cloned (refcount bump) instead of copying the string.
    pub fn insert_shared(&mut self, key: &Arc<str>, position: usize) -> bool {
        if self.contains(key) {
            return false;
        }
        self.insert_unchecked(Arc::clone(key), position);
        true
    }

    fn insert_unchecked(&mut self, key: Arc<str>, position: usize) {
        match self {
            ComponentIndex::Hash(m) => {
                m.insert(key, position);
            }
            ComponentIndex::BTree(m) => {
                m.insert(key, position);
            }
            ComponentIndex::Linear(v) => v.push((key, position)),
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<usize> {
        match self {
            ComponentIndex::Hash(m) => m.get(key).copied(),
            ComponentIndex::BTree(m) => m.get(key).copied(),
            ComponentIndex::Linear(v) => {
                v.iter().find(|(k, _)| k.as_ref() == key).map(|(_, pos)| *pos)
            }
        }
    }

    /// Is the key present?
    pub fn contains(&self, key: &str) -> bool {
        match self {
            ComponentIndex::Hash(m) => m.contains_key(key),
            ComponentIndex::BTree(m) => m.contains_key(key),
            ComponentIndex::Linear(v) => v.iter().any(|(k, _)| k.as_ref() == key),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ComponentIndex::Hash(m) => m.len(),
            ComponentIndex::BTree(m) => m.len(),
            ComponentIndex::Linear(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all entries, keeping the structure kind.
    pub fn clear(&mut self) {
        match self {
            ComponentIndex::Hash(m) => m.clear(),
            ComponentIndex::BTree(m) => m.clear(),
            ComponentIndex::Linear(v) => v.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_behave_identically() {
        for kind in [IndexKind::HashMap, IndexKind::BTree, IndexKind::LinearScan] {
            let mut idx = ComponentIndex::new(kind);
            assert!(idx.is_empty());
            assert!(idx.insert("alpha", 0));
            assert!(idx.insert("beta", 1));
            assert!(!idx.insert("alpha", 99), "first wins");
            assert_eq!(idx.len(), 2, "{kind:?}");
            assert_eq!(idx.get("alpha"), Some(0), "{kind:?}");
            assert_eq!(idx.get("beta"), Some(1), "{kind:?}");
            assert_eq!(idx.get("gamma"), None, "{kind:?}");
            assert!(idx.contains("beta"), "{kind:?}");
            assert!(!idx.contains("gamma"), "{kind:?}");
            idx.clear();
            assert!(idx.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn shared_keys_are_not_reallocated() {
        let key: Arc<str> = Arc::from("shared");
        let mut kept = Vec::new();
        for kind in [IndexKind::HashMap, IndexKind::BTree, IndexKind::LinearScan] {
            let mut idx = ComponentIndex::new(kind);
            assert!(idx.insert_shared(&key, 3));
            assert!(!idx.insert_shared(&key, 4), "first wins, no refcount bump");
            assert_eq!(idx.get("shared"), Some(3), "{kind:?}");
            kept.push(idx);
        }
        // One strong count per index holding it, plus the local binding —
        // the duplicate insert_shared must not have bumped the count.
        assert_eq!(Arc::strong_count(&key), kept.len() + 1);
    }

    #[test]
    fn default_is_hashmap() {
        assert_eq!(IndexKind::default(), IndexKind::HashMap);
    }

    #[test]
    fn fx_hasher_deterministic_and_discriminating() {
        use std::hash::{BuildHasher, Hash};
        let build = FxBuildHasher::default();
        let hash_of = |s: &str| {
            let mut h = build.build_hasher();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of("glucose"), hash_of("glucose"));
        let keys = ["glucose", "glucosf", "k1", "k2", "", "sp_001", "sp_010", "a_very_long_component_identifier_0001"];
        let hashes: std::collections::BTreeSet<u64> = keys.iter().map(|k| hash_of(k)).collect();
        assert_eq!(hashes.len(), keys.len(), "no collisions on the sample set");
    }
}
