//! The merge log — the paper's "warning to a log file informing the user
//! of this and of decisions taken".

use std::borrow::Cow;
use std::fmt;

/// What happened to a component during merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Second model's component was identical to the first's — merged.
    Duplicate,
    /// Components matched under synonymy/math-equivalence; the second
    /// model's id was mapped onto the first's.
    Mapped,
    /// Component added to the composed model unchanged.
    Added,
    /// Component added under a fresh id because of an id clash.
    Renamed,
    /// Components claimed the same identity but disagreed; the first model
    /// won and the decision was logged (the paper's default behaviour).
    Conflict,
    /// Anything else worth telling the user.
    Warning,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventKind::Duplicate => "duplicate",
            EventKind::Mapped => "mapped",
            EventKind::Added => "added",
            EventKind::Renamed => "renamed",
            EventKind::Conflict => "conflict",
            EventKind::Warning => "warning",
        })
    }
}

/// One merge decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeEvent {
    /// Decision kind.
    pub kind: EventKind,
    /// Component kind (`species`, `reaction`, ...).
    pub component: &'static str,
    /// Id of the component in the second (incoming) model.
    pub incoming_id: String,
    /// Id it ended up with in the composed model (same as `incoming_id`
    /// unless mapped/renamed).
    pub final_id: String,
    /// Explanation of the decision. `Cow` because most explanations are
    /// fixed phrases — a merge emits thousands of events, so the static
    /// ones are stored without allocating.
    pub detail: Cow<'static, str>,
}

impl fmt::Display for MergeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incoming_id == self.final_id {
            write!(f, "[{}] {} '{}': {}", self.kind, self.component, self.incoming_id, self.detail)
        } else {
            write!(
                f,
                "[{}] {} '{}' -> '{}': {}",
                self.kind, self.component, self.incoming_id, self.final_id, self.detail
            )
        }
    }
}

/// The full decision log of one composition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeLog {
    /// Events in decision order.
    pub events: Vec<MergeEvent>,
}

impl MergeLog {
    /// Empty log.
    pub fn new() -> MergeLog {
        MergeLog::default()
    }

    /// Record an event.
    pub fn push(
        &mut self,
        kind: EventKind,
        component: &'static str,
        incoming_id: impl Into<String>,
        final_id: impl Into<String>,
        detail: impl Into<Cow<'static, str>>,
    ) {
        self.events.push(MergeEvent {
            kind,
            component,
            incoming_id: incoming_id.into(),
            final_id: final_id.into(),
            detail: detail.into(),
        });
    }

    /// Events of a given kind.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &MergeEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of conflicts recorded.
    pub fn conflict_count(&self) -> usize {
        self.of_kind(EventKind::Conflict).count()
    }

    /// Render as the paper's "log file" text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = MergeLog::new();
        log.push(EventKind::Duplicate, "species", "A", "A", "identical");
        log.push(EventKind::Conflict, "parameter", "k1", "k1", "values differ: 1 vs 2");
        log.push(EventKind::Renamed, "parameter", "k1", "k1_1", "kept both");
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.conflict_count(), 1);
        assert_eq!(log.of_kind(EventKind::Renamed).count(), 1);
    }

    #[test]
    fn display_formats() {
        let mut log = MergeLog::new();
        log.push(EventKind::Mapped, "species", "glc", "glucose", "synonym match");
        let text = log.to_text();
        assert!(text.contains("[mapped] species 'glc' -> 'glucose': synonym match"));

        log.push(EventKind::Added, "reaction", "r9", "r9", "new");
        assert!(log.to_text().contains("[added] reaction 'r9': new"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(EventKind::Duplicate.to_string(), "duplicate");
        assert_eq!(EventKind::Conflict.to_string(), "conflict");
    }
}

/// Aggregate statistics over a merge log — the summary a user (or the CLI)
/// reads before deciding whether to trust a composition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Components recognised as identical.
    pub duplicates: usize,
    /// Components matched under synonymy/equivalence and mapped.
    pub mapped: usize,
    /// Components added unchanged.
    pub added: usize,
    /// Components renamed to avoid id clashes.
    pub renamed: usize,
    /// Conflicts (first model won).
    pub conflicts: usize,
    /// Other warnings.
    pub warnings: usize,
}

impl MergeLog {
    /// Aggregate the log into [`MergeStats`].
    pub fn stats(&self) -> MergeStats {
        let mut s = MergeStats::default();
        for e in &self.events {
            match e.kind {
                EventKind::Duplicate => s.duplicates += 1,
                EventKind::Mapped => s.mapped += 1,
                EventKind::Added => s.added += 1,
                EventKind::Renamed => s.renamed += 1,
                EventKind::Conflict => s.conflicts += 1,
                EventKind::Warning => s.warnings += 1,
            }
        }
        s
    }
}

impl fmt::Display for MergeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} duplicate(s), {} mapped, {} added, {} renamed, {} conflict(s), {} warning(s)",
            self.duplicates, self.mapped, self.added, self.renamed, self.conflicts, self.warnings
        )
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn aggregates_by_kind() {
        let mut log = MergeLog::new();
        log.push(EventKind::Duplicate, "species", "A", "A", "x");
        log.push(EventKind::Duplicate, "species", "B", "B", "x");
        log.push(EventKind::Mapped, "species", "C", "D", "x");
        log.push(EventKind::Added, "reaction", "r", "r", "x");
        log.push(EventKind::Renamed, "parameter", "k", "k_1", "x");
        log.push(EventKind::Conflict, "parameter", "k", "k_1", "x");
        log.push(EventKind::Warning, "reaction", "r2", "r2", "x");
        let s = log.stats();
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.mapped, 1);
        assert_eq!(s.added, 1);
        assert_eq!(s.renamed, 1);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.warnings, 1);
        let text = s.to_string();
        assert!(text.contains("2 duplicate(s)"));
        assert!(text.contains("1 conflict(s)"));
    }

    #[test]
    fn empty_log_zero_stats() {
        assert_eq!(MergeLog::new().stats(), MergeStats::default());
    }
}
