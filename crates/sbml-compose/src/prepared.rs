//! Per-model analysis as a reusable, shareable artifact.
//!
//! Everything the composition engine derives from a single model —
//! canonical content keys, per-kind lookup indexes, evaluated initial
//! values, the set of taken global ids — is independent of whatever that
//! model is later composed *with*. [`PreparedModel`] computes the whole
//! analysis once, up front, and every entry point
//! ([`Composer::compose_prepared`], [`CompositionSession::push_prepared`],
//! [`crate::compose_many_prepared`], [`crate::BatchComposer::all_pairs`])
//! consumes the artifact instead of re-deriving the analysis per call.
//!
//! The artifact is immutable and `Send + Sync`: wrap it in an
//! [`Arc`] and share one preparation across any number of
//! concurrent compositions — the batch all-pairs workload composes each
//! corpus model against 186 partners from a single `PreparedModel` each.
//!
//! Two kinds of cached keys live here:
//!
//! * **base-side** (`ModelAnalysis`): the persistent indexes and
//!   canonical (unmapped) content keys a [`CompositionSession`] maintains
//!   over its accumulator. Adopting a prepared base clones these instead of
//!   rebuilding them (`reindex`) from the model.
//! * **incoming-side** (`IncomingKeys`): the content/name keys of each
//!   component *as the merge pass would compute them for the second model*.
//!   Name and unit keys never depend on the in-flight ID mappings and are
//!   reused unconditionally; math-bearing keys (functions, rules,
//!   constraints, reactions, events) are reused exactly while the current
//!   push has recorded no mappings — the cached unmapped key is
//!   byte-identical to the mapped key under an empty mapping table — and
//!   recomputed from the first mapping onwards. Output is therefore
//!   bit-for-bit identical to the unprepared path.
//!
//! [`Composer::compose_prepared`]: crate::composer::Composer::compose_prepared
//! [`CompositionSession::push_prepared`]: crate::session::CompositionSession::push_prepared
//! [`CompositionSession`]: crate::session::CompositionSession

use std::collections::BTreeSet;
use std::sync::Arc;

use sbml_math::rewrite::collect_identifiers;
use sbml_math::MathExpr;
use sbml_model::{Event, FunctionDefinition, Model, Reaction, Rule};

use crate::equality::MatchContext;
use crate::index::ComponentIndex;
use crate::initial_values::{collect, InitialValues};
use crate::options::{ComposeOptions, OptionsFingerprint};
use crate::pool::WorkerPool;

/// Persistent per-kind indexes over a model (paper Fig. 5 line 5, without
/// the per-pass rebuild). Maintained live by a session over its
/// accumulator; precomputed once per model by [`PreparedModel`].
#[derive(Debug, Clone)]
pub(crate) struct Indexes {
    pub(crate) functions_by_id: ComponentIndex,
    pub(crate) functions_by_content: ComponentIndex,
    pub(crate) units_by_id: ComponentIndex,
    pub(crate) units_by_content: ComponentIndex,
    pub(crate) compartment_types_by_id: ComponentIndex,
    pub(crate) compartment_types_by_name: ComponentIndex,
    pub(crate) species_types_by_id: ComponentIndex,
    pub(crate) species_types_by_name: ComponentIndex,
    pub(crate) compartments_by_id: ComponentIndex,
    pub(crate) compartments_by_name: ComponentIndex,
    pub(crate) species_by_id: ComponentIndex,
    pub(crate) species_by_name: ComponentIndex,
    pub(crate) parameters_by_id: ComponentIndex,
    pub(crate) assignments_by_symbol: ComponentIndex,
    pub(crate) rules_by_content: ComponentIndex,
    pub(crate) rules_by_variable: ComponentIndex,
    pub(crate) constraints_by_content: ComponentIndex,
    pub(crate) reactions_by_id: ComponentIndex,
    pub(crate) reactions_by_content: ComponentIndex,
    pub(crate) events_by_id: ComponentIndex,
    pub(crate) events_by_content: ComponentIndex,
}

impl Indexes {
    pub(crate) fn new(options: &ComposeOptions) -> Indexes {
        Indexes::with_kind(options.index)
    }

    pub(crate) fn with_kind(kind: crate::index::IndexKind) -> Indexes {
        let mk = || ComponentIndex::new(kind);
        Indexes {
            functions_by_id: mk(),
            functions_by_content: mk(),
            units_by_id: mk(),
            units_by_content: mk(),
            compartment_types_by_id: mk(),
            compartment_types_by_name: mk(),
            species_types_by_id: mk(),
            species_types_by_name: mk(),
            compartments_by_id: mk(),
            compartments_by_name: mk(),
            species_by_id: mk(),
            species_by_name: mk(),
            parameters_by_id: mk(),
            assignments_by_symbol: mk(),
            rules_by_content: mk(),
            rules_by_variable: mk(),
            constraints_by_content: mk(),
            reactions_by_id: mk(),
            reactions_by_content: mk(),
            events_by_id: mk(),
            events_by_content: mk(),
        }
    }
}

/// Canonical merged-side content keys per component position, interned as
/// `Arc<str>` shared with the content indexes. Only the kinds whose merge
/// pass compares keys on an id hit are cached; empty (and ignored) when
/// [`ComposeOptions::cache_content_keys`] is off.
#[derive(Debug, Clone, Default)]
pub(crate) struct KeyCache {
    pub(crate) functions: Vec<Arc<str>>,
    pub(crate) units: Vec<Arc<str>>,
    pub(crate) reactions: Vec<Arc<str>>,
    pub(crate) events: Vec<Arc<str>>,
}

/// The base-side analysis of one model: what a session's `reindex` derives
/// from its accumulator, packaged so it can be computed once and cloned.
#[derive(Debug, Clone)]
pub(crate) struct ModelAnalysis {
    /// Every global id of the model (the session's duplicate-id registry),
    /// behind an `Arc` so adopting it is a refcount bump, not a clone of
    /// every id string.
    pub(crate) taken: Arc<crate::index::FastSet<String>>,
    /// Per-kind lookup indexes.
    pub(crate) idx: Indexes,
    /// Canonical content keys (respects the cache ablation flags).
    pub(crate) keys: KeyCache,
}

/// Per-component *incoming* keys: the canonical keys of each component as
/// the merge pass computes them for a second model before any ID mapping
/// has been recorded. Positional — entry `i` belongs to component `i`.
///
/// The mapping-sensitive kinds additionally carry each component's *free
/// reference set* (see [`IncomingRefs`]): the cached key equals the mapped
/// key exactly when none of those identifiers has a mapping, which lets
/// the merge reuse the cache far beyond the no-mappings-yet window.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct IncomingKeys {
    pub(crate) functions: Vec<Arc<str>>,
    pub(crate) units: Vec<Arc<str>>,
    pub(crate) compartment_types: Vec<Arc<str>>,
    pub(crate) species_types: Vec<Arc<str>>,
    pub(crate) compartments: Vec<Arc<str>>,
    pub(crate) species: Vec<Arc<str>>,
    pub(crate) rules: Vec<Arc<str>>,
    pub(crate) constraints: Vec<Arc<str>>,
    pub(crate) reactions: Vec<Arc<str>>,
    pub(crate) events: Vec<Arc<str>>,
    /// Free-reference sets of the mapping-sensitive kinds. Fresh
    /// preparations fill the cell eagerly (the sets fall out of the same
    /// pass that computes the keys); snapshot loads leave it empty and
    /// [`IncomingKeys::refs`] derives it from the model on the first
    /// compose use — refs are pure derived state (no canonicalisation,
    /// no options), so the snapshot format does not persist them.
    pub(crate) refs: std::sync::OnceLock<IncomingRefs>,
}

/// Per-component *free reference sets* of the mapping-sensitive kinds:
/// every identifier each component's key derivation would run through the
/// mapping table. Positional — entry `i` belongs to component `i` of the
/// corresponding model list. A pure function of the model (no
/// canonicalisation, no options), which is why it can live behind a
/// `OnceLock` and be rebuilt on demand after a snapshot load.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct IncomingRefs {
    pub(crate) functions: Vec<Box<[Arc<str>]>>,
    pub(crate) rules: Vec<Box<[Arc<str>]>>,
    pub(crate) constraints: Vec<Box<[Arc<str>]>>,
    pub(crate) reactions: Vec<Box<[Arc<str>]>>,
    /// Free identifiers of the kinetic law alone (no participants): the
    /// cached math *section* of a reaction key stays valid as long as
    /// these are unmapped, even when a participant has been renamed.
    pub(crate) reaction_math: Vec<Box<[Arc<str>]>>,
    pub(crate) events: Vec<Box<[Arc<str>]>>,
}

impl IncomingRefs {
    /// Collect every free-reference set of `model`, in positional order.
    fn build(model: &Model) -> IncomingRefs {
        let (reactions, reaction_math) = model.reactions.iter().map(reaction_refs).unzip();
        IncomingRefs {
            functions: model.function_definitions.iter().map(function_refs).collect(),
            rules: model.rules.iter().map(rule_refs).collect(),
            constraints: model.constraints.iter().map(|c| constraint_refs(&c.math)).collect(),
            reactions,
            reaction_math,
            events: model.events.iter().map(event_refs).collect(),
        }
    }
}

// Per-kind free-reference helpers, shared by [`IncomingRefs::build`]
// and the within-push parallel key builder so the two can never drift
// apart.

/// Refs come from the BARE body, where params are free: the merge renames
/// `f.body` directly (params included), so a param sharing a name with a
/// mapped id must count as a reference. For the content key this is merely
/// conservative (the pattern binds params positionally).
fn function_refs(f: &FunctionDefinition) -> Box<[Arc<str>]> {
    collect_identifiers(&f.body).into_iter().map(Arc::from).collect()
}

fn rule_refs(r: &Rule) -> Box<[Arc<str>]> {
    let mut refs = collect_identifiers(r.math());
    if let Some(v) = r.variable() {
        refs.insert(v.to_owned());
    }
    refs.into_iter().map(Arc::from).collect()
}

fn constraint_refs(math: &MathExpr) -> Box<[Arc<str>]> {
    collect_identifiers(math).into_iter().map(Arc::from).collect()
}

/// A reaction's full reference set (kinetic-law ids plus participants) and
/// the kinetic-law-only subset that governs reuse of the cached math
/// *section* of its key.
fn reaction_refs(r: &Reaction) -> (Box<[Arc<str>]>, Box<[Arc<str>]>) {
    let math_refs = match &r.kinetic_law {
        Some(kl) => collect_identifiers(&kl.math),
        None => BTreeSet::new(),
    };
    let mut refs = math_refs.clone();
    for sr in r.reactants.iter().chain(&r.products).chain(&r.modifiers) {
        refs.insert(sr.species.clone());
    }
    (
        refs.into_iter().map(Arc::from).collect(),
        math_refs.into_iter().map(Arc::from).collect(),
    )
}

fn event_refs(ev: &Event) -> Box<[Arc<str>]> {
    let mut refs = collect_identifiers(&ev.trigger);
    if let Some(delay) = &ev.delay {
        refs.append(&mut collect_identifiers(delay));
    }
    for a in &ev.assignments {
        refs.insert(a.variable.clone());
        refs.append(&mut collect_identifiers(&a.math));
    }
    refs.into_iter().map(Arc::from).collect()
}

/// Every canonical content/name key of `model` under `options`, one per
/// keyed component in Fig. 4 kind order — the same key families
/// [`PreparedModel::content_keys`] exposes from a full preparation,
/// derived directly for callers (e.g. match queries) that need the
/// key-set identity of a model but none of the preparation's indexes or
/// initial values. The two enumerations are pinned together by a unit
/// test so they cannot drift.
pub fn model_content_keys(model: &Model, options: &ComposeOptions) -> Vec<String> {
    let ctx = MatchContext::new(options);
    let mut keys = Vec::with_capacity(
        model.function_definitions.len()
            + model.unit_definitions.len()
            + model.compartment_types.len()
            + model.species_types.len()
            + model.compartments.len()
            + model.species.len()
            + model.rules.len()
            + model.constraints.len()
            + model.reactions.len()
            + model.events.len(),
    );
    keys.extend(model.function_definitions.iter().map(|f| ctx.function_key(f, false)));
    keys.extend(model.unit_definitions.iter().map(|u| ctx.unit_key(u)));
    keys.extend(model.compartment_types.iter().map(|t| ctx.name_key(&t.id, t.name.as_deref())));
    keys.extend(model.species_types.iter().map(|t| ctx.name_key(&t.id, t.name.as_deref())));
    keys.extend(model.compartments.iter().map(|c| ctx.name_key(&c.id, c.name.as_deref())));
    keys.extend(model.species.iter().map(|s| ctx.name_key(&s.id, s.name.as_deref())));
    keys.extend(model.rules.iter().map(|r| ctx.rule_key(r, false)));
    keys.extend(model.constraints.iter().map(|c| ctx.constraint_key(&c.math, false)));
    keys.extend(model.reactions.iter().map(|r| ctx.reaction_key(r, false)));
    keys.extend(model.events.iter().map(|ev| ctx.event_key(ev, false)));
    keys
}

/// The serialisable raw parts of a [`PreparedModel`]: the model itself,
/// every cached canonical key family (positional with the model's
/// component lists, Fig. 4 kind order), and the evaluated initial values
/// (sorted by symbol). Produced by [`PreparedModel::to_raw`], consumed by
/// [`PreparedModel::from_raw`]; the `sbml-serve` snapshot format is a
/// binary encoding of exactly this struct per corpus model.
///
/// Everything *not* here — the taken-id set, the per-kind lookup indexes,
/// the key cache, the free-reference sets, the pipeline plan — is cheap
/// derived state that the preparation rebuilds on demand from these parts,
/// with no canonicalisation, synonym closure or math evaluation. (The
/// reference sets in particular are a pure function of the model, so
/// persisting them would only store what one model walk re-derives.)
#[derive(Debug, Clone, Default)]
pub struct RawPrepared {
    /// The model the preparation belongs to.
    pub model: Model,
    /// Canonical content key per function definition.
    pub function_keys: Vec<Arc<str>>,
    /// Canonical signature key per unit definition.
    pub unit_keys: Vec<Arc<str>>,
    /// Canonical name key per compartment type.
    pub compartment_type_keys: Vec<Arc<str>>,
    /// Canonical name key per species type.
    pub species_type_keys: Vec<Arc<str>>,
    /// Canonical name key per compartment.
    pub compartment_keys: Vec<Arc<str>>,
    /// Canonical name key per species.
    pub species_keys: Vec<Arc<str>>,
    /// Canonical content key per rule.
    pub rule_keys: Vec<Arc<str>>,
    /// Canonical content key per constraint.
    pub constraint_keys: Vec<Arc<str>>,
    /// Canonical content key per reaction.
    pub reaction_keys: Vec<Arc<str>>,
    /// Canonical content key per event.
    pub event_keys: Vec<Arc<str>>,
    /// Evaluated initial values, sorted by symbol.
    pub initial_values: Vec<(String, f64)>,
}

/// One computed per-component key (see [`IncomingKeys::build_parallel_on`]):
/// a bare key, a key with its component's free-reference set, or a
/// reaction key with both the full and the kinetic-law-only ref sets.
enum ComputedKey {
    Plain(Arc<str>),
    WithRefs(Arc<str>, Box<[Arc<str>]>),
    Reaction(Arc<str>, Box<[Arc<str>]>, Box<[Arc<str>]>),
}

/// Compute the incoming key of one flattened job. `offsets[k]` is the
/// first job id of component kind `k` (kinds in Fig. 4 order); empty kinds
/// collapse to zero-width ranges the `rposition` lookup skips over.
fn compute_key_job(
    model: &Model,
    ctx: &MatchContext<'_>,
    offsets: &[usize; 10],
    job: usize,
) -> ComputedKey {
    let kind = offsets.iter().rposition(|&o| job >= o).expect("job id below every offset");
    let i = job - offsets[kind];
    let arc = |s: String| -> Arc<str> { Arc::from(s.as_str()) };
    match kind {
        0 => {
            let f = &model.function_definitions[i];
            ComputedKey::WithRefs(arc(ctx.function_key(f, false)), function_refs(f))
        }
        1 => ComputedKey::Plain(arc(ctx.unit_key(&model.unit_definitions[i]))),
        2 => {
            let t = &model.compartment_types[i];
            ComputedKey::Plain(arc(ctx.name_key(&t.id, t.name.as_deref())))
        }
        3 => {
            let t = &model.species_types[i];
            ComputedKey::Plain(arc(ctx.name_key(&t.id, t.name.as_deref())))
        }
        4 => {
            let c = &model.compartments[i];
            ComputedKey::Plain(arc(ctx.name_key(&c.id, c.name.as_deref())))
        }
        5 => {
            let s = &model.species[i];
            ComputedKey::Plain(arc(ctx.name_key(&s.id, s.name.as_deref())))
        }
        6 => {
            let r = &model.rules[i];
            ComputedKey::WithRefs(arc(ctx.rule_key(r, false)), rule_refs(r))
        }
        7 => {
            let c = &model.constraints[i];
            ComputedKey::WithRefs(arc(ctx.constraint_key(&c.math, false)), constraint_refs(&c.math))
        }
        8 => {
            let r = &model.reactions[i];
            let (refs, math_refs) = reaction_refs(r);
            ComputedKey::Reaction(arc(ctx.reaction_key(r, false)), refs, math_refs)
        }
        9 => {
            let ev = &model.events[i];
            ComputedKey::WithRefs(arc(ctx.event_key(ev, false)), event_refs(ev))
        }
        _ => unreachable!("ten component kinds"),
    }
}

/// Scheduling weight of one key job: proportional to the work the key
/// derivation does (canonicalising the component's maths dominates), so
/// one giant kinetic law no longer serialises a whole chunk. Never
/// affects output — only which worker computes which key.
fn key_job_weight(model: &Model, offsets: &[usize; 10], job: usize) -> u64 {
    let kind = offsets.iter().rposition(|&o| job >= o).expect("job id below every offset");
    let i = job - offsets[kind];
    match kind {
        0 => model.function_definitions[i].body.size() as u64,
        // Units, types, compartments and species have constant-size keys.
        1..=5 => 1,
        6 => model.rules[i].math().size() as u64,
        7 => model.constraints[i].math.size() as u64,
        8 => {
            let r = &model.reactions[i];
            let math = r.kinetic_law.as_ref().map(|kl| kl.math.size()).unwrap_or(1);
            (math + r.reactants.len() + r.products.len() + r.modifiers.len()) as u64
        }
        9 => {
            let ev = &model.events[i];
            (ev.trigger.size()
                + ev.delay.as_ref().map(MathExpr::size).unwrap_or(0)
                + ev.assignments.iter().map(|a| a.math.size()).sum::<usize>()) as u64
        }
        _ => unreachable!("ten component kinds"),
    }
}

impl IncomingKeys {
    /// The free-reference sets, deriving them from `model` on first use
    /// after a snapshot load (fresh preparations store them pre-filled).
    /// Thread-safe; at most one derivation ever runs.
    pub(crate) fn refs(&self, model: &Model) -> &IncomingRefs {
        self.refs.get_or_init(|| IncomingRefs::build(model))
    }

    /// Compute a model's incoming-side keys — the same artifact
    /// [`ModelAnalysis::build`] fills into its `incoming` argument — with
    /// the per-component jobs distributed across `workers` scoped threads
    /// by **size-weighted chunking**: jobs are assigned longest-first to
    /// the least-loaded worker (LPT), weighted by each component's formula
    /// size, so one giant kinetic law occupies a worker by itself instead
    /// of serialising everything striped alongside it. Canonical keys are
    /// pure functions of one component each, so worker count and
    /// assignment can never influence the artifact: output is
    /// byte-identical to the serial path for every `workers` value (unit-
    /// and property-tested), only wall time changes.
    ///
    /// The session invokes this for raw pushes at or above
    /// [`ComposeOptions::parallel_push_threshold`] components, then feeds
    /// the keys to the merge passes exactly as prepared-model keys.
    /// An optional persistent [`WorkerPool`] carries the chunks: with
    /// `Some(pool)` the per-chunk jobs run on the pool's parked lanes (the
    /// calling thread takes the first chunk) instead of spawning fresh
    /// scoped threads per push; with `None` a `thread::scope` is used.
    /// Chunk assignment, and therefore the artifact, is identical either
    /// way.
    pub(crate) fn build_parallel_on(
        model: &Model,
        options: &ComposeOptions,
        workers: usize,
        pool: Option<&WorkerPool>,
    ) -> IncomingKeys {
        let counts = [
            model.function_definitions.len(),
            model.unit_definitions.len(),
            model.compartment_types.len(),
            model.species_types.len(),
            model.compartments.len(),
            model.species.len(),
            model.rules.len(),
            model.constraints.len(),
            model.reactions.len(),
            model.events.len(),
        ];
        let mut offsets = [0usize; 10];
        let mut total = 0usize;
        for (slot, count) in offsets.iter_mut().zip(counts) {
            *slot = total;
            total += count;
        }

        let workers = workers.clamp(1, total.max(1));
        let mut computed: Vec<(usize, ComputedKey)> = if workers <= 1 {
            let ctx = MatchContext::new(options);
            (0..total).map(|job| (job, compute_key_job(model, &ctx, &offsets, job))).collect()
        } else {
            // Size-weighted chunking (LPT): largest jobs first, each to
            // the currently least-loaded worker.
            let mut order: Vec<usize> = (0..total).collect();
            let weights: Vec<u64> =
                (0..total).map(|job| key_job_weight(model, &offsets, job).max(1)).collect();
            order.sort_by_key(|&job| std::cmp::Reverse(weights[job]));
            let mut loads = vec![0u64; workers];
            let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); workers];
            for job in order {
                let w = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &load)| load)
                    .map(|(w, _)| w)
                    .expect("at least one worker");
                loads[w] += weights[job];
                chunks[w].push(job);
            }
            match pool {
                Some(pool) => {
                    let offsets = &offsets;
                    let out = std::sync::Mutex::new(Vec::with_capacity(total));
                    let mut chunks = chunks.into_iter();
                    let first = chunks.next().unwrap_or_default();
                    let run_chunk = |jobs: Vec<usize>| {
                        let ctx = MatchContext::new(options);
                        let part: Vec<(usize, ComputedKey)> = jobs
                            .into_iter()
                            .map(|job| (job, compute_key_job(model, &ctx, offsets, job)))
                            .collect();
                        out.lock().expect("push key results").extend(part);
                    };
                    let run_chunk = &run_chunk;
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                        .map(|jobs| {
                            Box::new(move || run_chunk(jobs)) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_scoped(move || run_chunk(first), tasks);
                    out.into_inner().expect("push key results")
                }
                None => std::thread::scope(|scope| {
                    let offsets = &offsets;
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|jobs| {
                            scope.spawn(move || {
                                let ctx = MatchContext::new(options);
                                jobs.into_iter()
                                    .map(|job| (job, compute_key_job(model, &ctx, offsets, job)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|handle| handle.join().expect("push key worker panicked"))
                        .collect()
                }),
            }
        };
        computed.sort_unstable_by_key(|(job, _)| *job);

        // Ascending job order is per-kind positional order, so plain
        // pushes reassemble every vector.
        let mut keys = IncomingKeys::default();
        let mut refs = IncomingRefs::default();
        for (job, slot) in computed {
            let kind = offsets.iter().rposition(|&o| job >= o).expect("job id below every offset");
            match (kind, slot) {
                (0, ComputedKey::WithRefs(key, r)) => {
                    keys.functions.push(key);
                    refs.functions.push(r);
                }
                (1, ComputedKey::Plain(key)) => keys.units.push(key),
                (2, ComputedKey::Plain(key)) => keys.compartment_types.push(key),
                (3, ComputedKey::Plain(key)) => keys.species_types.push(key),
                (4, ComputedKey::Plain(key)) => keys.compartments.push(key),
                (5, ComputedKey::Plain(key)) => keys.species.push(key),
                (6, ComputedKey::WithRefs(key, r)) => {
                    keys.rules.push(key);
                    refs.rules.push(r);
                }
                (7, ComputedKey::WithRefs(key, r)) => {
                    keys.constraints.push(key);
                    refs.constraints.push(r);
                }
                (8, ComputedKey::Reaction(key, r, math_refs)) => {
                    keys.reactions.push(key);
                    refs.reactions.push(r);
                    refs.reaction_math.push(math_refs);
                }
                (9, ComputedKey::WithRefs(key, r)) => {
                    keys.events.push(key);
                    refs.events.push(r);
                }
                _ => unreachable!("job kind and payload always agree"),
            }
        }
        let _ = keys.refs.set(refs);
        keys
    }
}

impl ModelAnalysis {
    /// Analyse `model` under `options`. With `incoming` set, additionally
    /// collect the positional incoming-side keys (what [`PreparedModel`]
    /// needs); a session's own `reindex` skips them.
    pub(crate) fn build(
        model: &Model,
        options: &ComposeOptions,
        incoming: Option<&mut IncomingKeys>,
    ) -> ModelAnalysis {
        let ctx = MatchContext::new(options);
        let cache = options.cache_content_keys;
        let mut analysis = ModelAnalysis {
            taken: Arc::new(model.global_ids().into_iter().collect()),
            idx: Indexes::new(options),
            keys: KeyCache::default(),
        };
        let idx = &mut analysis.idx;
        let keys = &mut analysis.keys;
        let mut inc = incoming;

        for (i, f) in model.function_definitions.iter().enumerate() {
            idx.functions_by_id.insert(&f.id, i);
            let key: Arc<str> = Arc::from(ctx.function_key(f, false).as_str());
            idx.functions_by_content.insert_shared(&key, i);
            if cache {
                keys.functions.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.functions.push(key);
            }
        }
        for (i, u) in model.unit_definitions.iter().enumerate() {
            idx.units_by_id.insert(&u.id, i);
            let key: Arc<str> = Arc::from(ctx.unit_key(u).as_str());
            idx.units_by_content.insert_shared(&key, i);
            if cache {
                keys.units.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.units.push(key);
            }
        }
        for (i, t) in model.compartment_types.iter().enumerate() {
            idx.compartment_types_by_id.insert(&t.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&t.id, t.name.as_deref()).as_str());
            idx.compartment_types_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.compartment_types.push(key);
            }
        }
        for (i, t) in model.species_types.iter().enumerate() {
            idx.species_types_by_id.insert(&t.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&t.id, t.name.as_deref()).as_str());
            idx.species_types_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.species_types.push(key);
            }
        }
        for (i, c) in model.compartments.iter().enumerate() {
            idx.compartments_by_id.insert(&c.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&c.id, c.name.as_deref()).as_str());
            idx.compartments_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.compartments.push(key);
            }
        }
        for (i, s) in model.species.iter().enumerate() {
            idx.species_by_id.insert(&s.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&s.id, s.name.as_deref()).as_str());
            idx.species_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.species.push(key);
            }
        }
        for (i, p) in model.parameters.iter().enumerate() {
            idx.parameters_by_id.insert(&p.id, i);
        }
        for (i, ia) in model.initial_assignments.iter().enumerate() {
            idx.assignments_by_symbol.insert(&ia.symbol, i);
        }
        for (i, r) in model.rules.iter().enumerate() {
            let key: Arc<str> = Arc::from(ctx.rule_key(r, false).as_str());
            idx.rules_by_content.insert_shared(&key, i);
            if let Some(v) = r.variable() {
                idx.rules_by_variable.insert(v, i);
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.rules.push(key);
            }
        }
        for (i, c) in model.constraints.iter().enumerate() {
            let key: Arc<str> = Arc::from(ctx.constraint_key(&c.math, false).as_str());
            idx.constraints_by_content.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.constraints.push(key);
            }
        }
        let rxn_content = options.cache_patterns;
        for (i, r) in model.reactions.iter().enumerate() {
            idx.reactions_by_id.insert(&r.id, i);
            // Incoming reaction keys are always needed (the merge pass
            // computes one per incoming reaction regardless of caching),
            // but the by-content index honours the pattern-cache ablation.
            if rxn_content || inc.is_some() {
                let key: Arc<str> = Arc::from(ctx.reaction_key(r, false).as_str());
                if rxn_content {
                    idx.reactions_by_content.insert_shared(&key, i);
                    if cache {
                        keys.reactions.push(Arc::clone(&key));
                    }
                }
                if let Some(inc) = inc.as_deref_mut() {
                    inc.reactions.push(key);
                }
            }
        }
        for (i, ev) in model.events.iter().enumerate() {
            if let Some(id) = &ev.id {
                idx.events_by_id.insert(id, i);
            }
            let key: Arc<str> = Arc::from(ctx.event_key(ev, false).as_str());
            idx.events_by_content.insert_shared(&key, i);
            if cache {
                keys.events.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.events.push(key);
            }
        }
        // Fresh preparations carry their reference sets pre-filled (the
        // incoming path is exactly where the merge will need them).
        if let Some(inc) = inc {
            let _ = inc.refs.set(IncomingRefs::build(model));
        }
        analysis
    }
}

/// A model bundled with its precomputed composition analysis: canonical
/// content keys, per-kind indexes, evaluated initial values and the global
/// id set — see the [module docs](self).
///
/// Produced by [`PreparedModel::new`] or
/// [`Composer::prepare`](crate::Composer::prepare); immutable afterwards,
/// so one preparation (typically behind an [`Arc`]) can
/// serve any number of concurrent compositions.
///
/// ```
/// use std::sync::Arc;
/// use sbml_compose::{ComposeOptions, Composer};
/// use sbml_model::builder::ModelBuilder;
///
/// let composer = Composer::new(ComposeOptions::default());
/// let hub = Arc::new(composer.prepare(
///     &ModelBuilder::new("hub").compartment("cell", 1.0).species("ATP", 1.0).build(),
/// ));
/// let spoke = composer.prepare(
///     &ModelBuilder::new("spoke").compartment("cell", 1.0).species("ATP", 1.0).build(),
/// );
/// // The hub's analysis is reused by every pair it participates in.
/// let merged = composer.compose_prepared(&hub, &spoke);
/// assert_eq!(merged.model.species.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedModel {
    model: Model,
    fingerprint: OptionsFingerprint,
    /// The base-side analysis. Fresh preparations fill it eagerly (the
    /// keys come out of the same canonicalisation pass); snapshot loads
    /// leave it empty and [`PreparedModel::analysis`] rebuilds it from
    /// the cached incoming keys on the first composition use — corpus
    /// models that only ever answer match queries never pay for it.
    analysis: Arc<std::sync::OnceLock<ModelAnalysis>>,
    /// The option bits the lazy analysis rebuild needs (the full options
    /// — synonym table included — are not required: nothing is
    /// re-canonicalised).
    analysis_config: AnalysisConfig,
    pub(crate) incoming: IncomingKeys,
    pub(crate) initial_values: Arc<InitialValues>,
    /// Lazily-computed merge-pipeline plan (see [`crate::pipeline`]) — a
    /// pure function of this model's ids and reference sets, shared (via
    /// `Arc`) across clones and filled on the first pipelined push.
    pub(crate) plan: Arc<std::sync::OnceLock<crate::pipeline::Plan>>,
}

/// The slice of [`ComposeOptions`] that shapes a [`ModelAnalysis`] built
/// from already-canonical keys: the index structure and the two cache
/// ablation flags.
#[derive(Debug, Clone, Copy)]
struct AnalysisConfig {
    index: crate::index::IndexKind,
    cache_patterns: bool,
    cache_content_keys: bool,
}

impl AnalysisConfig {
    fn of(options: &ComposeOptions) -> AnalysisConfig {
        AnalysisConfig {
            index: options.index,
            cache_patterns: options.cache_patterns,
            cache_content_keys: options.cache_content_keys,
        }
    }
}

impl PreparedModel {
    /// Analyse `model` once under `options`. The preparation is only valid
    /// for composition under options with the same
    /// [fingerprint](ComposeOptions::fingerprint); every prepared entry
    /// point checks this and panics on a mismatch rather than silently
    /// composing with stale keys.
    pub fn new(model: &Model, options: &ComposeOptions) -> PreparedModel {
        PreparedModel::from_model(model.clone(), options)
    }

    /// As [`PreparedModel::new`], but takes the model by value — no clone.
    pub fn from_model(model: Model, options: &ComposeOptions) -> PreparedModel {
        let mut incoming = IncomingKeys::default();
        let analysis = ModelAnalysis::build(&model, options, Some(&mut incoming));
        let initial_values = Arc::new(if options.collect_initial_values {
            collect(&model)
        } else {
            InitialValues::default()
        });
        // The analysis fell out of the same canonicalisation pass that
        // produced the keys — store it filled.
        let cell = std::sync::OnceLock::new();
        let _ = cell.set(analysis);
        PreparedModel {
            model,
            fingerprint: options.fingerprint(),
            analysis: Arc::new(cell),
            analysis_config: AnalysisConfig::of(options),
            incoming,
            initial_values,
            plan: Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The base-side analysis, rebuilding it from the cached incoming
    /// keys on first use after a snapshot load (fresh preparations carry
    /// it pre-filled). Thread-safe; at most one rebuild ever runs.
    pub(crate) fn analysis(&self) -> &ModelAnalysis {
        self.analysis.get_or_init(|| {
            ModelAnalysis::from_incoming(&self.model, &self.incoming, self.analysis_config)
        })
    }

    /// The model this preparation belongs to.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The options fingerprint the analysis was computed under.
    pub fn fingerprint(&self) -> OptionsFingerprint {
        self.fingerprint
    }

    /// The evaluated initial values collected at preparation time (empty
    /// when the options disabled collection).
    pub fn initial_values(&self) -> &InitialValues {
        &self.initial_values
    }

    /// Canonical name key of every species, positional with
    /// `model().species` — the exact keys the species merge pass compares
    /// (synonym-closed display names under heavy/light semantics, raw ids
    /// under none). Exposed so the matching layer (`sbml-match`) can
    /// invert them into posting lists instead of re-deriving them.
    pub fn species_name_keys(&self) -> &[Arc<str>] {
        &self.incoming.species
    }

    /// Canonical content key of every reaction, positional with
    /// `model().reactions` — participant multisets plus the kinetic-law
    /// pattern (commutativity-canonical under heavy semantics). The
    /// id-independent reaction identity corpus matching indexes.
    pub fn reaction_content_keys(&self) -> &[Arc<str>] {
        &self.incoming.reactions
    }

    /// Every canonical content/name key of the preparation, one per keyed
    /// component, in Fig. 4 kind order (functions, units, types,
    /// compartments, species, rules, constraints, reactions, events) —
    /// the key-set identity of the model's content, used for Jaccard
    /// similarity scoring in approximate corpus matching.
    pub fn content_keys(&self) -> impl Iterator<Item = &Arc<str>> {
        let inc = &self.incoming;
        inc.functions
            .iter()
            .chain(&inc.units)
            .chain(&inc.compartment_types)
            .chain(&inc.species_types)
            .chain(&inc.compartments)
            .chain(&inc.species)
            .chain(&inc.rules)
            .chain(&inc.constraints)
            .chain(&inc.reactions)
            .chain(&inc.events)
    }

    /// Decompose the preparation into its serialisable raw parts: the
    /// model, every cached canonical key family, and the evaluated
    /// initial values. The parts are exactly what
    /// [`PreparedModel::from_raw`] needs to reconstruct the preparation
    /// without re-canonicalising a single key — the `sbml-serve` snapshot
    /// format persists them verbatim. (Free-reference sets are *not*
    /// part of the raw form: they are derived from the model on first
    /// compose use.)
    pub fn to_raw(&self) -> RawPrepared {
        let inc = &self.incoming;
        let mut initial_values: Vec<(String, f64)> =
            self.initial_values.values.iter().map(|(k, v)| (k.clone(), *v)).collect();
        initial_values.sort_by(|a, b| a.0.cmp(&b.0));
        RawPrepared {
            model: self.model.clone(),
            function_keys: inc.functions.clone(),
            unit_keys: inc.units.clone(),
            compartment_type_keys: inc.compartment_types.clone(),
            species_type_keys: inc.species_types.clone(),
            compartment_keys: inc.compartments.clone(),
            species_keys: inc.species.clone(),
            rule_keys: inc.rules.clone(),
            constraint_keys: inc.constraints.clone(),
            reaction_keys: inc.reactions.clone(),
            event_keys: inc.events.clone(),
            initial_values,
        }
    }

    /// Reassemble a preparation from raw parts produced by
    /// [`PreparedModel::to_raw`] (possibly via a round-trip through disk).
    ///
    /// Nothing is re-canonicalised: the cached keys are taken as given
    /// and the cheap derived state — the taken-id set, the per-kind
    /// lookup indexes, the key cache — is rebuilt from them by plain
    /// hash-map insertion, mirroring the control flow of the fresh
    /// analysis (including the `cache_patterns` / `cache_content_keys`
    /// ablations). The caller is responsible for checking that `options`
    /// carries the fingerprint the parts were prepared under (the
    /// snapshot loader verifies the recorded
    /// [`OptionsFingerprint::stable_hash`] before calling this);
    /// structural mismatches between the parts and the model are reported
    /// as errors, never panics.
    pub fn from_raw(raw: RawPrepared, options: &ComposeOptions) -> Result<PreparedModel, String> {
        let model = raw.model;
        let check = |family: &str, got: usize, want: usize| -> Result<(), String> {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "prepared parts for {:?} are inconsistent: {family} has {got} entries, \
                     model has {want}",
                    model.id
                ))
            }
        };
        check("function keys", raw.function_keys.len(), model.function_definitions.len())?;
        check("unit keys", raw.unit_keys.len(), model.unit_definitions.len())?;
        check(
            "compartment type keys",
            raw.compartment_type_keys.len(),
            model.compartment_types.len(),
        )?;
        check("species type keys", raw.species_type_keys.len(), model.species_types.len())?;
        check("compartment keys", raw.compartment_keys.len(), model.compartments.len())?;
        check("species keys", raw.species_keys.len(), model.species.len())?;
        check("rule keys", raw.rule_keys.len(), model.rules.len())?;
        check("constraint keys", raw.constraint_keys.len(), model.constraints.len())?;
        check("reaction keys", raw.reaction_keys.len(), model.reactions.len())?;
        check("event keys", raw.event_keys.len(), model.events.len())?;

        let incoming = IncomingKeys {
            functions: raw.function_keys,
            units: raw.unit_keys,
            compartment_types: raw.compartment_type_keys,
            species_types: raw.species_type_keys,
            compartments: raw.compartment_keys,
            species: raw.species_keys,
            rules: raw.rule_keys,
            constraints: raw.constraint_keys,
            reactions: raw.reaction_keys,
            events: raw.event_keys,
            // Left empty: [`IncomingKeys::refs`] derives the reference
            // sets from the model on the first compose use.
            refs: std::sync::OnceLock::new(),
        };

        let initial_values =
            Arc::new(InitialValues { values: raw.initial_values.into_iter().collect() });
        Ok(PreparedModel {
            model,
            fingerprint: options.fingerprint(),
            // Left empty: the length checks above guarantee the lazy
            // rebuild in [`PreparedModel::analysis`] cannot index out of
            // bounds, and a corpus that only answers match queries never
            // needs the base-side indexes at all.
            analysis: Arc::new(std::sync::OnceLock::new()),
            analysis_config: AnalysisConfig::of(options),
            incoming,
            initial_values,
            plan: Arc::new(std::sync::OnceLock::new()),
        })
    }
}

impl ModelAnalysis {
    /// Rebuild the derived state exactly as [`ModelAnalysis::build`]
    /// fills it, but from the cached incoming keys instead of fresh
    /// canonicalisation. The caller guarantees every key family is
    /// positional with its component list (the snapshot loader checks
    /// the lengths before constructing the [`PreparedModel`]).
    fn from_incoming(
        model: &Model,
        incoming: &IncomingKeys,
        config: AnalysisConfig,
    ) -> ModelAnalysis {
        let cache = config.cache_content_keys;
        let mut idx = Indexes::with_kind(config.index);
        let mut keys = KeyCache::default();
        for (i, f) in model.function_definitions.iter().enumerate() {
            idx.functions_by_id.insert(&f.id, i);
            idx.functions_by_content.insert_shared(&incoming.functions[i], i);
            if cache {
                keys.functions.push(Arc::clone(&incoming.functions[i]));
            }
        }
        for (i, u) in model.unit_definitions.iter().enumerate() {
            idx.units_by_id.insert(&u.id, i);
            idx.units_by_content.insert_shared(&incoming.units[i], i);
            if cache {
                keys.units.push(Arc::clone(&incoming.units[i]));
            }
        }
        for (i, t) in model.compartment_types.iter().enumerate() {
            idx.compartment_types_by_id.insert(&t.id, i);
            idx.compartment_types_by_name.insert_shared(&incoming.compartment_types[i], i);
        }
        for (i, t) in model.species_types.iter().enumerate() {
            idx.species_types_by_id.insert(&t.id, i);
            idx.species_types_by_name.insert_shared(&incoming.species_types[i], i);
        }
        for (i, c) in model.compartments.iter().enumerate() {
            idx.compartments_by_id.insert(&c.id, i);
            idx.compartments_by_name.insert_shared(&incoming.compartments[i], i);
        }
        for (i, s) in model.species.iter().enumerate() {
            idx.species_by_id.insert(&s.id, i);
            idx.species_by_name.insert_shared(&incoming.species[i], i);
        }
        for (i, p) in model.parameters.iter().enumerate() {
            idx.parameters_by_id.insert(&p.id, i);
        }
        for (i, ia) in model.initial_assignments.iter().enumerate() {
            idx.assignments_by_symbol.insert(&ia.symbol, i);
        }
        for (i, r) in model.rules.iter().enumerate() {
            idx.rules_by_content.insert_shared(&incoming.rules[i], i);
            if let Some(v) = r.variable() {
                idx.rules_by_variable.insert(v, i);
            }
        }
        for i in 0..model.constraints.len() {
            idx.constraints_by_content.insert_shared(&incoming.constraints[i], i);
        }
        let rxn_content = config.cache_patterns;
        for (i, r) in model.reactions.iter().enumerate() {
            idx.reactions_by_id.insert(&r.id, i);
            if rxn_content {
                idx.reactions_by_content.insert_shared(&incoming.reactions[i], i);
                if cache {
                    keys.reactions.push(Arc::clone(&incoming.reactions[i]));
                }
            }
        }
        for (i, ev) in model.events.iter().enumerate() {
            if let Some(id) = &ev.id {
                idx.events_by_id.insert(id, i);
            }
            idx.events_by_content.insert_shared(&incoming.events[i], i);
            if cache {
                keys.events.push(Arc::clone(&incoming.events[i]));
            }
        }

        ModelAnalysis {
            taken: Arc::new(model.global_ids().into_iter().collect()),
            idx,
            keys,
        }
    }
}

impl PreparedModel {
    /// Panic unless this preparation matches `options`; called by every
    /// prepared composition entry point.
    pub(crate) fn check_options(&self, options: &ComposeOptions) {
        assert!(
            self.fingerprint == options.fingerprint(),
            "PreparedModel for {:?} was prepared under different options \
             (fingerprint {:?} vs {:?}); re-prepare it with the composing options",
            self.model.id,
            self.fingerprint,
            options.fingerprint(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn sample() -> Model {
        ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .parameter("k", 0.4)
            .initial_assignment("G6P", "k * 10")
            .reaction("hex", &["glc"], &["G6P"], "k*glc")
            .build()
    }

    #[test]
    fn analysis_matches_model_shape() {
        let options = ComposeOptions::default();
        let m = sample();
        let p = PreparedModel::new(&m, &options);
        assert_eq!(p.model(), &m);
        assert_eq!(p.analysis().idx.species_by_id.len(), 2);
        assert_eq!(p.analysis().idx.reactions_by_id.len(), 1);
        assert_eq!(p.incoming.species.len(), 2);
        assert_eq!(p.incoming.reactions.len(), 1);
        assert_eq!(p.incoming.compartments.len(), 1);
        assert!(p.analysis().taken.contains("hex"));
        // Initial assignment evaluated at preparation time.
        assert_eq!(p.initial_values().get("G6P"), Some(4.0));
    }

    #[test]
    fn from_model_equals_new() {
        let options = ComposeOptions::default();
        let m = sample();
        let a = PreparedModel::new(&m, &options);
        let b = PreparedModel::from_model(m, &options);
        assert_eq!(a.model(), b.model());
        assert_eq!(a.incoming.species, b.incoming.species);
        assert_eq!(a.initial_values(), b.initial_values());
    }

    #[test]
    fn incoming_keys_match_fresh_context() {
        let options = ComposeOptions::default();
        let m = sample();
        let p = PreparedModel::new(&m, &options);
        let ctx = MatchContext::new(&options);
        // With no mappings recorded, mapped and unmapped keys coincide —
        // the invariant the prepared fast path relies on.
        for (i, r) in m.reactions.iter().enumerate() {
            assert_eq!(p.incoming.reactions[i].as_ref(), ctx.reaction_key(r, true));
        }
        for (i, s) in m.species.iter().enumerate() {
            assert_eq!(p.incoming.species[i].as_ref(), ctx.name_key(&s.id, s.name.as_deref()));
        }
    }

    #[test]
    fn public_key_accessors_expose_incoming_keys() {
        let options = ComposeOptions::default();
        let m = sample();
        let p = PreparedModel::new(&m, &options);
        let ctx = MatchContext::new(&options);
        assert_eq!(p.species_name_keys().len(), m.species.len());
        assert_eq!(p.species_name_keys()[0].as_ref(), ctx.name_key("glc", Some("glucose")));
        assert_eq!(p.reaction_content_keys().len(), m.reactions.len());
        assert_eq!(
            p.reaction_content_keys()[0].as_ref(),
            ctx.reaction_key(&m.reactions[0], false)
        );
        // One key per keyed component: 1 compartment + 2 species + 1 reaction.
        assert_eq!(p.content_keys().count(), 4);
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn options_mismatch_is_rejected() {
        let m = sample();
        let p = PreparedModel::new(&m, &ComposeOptions::default());
        p.check_options(&ComposeOptions::light());
    }

    #[test]
    fn prepared_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedModel>();
    }

    /// A model with several entries of every keyed kind, so every job
    /// segment of the parallel builder is exercised.
    fn every_kind() -> Model {
        use sbml_math::infix;
        use sbml_model::{Event, EventAssignment, FunctionDefinition, Rule};
        use sbml_units::{Unit, UnitKind};

        let mut m = ModelBuilder::new("all")
            .compartment("cell", 1.0)
            .compartment("nucleus", 0.2)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .species("ATP", 3.0)
            .parameter("k1", 0.4)
            .parameter("k2", 1.5)
            .initial_assignment("G6P", "k1 * 10")
            .reaction("hex", &["glc"], &["G6P"], "k1*glc*ATP")
            .reaction("leak", &["G6P"], &["glc"], "k2*G6P")
            .build();
        for (i, body) in ["x*2", "x+y"].iter().enumerate() {
            m.function_definitions.push(FunctionDefinition::new(
                format!("fn{i}"),
                vec!["x".into(), "y".into()],
                infix::parse(body).unwrap(),
            ));
        }
        m.unit_definitions
            .push(sbml_units::UnitDefinition::new("per_s", vec![Unit::of(UnitKind::Second).pow(-1)]));
        m.compartment_types.push(sbml_model::CompartmentType {
            id: "ct0".into(),
            name: Some("membrane".into()),
        });
        m.species_types.push(sbml_model::SpeciesType { id: "st0".into(), name: None });
        m.rules.push(Rule::Rate {
            variable: "ATP".into(),
            math: infix::parse("0 - k2*ATP").unwrap(),
        });
        m.rules.push(Rule::Algebraic { math: infix::parse("glc + G6P - 5").unwrap() });
        m.constraints.push(sbml_model::rule::Constraint {
            math: infix::parse("glc >= 0").unwrap(),
            message: None,
        });
        let mut ev = Event::new(infix::parse("time >= 3").unwrap());
        ev.id = Some("boost".into());
        ev.delay = Some(infix::parse("k1").unwrap());
        ev.assignments.push(EventAssignment {
            variable: "ATP".into(),
            math: infix::parse("ATP + 1").unwrap(),
        });
        m.events.push(ev);
        m
    }

    #[test]
    fn model_content_keys_equal_prepared_content_keys() {
        // Pins the standalone enumeration to the preparation's: if a key
        // family is ever added to (or dropped from) IncomingKeys, this
        // test forces model_content_keys to follow.
        for options in
            [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let m = every_kind();
            let p = PreparedModel::new(&m, &options);
            let mut from_prepared: Vec<&str> =
                p.content_keys().map(|k| k.as_ref()).collect();
            let direct = model_content_keys(&m, &options);
            let mut from_direct: Vec<&str> = direct.iter().map(String::as_str).collect();
            from_prepared.sort_unstable();
            from_direct.sort_unstable();
            assert_eq!(from_prepared, from_direct);
        }
    }

    #[test]
    fn parallel_incoming_keys_equal_serial_for_every_worker_count() {
        let model = every_kind();
        for options in
            [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let mut serial = IncomingKeys::default();
            ModelAnalysis::build(&model, &options, Some(&mut serial));
            for workers in [1, 2, 3, 5, 8, 64] {
                let parallel = IncomingKeys::build_parallel_on(&model, &options, workers, None);
                assert_eq!(parallel, serial, "workers={workers}");
                let pool = WorkerPool::new(workers.min(4));
                let pooled =
                    IncomingKeys::build_parallel_on(&model, &options, workers, Some(&pool));
                assert_eq!(pooled, serial, "workers={workers} (pooled)");
            }
        }
    }

    #[test]
    fn weighted_chunking_handles_skewed_formula_sizes() {
        // One giant kinetic law among many tiny components: the LPT
        // assignment gives it a worker of its own, and output stays
        // byte-identical to serial for every worker count.
        use sbml_math::infix;
        let mut m = every_kind();
        let giant = (0..200).map(|i| format!("glc + {i}")).collect::<Vec<_>>().join(" * ");
        let mut r = sbml_model::Reaction::new("giant");
        r.reactants.push(sbml_model::SpeciesReference::new("glc"));
        r.kinetic_law = Some(sbml_model::KineticLaw::new(infix::parse(&giant).unwrap()));
        m.reactions.push(r);

        let options = ComposeOptions::default();
        let mut serial = IncomingKeys::default();
        ModelAnalysis::build(&m, &options, Some(&mut serial));
        for workers in [2, 3, 7, 16] {
            assert_eq!(
                IncomingKeys::build_parallel_on(&m, &options, workers, None),
                serial,
                "{workers}"
            );
        }
    }

    #[test]
    fn raw_round_trip_preserves_preparation() {
        for options in
            [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()]
        {
            let m = every_kind();
            let fresh = PreparedModel::new(&m, &options);
            let rebuilt = PreparedModel::from_raw(fresh.to_raw(), &options)
                .expect("raw parts from to_raw are consistent");
            assert_eq!(rebuilt.model(), fresh.model());
            // Force the lazily-derived reference sets so the equality
            // below also pins them to the fresh (eager) ones.
            rebuilt.incoming.refs(rebuilt.model());
            assert_eq!(rebuilt.incoming, fresh.incoming);
            assert_eq!(rebuilt.initial_values(), fresh.initial_values());
            assert_eq!(rebuilt.fingerprint(), fresh.fingerprint());
            assert_eq!(rebuilt.analysis().taken, fresh.analysis().taken);
            assert_eq!(
                rebuilt.analysis().idx.reactions_by_content.len(),
                fresh.analysis().idx.reactions_by_content.len()
            );
            // The rebuilt preparation composes bit-identically.
            let composer = crate::Composer::new(options.clone());
            let other = PreparedModel::new(&sample(), &options);
            let a = composer.compose_prepared(&fresh, &other);
            let b = composer.compose_prepared(&rebuilt, &other);
            assert_eq!(a.model, b.model);
        }
    }

    #[test]
    fn raw_round_trip_honours_cache_ablations() {
        let options = ComposeOptions::default()
            .with_pattern_cache(false)
            .with_content_key_cache(false);
        let m = every_kind();
        let fresh = PreparedModel::new(&m, &options);
        let rebuilt = PreparedModel::from_raw(fresh.to_raw(), &options).expect("consistent");
        assert_eq!(rebuilt.analysis().keys.reactions.len(), fresh.analysis().keys.reactions.len());
        assert_eq!(
            rebuilt.analysis().idx.reactions_by_content.len(),
            fresh.analysis().idx.reactions_by_content.len()
        );
        rebuilt.incoming.refs(rebuilt.model());
        assert_eq!(rebuilt.incoming, fresh.incoming);
    }

    #[test]
    fn inconsistent_raw_parts_are_rejected_not_panicking() {
        let options = ComposeOptions::default();
        let fresh = PreparedModel::new(&every_kind(), &options);
        let mut raw = fresh.to_raw();
        raw.species_keys.pop();
        let err = PreparedModel::from_raw(raw, &options).unwrap_err();
        assert!(err.contains("species keys"), "{err}");
    }

    #[test]
    fn parallel_incoming_keys_on_empty_and_tiny_models() {
        let options = ComposeOptions::default();
        for model in [Model::new("empty"), sample()] {
            let mut serial = IncomingKeys::default();
            ModelAnalysis::build(&model, &options, Some(&mut serial));
            let pool = WorkerPool::new(2);
            for workers in [1, 4] {
                assert_eq!(
                    IncomingKeys::build_parallel_on(&model, &options, workers, None),
                    serial
                );
                assert_eq!(
                    IncomingKeys::build_parallel_on(&model, &options, workers, Some(&pool)),
                    serial
                );
            }
        }
    }
}
