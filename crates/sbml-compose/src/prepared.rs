//! Per-model analysis as a reusable, shareable artifact.
//!
//! Everything the composition engine derives from a single model —
//! canonical content keys, per-kind lookup indexes, evaluated initial
//! values, the set of taken global ids — is independent of whatever that
//! model is later composed *with*. [`PreparedModel`] computes the whole
//! analysis once, up front, and every entry point
//! ([`Composer::compose_prepared`], [`CompositionSession::push_prepared`],
//! [`crate::compose_many_prepared`], [`crate::BatchComposer::all_pairs`])
//! consumes the artifact instead of re-deriving the analysis per call.
//!
//! The artifact is immutable and `Send + Sync`: wrap it in an
//! [`Arc`](std::sync::Arc) and share one preparation across any number of
//! concurrent compositions — the batch all-pairs workload composes each
//! corpus model against 186 partners from a single `PreparedModel` each.
//!
//! Two kinds of cached keys live here:
//!
//! * **base-side** ([`ModelAnalysis`]): the persistent indexes and
//!   canonical (unmapped) content keys a [`CompositionSession`] maintains
//!   over its accumulator. Adopting a prepared base clones these instead of
//!   rebuilding them (`reindex`) from the model.
//! * **incoming-side** ([`IncomingKeys`]): the content/name keys of each
//!   component *as the merge pass would compute them for the second model*.
//!   Name and unit keys never depend on the in-flight ID mappings and are
//!   reused unconditionally; math-bearing keys (functions, rules,
//!   constraints, reactions, events) are reused exactly while the current
//!   push has recorded no mappings — the cached unmapped key is
//!   byte-identical to the mapped key under an empty mapping table — and
//!   recomputed from the first mapping onwards. Output is therefore
//!   bit-for-bit identical to the unprepared path.
//!
//! [`Composer::compose_prepared`]: crate::composer::Composer::compose_prepared
//! [`CompositionSession::push_prepared`]: crate::session::CompositionSession::push_prepared
//! [`CompositionSession`]: crate::session::CompositionSession

use std::collections::BTreeSet;
use std::sync::Arc;

use sbml_math::rewrite::collect_identifiers;
use sbml_model::Model;

use crate::equality::MatchContext;
use crate::index::ComponentIndex;
use crate::initial_values::{collect, InitialValues};
use crate::options::{ComposeOptions, OptionsFingerprint};

/// Persistent per-kind indexes over a model (paper Fig. 5 line 5, without
/// the per-pass rebuild). Maintained live by a session over its
/// accumulator; precomputed once per model by [`PreparedModel`].
#[derive(Debug, Clone)]
pub(crate) struct Indexes {
    pub(crate) functions_by_id: ComponentIndex,
    pub(crate) functions_by_content: ComponentIndex,
    pub(crate) units_by_id: ComponentIndex,
    pub(crate) units_by_content: ComponentIndex,
    pub(crate) compartment_types_by_id: ComponentIndex,
    pub(crate) compartment_types_by_name: ComponentIndex,
    pub(crate) species_types_by_id: ComponentIndex,
    pub(crate) species_types_by_name: ComponentIndex,
    pub(crate) compartments_by_id: ComponentIndex,
    pub(crate) compartments_by_name: ComponentIndex,
    pub(crate) species_by_id: ComponentIndex,
    pub(crate) species_by_name: ComponentIndex,
    pub(crate) parameters_by_id: ComponentIndex,
    pub(crate) assignments_by_symbol: ComponentIndex,
    pub(crate) rules_by_content: ComponentIndex,
    pub(crate) rules_by_variable: ComponentIndex,
    pub(crate) constraints_by_content: ComponentIndex,
    pub(crate) reactions_by_id: ComponentIndex,
    pub(crate) reactions_by_content: ComponentIndex,
    pub(crate) events_by_id: ComponentIndex,
    pub(crate) events_by_content: ComponentIndex,
}

impl Indexes {
    pub(crate) fn new(options: &ComposeOptions) -> Indexes {
        let mk = || ComponentIndex::new(options.index);
        Indexes {
            functions_by_id: mk(),
            functions_by_content: mk(),
            units_by_id: mk(),
            units_by_content: mk(),
            compartment_types_by_id: mk(),
            compartment_types_by_name: mk(),
            species_types_by_id: mk(),
            species_types_by_name: mk(),
            compartments_by_id: mk(),
            compartments_by_name: mk(),
            species_by_id: mk(),
            species_by_name: mk(),
            parameters_by_id: mk(),
            assignments_by_symbol: mk(),
            rules_by_content: mk(),
            rules_by_variable: mk(),
            constraints_by_content: mk(),
            reactions_by_id: mk(),
            reactions_by_content: mk(),
            events_by_id: mk(),
            events_by_content: mk(),
        }
    }
}

/// Canonical merged-side content keys per component position, interned as
/// `Arc<str>` shared with the content indexes. Only the kinds whose merge
/// pass compares keys on an id hit are cached; empty (and ignored) when
/// [`ComposeOptions::cache_content_keys`] is off.
#[derive(Debug, Clone, Default)]
pub(crate) struct KeyCache {
    pub(crate) functions: Vec<Arc<str>>,
    pub(crate) units: Vec<Arc<str>>,
    pub(crate) reactions: Vec<Arc<str>>,
    pub(crate) events: Vec<Arc<str>>,
}

/// The base-side analysis of one model: what a session's `reindex` derives
/// from its accumulator, packaged so it can be computed once and cloned.
#[derive(Debug, Clone)]
pub(crate) struct ModelAnalysis {
    /// Every global id of the model (the session's duplicate-id registry),
    /// behind an `Arc` so adopting it is a refcount bump, not a clone of
    /// every id string.
    pub(crate) taken: Arc<crate::index::FastSet<String>>,
    /// Per-kind lookup indexes.
    pub(crate) idx: Indexes,
    /// Canonical content keys (respects the cache ablation flags).
    pub(crate) keys: KeyCache,
}

/// Per-component *incoming* keys: the canonical keys of each component as
/// the merge pass computes them for a second model before any ID mapping
/// has been recorded. Positional — entry `i` belongs to component `i`.
///
/// The mapping-sensitive kinds additionally carry each component's *free
/// reference set* (every identifier the key derivation would run through
/// the mapping table): the cached key equals the mapped key exactly when
/// none of those identifiers has a mapping, which lets the merge reuse the
/// cache far beyond the no-mappings-yet window.
#[derive(Debug, Clone, Default)]
pub(crate) struct IncomingKeys {
    pub(crate) functions: Vec<Arc<str>>,
    pub(crate) function_refs: Vec<Box<[String]>>,
    pub(crate) units: Vec<Arc<str>>,
    pub(crate) compartment_types: Vec<Arc<str>>,
    pub(crate) species_types: Vec<Arc<str>>,
    pub(crate) compartments: Vec<Arc<str>>,
    pub(crate) species: Vec<Arc<str>>,
    pub(crate) rules: Vec<Arc<str>>,
    pub(crate) rule_refs: Vec<Box<[String]>>,
    pub(crate) constraints: Vec<Arc<str>>,
    pub(crate) constraint_refs: Vec<Box<[String]>>,
    pub(crate) reactions: Vec<Arc<str>>,
    pub(crate) reaction_refs: Vec<Box<[String]>>,
    /// Free identifiers of the kinetic law alone (no participants): the
    /// cached math *section* of a reaction key stays valid as long as
    /// these are unmapped, even when a participant has been renamed.
    pub(crate) reaction_math_refs: Vec<Box<[String]>>,
    pub(crate) events: Vec<Arc<str>>,
    pub(crate) event_refs: Vec<Box<[String]>>,
}

/// Does applying `mappings` leave a component with these free references
/// untouched (so its cached unmapped key is byte-identical to the mapped
/// key)?
pub(crate) fn refs_unmapped(refs: &[String], mappings: &crate::equality::MappingTable) -> bool {
    refs.iter().all(|r| !mappings.contains_key(r))
}

impl ModelAnalysis {
    /// Analyse `model` under `options`. With `incoming` set, additionally
    /// collect the positional incoming-side keys (what [`PreparedModel`]
    /// needs); a session's own `reindex` skips them.
    pub(crate) fn build(
        model: &Model,
        options: &ComposeOptions,
        incoming: Option<&mut IncomingKeys>,
    ) -> ModelAnalysis {
        let ctx = MatchContext::new(options);
        let cache = options.cache_content_keys;
        let mut analysis = ModelAnalysis {
            taken: Arc::new(model.global_ids().into_iter().collect()),
            idx: Indexes::new(options),
            keys: KeyCache::default(),
        };
        let idx = &mut analysis.idx;
        let keys = &mut analysis.keys;
        let mut inc = incoming;

        for (i, f) in model.function_definitions.iter().enumerate() {
            idx.functions_by_id.insert(&f.id, i);
            let key: Arc<str> = Arc::from(ctx.function_key(f, false).as_str());
            idx.functions_by_content.insert_shared(&key, i);
            if cache {
                keys.functions.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.functions.push(key);
                // Refs come from the BARE body, where params are free:
                // the merge renames `f.body` directly (params included),
                // so a param sharing a name with a mapped id must count
                // as a reference. For the content key this is merely
                // conservative (the pattern binds params positionally).
                inc.function_refs.push(collect_identifiers(&f.body).into_iter().collect());
            }
        }
        for (i, u) in model.unit_definitions.iter().enumerate() {
            idx.units_by_id.insert(&u.id, i);
            let key: Arc<str> = Arc::from(ctx.unit_key(u).as_str());
            idx.units_by_content.insert_shared(&key, i);
            if cache {
                keys.units.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.units.push(key);
            }
        }
        for (i, t) in model.compartment_types.iter().enumerate() {
            idx.compartment_types_by_id.insert(&t.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&t.id, t.name.as_deref()).as_str());
            idx.compartment_types_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.compartment_types.push(key);
            }
        }
        for (i, t) in model.species_types.iter().enumerate() {
            idx.species_types_by_id.insert(&t.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&t.id, t.name.as_deref()).as_str());
            idx.species_types_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.species_types.push(key);
            }
        }
        for (i, c) in model.compartments.iter().enumerate() {
            idx.compartments_by_id.insert(&c.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&c.id, c.name.as_deref()).as_str());
            idx.compartments_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.compartments.push(key);
            }
        }
        for (i, s) in model.species.iter().enumerate() {
            idx.species_by_id.insert(&s.id, i);
            let key: Arc<str> = Arc::from(ctx.name_key(&s.id, s.name.as_deref()).as_str());
            idx.species_by_name.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.species.push(key);
            }
        }
        for (i, p) in model.parameters.iter().enumerate() {
            idx.parameters_by_id.insert(&p.id, i);
        }
        for (i, ia) in model.initial_assignments.iter().enumerate() {
            idx.assignments_by_symbol.insert(&ia.symbol, i);
        }
        for (i, r) in model.rules.iter().enumerate() {
            let key: Arc<str> = Arc::from(ctx.rule_key(r, false).as_str());
            idx.rules_by_content.insert_shared(&key, i);
            if let Some(v) = r.variable() {
                idx.rules_by_variable.insert(v, i);
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.rules.push(key);
                let mut refs = collect_identifiers(r.math());
                if let Some(v) = r.variable() {
                    refs.insert(v.to_owned());
                }
                inc.rule_refs.push(refs.into_iter().collect());
            }
        }
        for (i, c) in model.constraints.iter().enumerate() {
            let key: Arc<str> = Arc::from(ctx.constraint_key(&c.math, false).as_str());
            idx.constraints_by_content.insert_shared(&key, i);
            if let Some(inc) = inc.as_deref_mut() {
                inc.constraints.push(key);
                inc.constraint_refs.push(collect_identifiers(&c.math).into_iter().collect());
            }
        }
        let rxn_content = options.cache_patterns;
        for (i, r) in model.reactions.iter().enumerate() {
            idx.reactions_by_id.insert(&r.id, i);
            // Incoming reaction keys are always needed (the merge pass
            // computes one per incoming reaction regardless of caching),
            // but the by-content index honours the pattern-cache ablation.
            if rxn_content || inc.is_some() {
                let key: Arc<str> = Arc::from(ctx.reaction_key(r, false).as_str());
                if rxn_content {
                    idx.reactions_by_content.insert_shared(&key, i);
                    if cache {
                        keys.reactions.push(Arc::clone(&key));
                    }
                }
                if let Some(inc) = inc.as_deref_mut() {
                    inc.reactions.push(key);
                    let math_refs = match &r.kinetic_law {
                        Some(kl) => collect_identifiers(&kl.math),
                        None => BTreeSet::new(),
                    };
                    let mut refs = math_refs.clone();
                    for sr in r.reactants.iter().chain(&r.products).chain(&r.modifiers) {
                        refs.insert(sr.species.clone());
                    }
                    inc.reaction_math_refs.push(math_refs.into_iter().collect());
                    inc.reaction_refs.push(refs.into_iter().collect());
                }
            }
        }
        for (i, ev) in model.events.iter().enumerate() {
            if let Some(id) = &ev.id {
                idx.events_by_id.insert(id, i);
            }
            let key: Arc<str> = Arc::from(ctx.event_key(ev, false).as_str());
            idx.events_by_content.insert_shared(&key, i);
            if cache {
                keys.events.push(Arc::clone(&key));
            }
            if let Some(inc) = inc.as_deref_mut() {
                inc.events.push(key);
                let mut refs = collect_identifiers(&ev.trigger);
                if let Some(delay) = &ev.delay {
                    refs.append(&mut collect_identifiers(delay));
                }
                for a in &ev.assignments {
                    refs.insert(a.variable.clone());
                    refs.append(&mut collect_identifiers(&a.math));
                }
                inc.event_refs.push(refs.into_iter().collect());
            }
        }
        analysis
    }
}

/// A model bundled with its precomputed composition analysis: canonical
/// content keys, per-kind indexes, evaluated initial values and the global
/// id set — see the [module docs](self).
///
/// Produced by [`PreparedModel::new`] or
/// [`Composer::prepare`](crate::Composer::prepare); immutable afterwards,
/// so one preparation (typically behind an [`Arc`](std::sync::Arc)) can
/// serve any number of concurrent compositions.
///
/// ```
/// use std::sync::Arc;
/// use sbml_compose::{ComposeOptions, Composer};
/// use sbml_model::builder::ModelBuilder;
///
/// let composer = Composer::new(ComposeOptions::default());
/// let hub = Arc::new(composer.prepare(
///     &ModelBuilder::new("hub").compartment("cell", 1.0).species("ATP", 1.0).build(),
/// ));
/// let spoke = composer.prepare(
///     &ModelBuilder::new("spoke").compartment("cell", 1.0).species("ATP", 1.0).build(),
/// );
/// // The hub's analysis is reused by every pair it participates in.
/// let merged = composer.compose_prepared(&hub, &spoke);
/// assert_eq!(merged.model.species.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PreparedModel {
    model: Model,
    fingerprint: OptionsFingerprint,
    pub(crate) analysis: ModelAnalysis,
    pub(crate) incoming: IncomingKeys,
    pub(crate) initial_values: Arc<InitialValues>,
}

impl PreparedModel {
    /// Analyse `model` once under `options`. The preparation is only valid
    /// for composition under options with the same
    /// [fingerprint](ComposeOptions::fingerprint); every prepared entry
    /// point checks this and panics on a mismatch rather than silently
    /// composing with stale keys.
    pub fn new(model: &Model, options: &ComposeOptions) -> PreparedModel {
        PreparedModel::from_model(model.clone(), options)
    }

    /// As [`PreparedModel::new`], but takes the model by value — no clone.
    pub fn from_model(model: Model, options: &ComposeOptions) -> PreparedModel {
        let mut incoming = IncomingKeys::default();
        let analysis = ModelAnalysis::build(&model, options, Some(&mut incoming));
        let initial_values = Arc::new(if options.collect_initial_values {
            collect(&model)
        } else {
            InitialValues::default()
        });
        PreparedModel { model, fingerprint: options.fingerprint(), analysis, incoming, initial_values }
    }

    /// The model this preparation belongs to.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The options fingerprint the analysis was computed under.
    pub fn fingerprint(&self) -> OptionsFingerprint {
        self.fingerprint
    }

    /// The evaluated initial values collected at preparation time (empty
    /// when the options disabled collection).
    pub fn initial_values(&self) -> &InitialValues {
        &self.initial_values
    }

    /// Panic unless this preparation matches `options`; called by every
    /// prepared composition entry point.
    pub(crate) fn check_options(&self, options: &ComposeOptions) {
        assert!(
            self.fingerprint == options.fingerprint(),
            "PreparedModel for {:?} was prepared under different options \
             (fingerprint {:?} vs {:?}); re-prepare it with the composing options",
            self.model.id,
            self.fingerprint,
            options.fingerprint(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn sample() -> Model {
        ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species_named("glc", "glucose", 5.0)
            .species("G6P", 0.0)
            .parameter("k", 0.4)
            .initial_assignment("G6P", "k * 10")
            .reaction("hex", &["glc"], &["G6P"], "k*glc")
            .build()
    }

    #[test]
    fn analysis_matches_model_shape() {
        let options = ComposeOptions::default();
        let m = sample();
        let p = PreparedModel::new(&m, &options);
        assert_eq!(p.model(), &m);
        assert_eq!(p.analysis.idx.species_by_id.len(), 2);
        assert_eq!(p.analysis.idx.reactions_by_id.len(), 1);
        assert_eq!(p.incoming.species.len(), 2);
        assert_eq!(p.incoming.reactions.len(), 1);
        assert_eq!(p.incoming.compartments.len(), 1);
        assert!(p.analysis.taken.contains("hex"));
        // Initial assignment evaluated at preparation time.
        assert_eq!(p.initial_values().get("G6P"), Some(4.0));
    }

    #[test]
    fn from_model_equals_new() {
        let options = ComposeOptions::default();
        let m = sample();
        let a = PreparedModel::new(&m, &options);
        let b = PreparedModel::from_model(m, &options);
        assert_eq!(a.model(), b.model());
        assert_eq!(a.incoming.species, b.incoming.species);
        assert_eq!(a.initial_values(), b.initial_values());
    }

    #[test]
    fn incoming_keys_match_fresh_context() {
        let options = ComposeOptions::default();
        let m = sample();
        let p = PreparedModel::new(&m, &options);
        let ctx = MatchContext::new(&options);
        // With no mappings recorded, mapped and unmapped keys coincide —
        // the invariant the prepared fast path relies on.
        for (i, r) in m.reactions.iter().enumerate() {
            assert_eq!(p.incoming.reactions[i].as_ref(), ctx.reaction_key(r, true));
        }
        for (i, s) in m.species.iter().enumerate() {
            assert_eq!(p.incoming.species[i].as_ref(), ctx.name_key(&s.id, s.name.as_deref()));
        }
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn options_mismatch_is_rejected() {
        let m = sample();
        let p = PreparedModel::new(&m, &ComposeOptions::default());
        p.check_options(&ComposeOptions::light());
    }

    #[test]
    fn prepared_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedModel>();
    }
}
