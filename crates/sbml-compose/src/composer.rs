//! The composition engine: paper Fig. 4 (pipeline) + Fig. 5 (generic merge).
//!
//! For every component kind, each component of the second model is looked
//! up in the first model's indexes:
//!
//! 1. **by id** — a hit means the models both claim that identifier. If the
//!    contents agree (under mappings, synonyms, math patterns, units) the
//!    component is a *duplicate* and merged silently; if they disagree, the
//!    first model wins and a *conflict* is logged (paper §3: "the software
//!    then includes the first component in the model and writes a warning
//!    to a log file"). Parameters are the exception: conflicting parameters
//!    are both kept, the incoming one renamed (paper §3: "all parameters in
//!    the original models have to be included in the composed model").
//! 2. **by content key** — a hit under a different id means the same entity
//!    travelled under two names; an **ID mapping** `b → a` is recorded and
//!    applied to all later comparisons and to every inserted reference
//!    (paper Fig. 5: "S2 := S1 (rename); add mapping").
//! 3. otherwise the component is **inserted**, renamed first if its id is
//!    already taken by an unrelated component.
//!
//! The merge passes themselves live in [`crate::session`]:
//! [`Composer::compose`] is a thin wrapper over a one-shot
//! [`CompositionSession`], and [`compose_many`] /
//! [`compose_many_owned`] run the whole chain through a single session so
//! the accumulator is never cloned and its indexes are never rebuilt.

use std::collections::HashMap;
use std::sync::Arc;

use sbml_model::Model;

use crate::log::MergeLog;
use crate::options::ComposeOptions;
use crate::prepared::PreparedModel;
use crate::session::CompositionSession;

/// The outcome of one composition.
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// The composed model (first model's id retained, per Fig. 5 line 25).
    pub model: Model,
    /// Decision log (duplicates, mappings, renames, conflicts).
    pub log: MergeLog,
    /// Final ID mappings: second-model id → composed-model id, for every
    /// component that was matched or renamed.
    pub mappings: HashMap<String, String>,
}

/// A composed model that may still *be* the adopted base: the zero-copy
/// outcome of [`Composer::compose_shared`] /
/// [`CompositionSession::finish_shared`].
#[derive(Debug, Clone)]
pub enum SharedModel {
    /// At least one push changed the accumulator; this is the
    /// materialised result.
    Owned(Model),
    /// Every push was absorbed without touching the base (Duplicate-only
    /// composition): the result is the base itself, no bytes copied.
    Base(Arc<PreparedModel>),
}

impl SharedModel {
    /// The composed model, by reference — uniform over both outcomes.
    pub fn as_model(&self) -> &Model {
        match self {
            SharedModel::Owned(m) => m,
            SharedModel::Base(p) => p.model(),
        }
    }

    /// The composed model by value, cloning only in the [`SharedModel::Base`]
    /// case (the base stays shared with its other users).
    pub fn into_model(self) -> Model {
        match self {
            SharedModel::Owned(m) => m,
            SharedModel::Base(p) => p.model().clone(),
        }
    }

    /// Did the composition finish without ever copying the base?
    pub fn is_base(&self) -> bool {
        matches!(self, SharedModel::Base(_))
    }
}

/// [`ComposeResult`] for the zero-copy entry points: identical log and
/// mappings, with the model as a [`SharedModel`].
#[derive(Debug, Clone)]
pub struct SharedComposeResult {
    /// The composed model, possibly still the shared base.
    pub model: SharedModel,
    /// Decision log (duplicates, mappings, renames, conflicts).
    pub log: MergeLog,
    /// Final ID mappings, as in [`ComposeResult::mappings`].
    pub mappings: HashMap<String, String>,
}

impl SharedComposeResult {
    /// Materialise into a plain [`ComposeResult`], cloning the model only
    /// in the [`SharedModel::Base`] outcome.
    pub fn into_compose_result(self) -> ComposeResult {
        ComposeResult { model: self.model.into_model(), log: self.log, mappings: self.mappings }
    }
}

/// The SBMLCompose engine.
#[derive(Debug, Clone, Default)]
pub struct Composer {
    options: ComposeOptions,
}

impl Composer {
    /// Engine with the given options.
    pub fn new(options: ComposeOptions) -> Composer {
        Composer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &ComposeOptions {
        &self.options
    }

    /// Start an incremental composition session; push models into it and
    /// [`CompositionSession::finish`] when done. Equivalent to a left fold
    /// of [`Composer::compose`] but without re-cloning and re-indexing the
    /// accumulator at every step.
    pub fn session(&self) -> CompositionSession<'_> {
        CompositionSession::new(&self.options)
    }

    /// Compose two models (paper Fig. 4). The first model is the base; the
    /// result carries its id.
    pub fn compose(&self, a: &Model, b: &Model) -> ComposeResult {
        // Fig. 5 lines 1–2: if one model is empty, return the other.
        if a.is_empty() {
            return ComposeResult {
                model: b.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        if b.is_empty() {
            return ComposeResult {
                model: a.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }

        let mut session = CompositionSession::with_base(&self.options, a.clone());
        session.push_final(b);
        session.finish()
    }

    /// Analyse a model once, for reuse across any number of compositions:
    /// canonical content keys, per-kind indexes, evaluated initial values
    /// and the global id set are computed here instead of inside every
    /// [`Composer::compose`] call. Wrap the result in an
    /// [`Arc`] to share it between threads — see
    /// [`crate::BatchComposer`] for the corpus-scale fan-out.
    pub fn prepare(&self, model: &Model) -> PreparedModel {
        PreparedModel::new(model, &self.options)
    }

    /// As [`Composer::prepare`], taking the model by value (no clone).
    pub fn prepare_owned(&self, model: Model) -> PreparedModel {
        PreparedModel::from_model(model, &self.options)
    }

    /// Compose two prepared models: [`Composer::compose`] minus the
    /// per-call re-derivation of each side's analysis. Output is
    /// bit-for-bit identical to the raw path (property-tested); panics if
    /// either preparation's options
    /// [fingerprint](ComposeOptions::fingerprint) differs from this
    /// composer's.
    pub fn compose_prepared(&self, a: &PreparedModel, b: &PreparedModel) -> ComposeResult {
        a.check_options(&self.options);
        b.check_options(&self.options);
        // Fig. 5 lines 1–2: if one model is empty, return the other.
        if a.model().is_empty() {
            return ComposeResult {
                model: b.model().clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        if b.model().is_empty() {
            return ComposeResult {
                model: a.model().clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        let mut session = CompositionSession::with_prepared_base(&self.options, a);
        session.push_prepared_final(b);
        session.finish()
    }

    /// [`Composer::compose_prepared`] without copying the base up front:
    /// the session adopts `a` copy-on-write
    /// ([`CompositionSession::with_shared_base`]), so the per-pair fixed
    /// cost is a few `Arc` bumps and a composition in which every `b`
    /// component matches the base returns [`SharedModel::Base`] — the
    /// original `Arc`, zero model bytes cloned end to end. Output (model
    /// contents, log, mappings) is bit-for-bit identical to
    /// [`Composer::compose_prepared`] (the differential harness enforces
    /// this); panics on a fingerprint mismatch, as there.
    pub fn compose_shared(&self, a: Arc<PreparedModel>, b: &PreparedModel) -> SharedComposeResult {
        self.compose_shared_on(a, b, None)
    }

    /// [`Composer::compose_shared`] with an optional pre-spawned
    /// [`WorkerPool`](crate::WorkerPool) for the session's parallel stages.
    /// Without one, a session that needs parallelism spins up its own
    /// pool; batch and daemon callers pass a long-lived pool instead so
    /// thousands of compositions share one set of parked threads.
    pub fn compose_shared_on(
        &self,
        a: Arc<PreparedModel>,
        b: &PreparedModel,
        pool: Option<Arc<crate::pool::WorkerPool>>,
    ) -> SharedComposeResult {
        a.check_options(&self.options);
        b.check_options(&self.options);
        // Fig. 5 lines 1–2: if one model is empty, return the other.
        if a.model().is_empty() {
            return SharedComposeResult {
                model: SharedModel::Owned(b.model().clone()),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        if b.model().is_empty() {
            return SharedComposeResult {
                model: SharedModel::Base(a),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        let mut session = CompositionSession::with_shared_base(&self.options, a);
        if let Some(pool) = pool {
            session.set_pool(pool);
        }
        session.push_prepared_final(b);
        session.finish_shared()
    }
}

/// Compose a sequence of models left-to-right (library/incremental use).
///
/// Runs one [`CompositionSession`] over the whole slice: output is
/// identical to folding [`Composer::compose`] pairwise, but the
/// accumulator is built in place instead of being cloned and re-indexed
/// at every step. Callers holding owned models should prefer
/// [`compose_many_owned`], which also avoids cloning the first model.
pub fn compose_many(composer: &Composer, models: &[Model]) -> ComposeResult {
    let mut session = composer.session();
    for (i, model) in models.iter().enumerate() {
        if i + 1 == models.len() {
            session.push_final(model);
        } else {
            session.push(model);
        }
    }
    session.finish()
}

/// As [`compose_many`], but takes ownership: the first (base) model is
/// moved into the session instead of cloned, so composing a chain the
/// caller no longer needs allocates nothing for the accumulator seed.
pub fn compose_many_owned(
    composer: &Composer,
    models: impl IntoIterator<Item = Model>,
) -> ComposeResult {
    let mut session = composer.session();
    let mut models = models.into_iter().peekable();
    while let Some(model) = models.next() {
        if models.peek().is_none() {
            session.push_owned_final(model);
        } else {
            session.push_owned(model);
        }
    }
    session.finish()
}

/// As [`compose_many`], over prepared models: one session, every push
/// riding the precomputed analysis. Accepts any iterator of
/// `&PreparedModel`, so both `&[PreparedModel]` and the
/// `&[Arc<PreparedModel>]` shape used by batch workloads (via
/// `.iter().map(AsRef::as_ref)` or plain deref) work.
pub fn compose_many_prepared<'a>(
    composer: &Composer,
    models: impl IntoIterator<Item = &'a PreparedModel>,
) -> ComposeResult {
    let mut session = composer.session();
    let mut models = models.into_iter().peekable();
    while let Some(model) = models.next() {
        if models.peek().is_none() {
            session.push_prepared_final(model);
        } else {
            session.push_prepared(model);
        }
    }
    session.finish()
}

/// Reference chain composition: a left fold of pairwise
/// [`Composer::compose`] calls, cloning the accumulator at every step —
/// the paper's original O(n²) behaviour. [`compose_many`] must be
/// indistinguishable from this; it is kept (and exported) as the single
/// baseline that both the equivalence property tests and the
/// `chain_scaling` benchmark compare against.
pub fn compose_many_pairwise(composer: &Composer, models: &[Model]) -> ComposeResult {
    match models {
        [] => ComposeResult {
            model: Model::new("empty"),
            log: MergeLog::new(),
            mappings: HashMap::new(),
        },
        [single] => ComposeResult {
            model: single.clone(),
            log: MergeLog::new(),
            mappings: HashMap::new(),
        },
        [first, rest @ ..] => {
            let mut acc = ComposeResult {
                model: first.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
            for next in rest {
                let step = composer.compose(&acc.model, next);
                acc.model = step.model;
                acc.log.events.extend(step.log.events);
                acc.mappings.extend(step.mappings);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn model(i: usize) -> Model {
        ModelBuilder::new(format!("m{i}"))
            .compartment("cell", 1.0)
            .species(&format!("S{i}"), 1.0)
            .parameter("k", 0.5)
            .build()
    }

    #[test]
    fn compose_many_matches_seed_edge_cases() {
        let composer = Composer::default();
        // Empty slice → the canonical empty model.
        let empty = compose_many(&composer, &[]);
        assert_eq!(empty.model, Model::new("empty"));
        assert!(empty.log.events.is_empty());
        assert!(empty.mappings.is_empty());
        // Singleton → that model, untouched.
        let single = compose_many(&composer, &[model(1)]);
        assert_eq!(single.model, model(1));
        assert!(single.log.events.is_empty());
    }

    #[test]
    fn compose_many_owned_matches_borrowed() {
        let composer = Composer::default();
        let models: Vec<Model> = (0..4).map(model).collect();
        let borrowed = compose_many(&composer, &models);
        let owned = compose_many_owned(&composer, models);
        assert_eq!(owned.model, borrowed.model);
        assert_eq!(owned.log.events, borrowed.log.events);
        assert_eq!(owned.mappings, borrowed.mappings);
    }

    #[test]
    fn compose_many_owned_accepts_any_iterator() {
        let composer = Composer::default();
        let result = compose_many_owned(&composer, (0..3).map(model));
        assert_eq!(result.model.id, "m0");
        assert_eq!(result.model.species.len(), 3);
    }
}
