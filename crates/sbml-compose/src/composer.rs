//! The composition engine: paper Fig. 4 (pipeline) + Fig. 5 (generic merge).
//!
//! For every component kind, each component of the second model is looked
//! up in the first model's indexes:
//!
//! 1. **by id** — a hit means the models both claim that identifier. If the
//!    contents agree (under mappings, synonyms, math patterns, units) the
//!    component is a *duplicate* and merged silently; if they disagree, the
//!    first model wins and a *conflict* is logged (paper §3: "the software
//!    then includes the first component in the model and writes a warning
//!    to a log file"). Parameters are the exception: conflicting parameters
//!    are both kept, the incoming one renamed (paper §3: "all parameters in
//!    the original models have to be included in the composed model").
//! 2. **by content key** — a hit under a different id means the same entity
//!    travelled under two names; an **ID mapping** `b → a` is recorded and
//!    applied to all later comparisons and to every inserted reference
//!    (paper Fig. 5: "S2 := S1 (rename); add mapping").
//! 3. otherwise the component is **inserted**, renamed first if its id is
//!    already taken by an unrelated component.

use std::collections::{BTreeSet, HashMap};

use sbml_math::rewrite;
use sbml_model::{Model, Parameter, Reaction, Species};
use sbml_units::convert::{
    conversion_factor, deterministic_to_stochastic, stochastic_to_deterministic, ReactionOrder,
};
use sbml_units::UnitDefinition;

use crate::equality::MatchContext;
use crate::index::ComponentIndex;
use crate::initial_values::{collect, InitialValues};
use crate::log::{EventKind, MergeLog};
use crate::options::{ComposeOptions, SemanticsLevel};

/// The outcome of one composition.
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// The composed model (first model's id retained, per Fig. 5 line 25).
    pub model: Model,
    /// Decision log (duplicates, mappings, renames, conflicts).
    pub log: MergeLog,
    /// Final ID mappings: second-model id → composed-model id, for every
    /// component that was matched or renamed.
    pub mappings: HashMap<String, String>,
}

/// The SBMLCompose engine.
#[derive(Debug, Clone, Default)]
pub struct Composer {
    options: ComposeOptions,
}

impl Composer {
    /// Engine with the given options.
    pub fn new(options: ComposeOptions) -> Composer {
        Composer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &ComposeOptions {
        &self.options
    }

    /// Compose two models (paper Fig. 4). The first model is the base; the
    /// result carries its id.
    pub fn compose(&self, a: &Model, b: &Model) -> ComposeResult {
        // Fig. 5 lines 1–2: if one model is empty, return the other.
        if a.is_empty() {
            return ComposeResult {
                model: b.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }
        if b.is_empty() {
            return ComposeResult {
                model: a.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
        }

        let mut state = MergeState {
            merged: a.clone(),
            ctx: MatchContext::new(&self.options),
            log: MergeLog::new(),
            iv_a: if self.options.collect_initial_values {
                collect(a)
            } else {
                InitialValues::default()
            },
            iv_b: if self.options.collect_initial_values {
                collect(b)
            } else {
                InitialValues::default()
            },
            taken: a.global_ids(),
        };

        // Fig. 4 pipeline order.
        state.merge_function_definitions(b);
        state.merge_unit_definitions(b);
        state.merge_compartment_types(b);
        state.merge_species_types(b);
        state.merge_compartments(b);
        state.merge_species(b);
        state.merge_parameters(b);
        state.merge_initial_assignments(b);
        state.merge_rules(b);
        state.merge_constraints(b);
        state.merge_reactions(b);
        state.merge_events(b);

        ComposeResult { model: state.merged, log: state.log, mappings: state.ctx.mappings }
    }
}

/// Compose a sequence of models left-to-right (library/incremental use).
pub fn compose_many(composer: &Composer, models: &[Model]) -> ComposeResult {
    match models {
        [] => ComposeResult {
            model: Model::new("empty"),
            log: MergeLog::new(),
            mappings: HashMap::new(),
        },
        [single] => ComposeResult {
            model: single.clone(),
            log: MergeLog::new(),
            mappings: HashMap::new(),
        },
        [first, rest @ ..] => {
            let mut acc = ComposeResult {
                model: first.clone(),
                log: MergeLog::new(),
                mappings: HashMap::new(),
            };
            for next in rest {
                let step = composer.compose(&acc.model, next);
                acc.model = step.model;
                acc.log.events.extend(step.log.events);
                acc.mappings.extend(step.mappings);
            }
            acc
        }
    }
}

struct MergeState<'o> {
    merged: Model,
    ctx: MatchContext<'o>,
    log: MergeLog,
    iv_a: InitialValues,
    iv_b: InitialValues,
    taken: BTreeSet<String>,
}

impl MergeState<'_> {
    fn options(&self) -> &ComposeOptions {
        self.ctx.options
    }

    /// Fresh id based on `base`, registering it as taken.
    fn fresh_id(&mut self, base: &str) -> String {
        if !self.taken.contains(base) {
            self.taken.insert(base.to_owned());
            return base.to_owned();
        }
        for n in 1.. {
            let candidate = format!("{base}_{n}");
            if !self.taken.contains(&candidate) {
                self.taken.insert(candidate.clone());
                return candidate;
            }
        }
        unreachable!("id space exhausted")
    }

    /// Register an id as taken when inserting a B component verbatim, or
    /// rename it if an unrelated component holds it. Returns the final id
    /// and logs the rename.
    fn claim_id(&mut self, kind: &'static str, id: &str) -> String {
        if self.taken.contains(id) {
            let fresh = self.fresh_id(id);
            self.ctx.add_mapping(id, fresh.clone());
            self.log.push(
                EventKind::Renamed,
                kind,
                id,
                fresh.clone(),
                "id already taken by an unrelated component",
            );
            fresh
        } else {
            self.taken.insert(id.to_owned());
            id.to_owned()
        }
    }

    fn map_string(&self, s: &str) -> String {
        self.ctx.map_id(s).to_owned()
    }

    fn map_opt(&self, s: &Option<String>) -> Option<String> {
        s.as_ref().map(|v| self.map_string(v))
    }

    fn map_math(&self, math: &sbml_math::MathExpr) -> sbml_math::MathExpr {
        rewrite::rename(math, &self.ctx.mappings)
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 1: function definitions
    // ---------------------------------------------------------------
    fn merge_function_definitions(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_content = ComponentIndex::new(self.options().index);
        for (i, f) in self.merged.function_definitions.iter().enumerate() {
            by_id.insert(f.id.clone(), i);
            by_content.insert(self.ctx.function_key(f, false), i);
        }
        for f in &b.function_definitions {
            let content_key = self.ctx.function_key(f, true);
            if let Some(pos) = by_id.get(&f.id) {
                let ours = &self.merged.function_definitions[pos];
                if self.ctx.function_key(ours, false) == content_key {
                    self.log.push(
                        EventKind::Duplicate,
                        "functionDefinition",
                        &f.id,
                        &f.id,
                        "identical definition",
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "functionDefinition",
                        &f.id,
                        &f.id,
                        "same id, different body; first model wins",
                    );
                }
                continue;
            }
            if let Some(pos) = by_content.get(&content_key) {
                let target = self.merged.function_definitions[pos].id.clone();
                self.ctx.add_mapping(&f.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "functionDefinition",
                    &f.id,
                    target,
                    "equivalent body (α-renaming/commutativity)",
                );
                continue;
            }
            let final_id = self.claim_id("functionDefinition", &f.id);
            let mut nf = f.clone();
            nf.id = final_id.clone();
            nf.body = self.map_math(&f.body);
            let pos = self.merged.function_definitions.len();
            by_id.insert(final_id.clone(), pos);
            by_content.insert(content_key, pos);
            self.merged.function_definitions.push(nf);
            self.log.push(EventKind::Added, "functionDefinition", &f.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 2: unit definitions
    // ---------------------------------------------------------------
    fn merge_unit_definitions(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_content = ComponentIndex::new(self.options().index);
        for (i, u) in self.merged.unit_definitions.iter().enumerate() {
            by_id.insert(u.id.clone(), i);
            by_content.insert(self.ctx.unit_key(u), i);
        }
        for u in &b.unit_definitions {
            let content_key = self.ctx.unit_key(u);
            if let Some(pos) = by_id.get(&u.id) {
                let ours = &self.merged.unit_definitions[pos];
                if self.ctx.unit_key(ours) == content_key {
                    self.log.push(
                        EventKind::Duplicate,
                        "unitDefinition",
                        &u.id,
                        &u.id,
                        "same units",
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "unitDefinition",
                        &u.id,
                        &u.id,
                        format!(
                            "same id, different units ({} vs {}); first model wins",
                            ours.signature(),
                            u.signature()
                        ),
                    );
                }
                continue;
            }
            if let Some(pos) = by_content.get(&content_key) {
                let target = self.merged.unit_definitions[pos].id.clone();
                self.ctx.add_mapping(&u.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "unitDefinition",
                    &u.id,
                    target,
                    "equivalent unit signature",
                );
                continue;
            }
            let final_id = self.claim_id("unitDefinition", &u.id);
            let mut nu = u.clone();
            nu.id = final_id.clone();
            let pos = self.merged.unit_definitions.len();
            by_id.insert(final_id.clone(), pos);
            by_content.insert(content_key, pos);
            self.merged.unit_definitions.push(nu);
            self.log.push(EventKind::Added, "unitDefinition", &u.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 lines 3–4: compartment types, species types
    // ---------------------------------------------------------------
    fn merge_compartment_types(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_name = ComponentIndex::new(self.options().index);
        for (i, t) in self.merged.compartment_types.iter().enumerate() {
            by_id.insert(t.id.clone(), i);
            by_name.insert(self.ctx.name_key(&t.id, t.name.as_deref()), i);
        }
        for t in &b.compartment_types {
            let name_key = self.ctx.name_key(&t.id, t.name.as_deref());
            if by_id.get(&t.id).is_some() {
                self.log.push(EventKind::Duplicate, "compartmentType", &t.id, &t.id, "same id");
                continue;
            }
            if let Some(pos) = by_name.get(&name_key) {
                let target = self.merged.compartment_types[pos].id.clone();
                self.ctx.add_mapping(&t.id, &target);
                self.log.push(EventKind::Mapped, "compartmentType", &t.id, target, "synonymous name");
                continue;
            }
            let final_id = self.claim_id("compartmentType", &t.id);
            let mut nt = t.clone();
            nt.id = final_id.clone();
            let pos = self.merged.compartment_types.len();
            by_id.insert(final_id.clone(), pos);
            by_name.insert(name_key, pos);
            self.merged.compartment_types.push(nt);
            self.log.push(EventKind::Added, "compartmentType", &t.id, final_id, "new");
        }
    }

    fn merge_species_types(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_name = ComponentIndex::new(self.options().index);
        for (i, t) in self.merged.species_types.iter().enumerate() {
            by_id.insert(t.id.clone(), i);
            by_name.insert(self.ctx.name_key(&t.id, t.name.as_deref()), i);
        }
        for t in &b.species_types {
            let name_key = self.ctx.name_key(&t.id, t.name.as_deref());
            if by_id.get(&t.id).is_some() {
                self.log.push(EventKind::Duplicate, "speciesType", &t.id, &t.id, "same id");
                continue;
            }
            if let Some(pos) = by_name.get(&name_key) {
                let target = self.merged.species_types[pos].id.clone();
                self.ctx.add_mapping(&t.id, &target);
                self.log.push(EventKind::Mapped, "speciesType", &t.id, target, "synonymous name");
                continue;
            }
            let final_id = self.claim_id("speciesType", &t.id);
            let mut nt = t.clone();
            nt.id = final_id.clone();
            let pos = self.merged.species_types.len();
            by_id.insert(final_id.clone(), pos);
            by_name.insert(name_key, pos);
            self.merged.species_types.push(nt);
            self.log.push(EventKind::Added, "speciesType", &t.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 5: compartments
    // ---------------------------------------------------------------
    fn merge_compartments(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_name = ComponentIndex::new(self.options().index);
        for (i, c) in self.merged.compartments.iter().enumerate() {
            by_id.insert(c.id.clone(), i);
            by_name.insert(self.ctx.name_key(&c.id, c.name.as_deref()), i);
        }
        for c in &b.compartments {
            let name_key = self.ctx.name_key(&c.id, c.name.as_deref());
            let matched = by_id.get(&c.id).map(|pos| (pos, true)).or_else(|| {
                by_name.get(&name_key).map(|pos| (pos, false))
            });
            if let Some((pos, by_identifier)) = matched {
                let ours = &self.merged.compartments[pos];
                let target = ours.id.clone();
                let sizes_agree = self.compartment_sizes_agree(ours, c, b);
                if !by_identifier {
                    self.ctx.add_mapping(&c.id, &target);
                }
                if sizes_agree && ours.spatial_dimensions == c.spatial_dimensions {
                    self.log.push(
                        if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                        "compartment",
                        &c.id,
                        target,
                        "same compartment",
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "compartment",
                        &c.id,
                        target,
                        format!(
                            "attributes differ (size {:?} vs {:?}); first model wins",
                            ours.size, c.size
                        ),
                    );
                }
                continue;
            }
            let final_id = self.claim_id("compartment", &c.id);
            let mut nc = c.clone();
            nc.id = final_id.clone();
            nc.compartment_type = self.map_opt(&c.compartment_type);
            nc.units = self.map_opt(&c.units);
            nc.outside = self.map_opt(&c.outside);
            let pos = self.merged.compartments.len();
            by_id.insert(final_id.clone(), pos);
            by_name.insert(name_key, pos);
            self.merged.compartments.push(nc);
            self.log.push(EventKind::Added, "compartment", &c.id, final_id, "new");
        }
    }

    fn compartment_sizes_agree(
        &self,
        ours: &sbml_model::Compartment,
        theirs: &sbml_model::Compartment,
        b: &Model,
    ) -> bool {
        let va = ours.size.or_else(|| self.iv_a.get(&ours.id));
        let vb = theirs.size.or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        // Try unit conversion (e.g. litres vs millilitres).
        let (Some(va), Some(vb)) = (va, vb) else { return false };
        let (Some(ua), Some(ub)) = (
            resolve_units(&self.merged, ours.units.as_deref()),
            resolve_units(b, theirs.units.as_deref()),
        ) else {
            return false;
        };
        match conversion_factor(&ub, &ua) {
            Some(factor) => self.ctx.values_agree(Some(va), Some(vb * factor)),
            None => false,
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 6: species
    // ---------------------------------------------------------------
    fn merge_species(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_name = ComponentIndex::new(self.options().index);
        for (i, s) in self.merged.species.iter().enumerate() {
            by_id.insert(s.id.clone(), i);
            by_name.insert(self.ctx.name_key(&s.id, s.name.as_deref()), i);
        }
        for s in &b.species {
            let name_key = self.ctx.name_key(&s.id, s.name.as_deref());
            let matched = by_id
                .get(&s.id)
                .map(|pos| (pos, true))
                .or_else(|| by_name.get(&name_key).map(|pos| (pos, false)));
            if let Some((pos, by_identifier)) = matched {
                let ours = &self.merged.species[pos];
                let target = ours.id.clone();
                let compartments_match =
                    ours.compartment == self.map_string(&s.compartment);
                let values_ok = self.species_values_agree(ours, s, b);
                if !by_identifier {
                    self.ctx.add_mapping(&s.id, &target);
                }
                if compartments_match && values_ok {
                    self.log.push(
                        if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                        "species",
                        &s.id,
                        target,
                        "same species",
                    );
                } else {
                    let reason = if !compartments_match {
                        "compartments differ"
                    } else {
                        "initial values differ"
                    };
                    self.log.push(
                        EventKind::Conflict,
                        "species",
                        &s.id,
                        target,
                        format!("{reason}; first model wins"),
                    );
                }
                continue;
            }
            let final_id = self.claim_id("species", &s.id);
            let mut ns = s.clone();
            ns.id = final_id.clone();
            ns.compartment = self.map_string(&s.compartment);
            ns.species_type = self.map_opt(&s.species_type);
            ns.substance_units = self.map_opt(&s.substance_units);
            let pos = self.merged.species.len();
            by_id.insert(final_id.clone(), pos);
            by_name.insert(name_key, pos);
            self.merged.species.push(ns);
            self.log.push(EventKind::Added, "species", &s.id, final_id, "new");
        }
    }

    /// Initial-value agreement with Fig. 6 unit awareness:
    /// direct comparison → substance-unit conversion → amount vs
    /// concentration reconciliation through the compartment volume.
    fn species_values_agree(&self, ours: &Species, theirs: &Species, b: &Model) -> bool {
        let va = ours.initial_value().or_else(|| self.iv_a.get(&ours.id));
        let vb = theirs.initial_value().or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        let (Some(va), Some(vb)) = (va, vb) else { return false };

        // Substance-unit conversion (e.g. mole vs millimole).
        if let (Some(ua), Some(ub)) = (
            resolve_units(&self.merged, ours.substance_units.as_deref()),
            resolve_units(b, theirs.substance_units.as_deref()),
        ) {
            if let Some(factor) = conversion_factor(&ub, &ua) {
                if self.ctx.values_agree(Some(va), Some(vb * factor)) {
                    return true;
                }
            }
        }

        // Amount vs concentration: amount = concentration × volume.
        let vol_a = self
            .merged
            .compartment_by_id(&ours.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_a.get(&ours.compartment));
        let vol_b = b
            .compartment_by_id(&theirs.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_b.get(&theirs.compartment));
        if let (Some(amount), Some(conc), Some(vol)) = (ours.initial_amount, theirs.initial_concentration, vol_b) {
            if self.ctx.values_agree(Some(amount), Some(conc * vol)) {
                return true;
            }
        }
        match (ours.initial_concentration, theirs.initial_amount, vol_a) {
            (Some(conc), Some(amount), Some(vol)) if vol != 0.0
                && self.ctx.values_agree(Some(conc), Some(amount / vol)) => {
                    return true;
                }
            _ => {}
        }
        false
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 7: parameters (always kept; renamed on clash — §3)
    // ---------------------------------------------------------------
    fn merge_parameters(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        for (i, p) in self.merged.parameters.iter().enumerate() {
            by_id.insert(p.id.clone(), i);
        }
        for p in &b.parameters {
            if let Some(pos) = by_id.get(&p.id) {
                let ours = self.merged.parameters[pos].clone();
                let ours_value = ours.value;
                if self.parameter_values_agree(&ours, p, b) {
                    self.log.push(
                        EventKind::Duplicate,
                        "parameter",
                        &p.id,
                        &p.id,
                        "same id and value",
                    );
                } else {
                    // Keep both: rename the incoming one (paper §3).
                    let fresh = self.fresh_id(&p.id);
                    self.ctx.add_mapping(&p.id, &fresh);
                    let mut np = p.clone();
                    np.id = fresh.clone();
                    np.units = self.map_opt(&p.units);
                    self.merged.parameters.push(np);
                    self.log.push(
                        EventKind::Conflict,
                        "parameter",
                        &p.id,
                        fresh.clone(),
                        format!(
                            "values differ ({:?} vs {:?}); both kept, incoming renamed",
                            ours_value, p.value
                        ),
                    );
                    self.log.push(
                        EventKind::Renamed,
                        "parameter",
                        &p.id,
                        fresh,
                        "renamed to avoid conflict",
                    );
                }
                continue;
            }
            // Different id: always include (no content matching for
            // parameters — the paper: "there is no way of confirming
            // whether they are intended to be equal or not").
            let final_id = self.claim_id("parameter", &p.id);
            let mut np = p.clone();
            np.id = final_id.clone();
            np.units = self.map_opt(&p.units);
            let pos = self.merged.parameters.len();
            by_id.insert(final_id.clone(), pos);
            self.merged.parameters.push(np);
            self.log.push(EventKind::Added, "parameter", &p.id, final_id, "new");
        }
    }

    fn parameter_values_agree(&self, ours: &Parameter, theirs: &Parameter, b: &Model) -> bool {
        let va = ours.value.or_else(|| self.iv_a.get(&ours.id));
        let vb = theirs.value.or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        let (Some(va), Some(vb)) = (va, vb) else { return false };
        if let (Some(ua), Some(ub)) = (
            resolve_units(&self.merged, ours.units.as_deref()),
            resolve_units(b, theirs.units.as_deref()),
        ) {
            if let Some(factor) = conversion_factor(&ub, &ua) {
                return self.ctx.values_agree(Some(va), Some(vb * factor));
            }
        }
        false
    }

    // ---------------------------------------------------------------
    // Initial assignments (collected before merge; conflict-checked here)
    // ---------------------------------------------------------------
    fn merge_initial_assignments(&mut self, b: &Model) {
        let mut by_symbol = ComponentIndex::new(self.options().index);
        for (i, ia) in self.merged.initial_assignments.iter().enumerate() {
            by_symbol.insert(ia.symbol.clone(), i);
        }
        for ia in &b.initial_assignments {
            let symbol = self.map_string(&ia.symbol);
            if let Some(pos) = by_symbol.get(&symbol) {
                let ours = &self.merged.initial_assignments[pos];
                let math_equal =
                    self.ctx.math_key(&ours.math, false) == self.ctx.math_key(&ia.math, true);
                // The paper's improvement over semanticSBML: evaluate the
                // maths and compare values when structure differs.
                let values_equal = self.options().collect_initial_values
                    && self
                        .ctx
                        .values_agree(self.iv_a.get(&ours.symbol), self.iv_b.get(&ia.symbol));
                if math_equal || values_equal {
                    self.log.push(
                        EventKind::Duplicate,
                        "initialAssignment",
                        &ia.symbol,
                        symbol,
                        if math_equal { "same maths" } else { "same evaluated value" },
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "initialAssignment",
                        &ia.symbol,
                        symbol,
                        "different initial maths for one symbol; first model wins",
                    );
                }
                continue;
            }
            let mut nia = ia.clone();
            nia.symbol = symbol.clone();
            nia.math = self.map_math(&ia.math);
            by_symbol.insert(symbol.clone(), self.merged.initial_assignments.len());
            self.merged.initial_assignments.push(nia);
            self.log.push(EventKind::Added, "initialAssignment", &ia.symbol, symbol, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 8: rules
    // ---------------------------------------------------------------
    fn merge_rules(&mut self, b: &Model) {
        let mut by_content = ComponentIndex::new(self.options().index);
        let mut by_variable = ComponentIndex::new(self.options().index);
        for (i, r) in self.merged.rules.iter().enumerate() {
            by_content.insert(self.ctx.rule_key(r, false), i);
            if let Some(v) = r.variable() {
                by_variable.insert(v.to_owned(), i);
            }
        }
        for r in &b.rules {
            let content_key = self.ctx.rule_key(r, true);
            let label = r.variable().unwrap_or("<algebraic>").to_owned();
            if by_content.get(&content_key).is_some() {
                self.log.push(EventKind::Duplicate, "rule", &label, &label, "identical rule");
                continue;
            }
            if let Some(v) = r.variable() {
                let mapped_v = self.map_string(v);
                if by_variable.get(&mapped_v).is_some() {
                    self.log.push(
                        EventKind::Conflict,
                        "rule",
                        &label,
                        mapped_v,
                        "variable already ruled with different maths; first model wins",
                    );
                    continue;
                }
            }
            let mut nr = r.clone();
            match &mut nr {
                sbml_model::Rule::Algebraic { math } => *math = self.map_math(math),
                sbml_model::Rule::Assignment { variable, math }
                | sbml_model::Rule::Rate { variable, math } => {
                    *variable = self.map_string(variable);
                    *math = self.map_math(math);
                }
            }
            let pos = self.merged.rules.len();
            by_content.insert(content_key, pos);
            if let Some(v) = nr.variable() {
                by_variable.insert(v.to_owned(), pos);
            }
            self.merged.rules.push(nr);
            self.log.push(EventKind::Added, "rule", &label, &label, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 9: constraints
    // ---------------------------------------------------------------
    fn merge_constraints(&mut self, b: &Model) {
        let mut by_content = ComponentIndex::new(self.options().index);
        for (i, c) in self.merged.constraints.iter().enumerate() {
            by_content.insert(self.ctx.constraint_key(&c.math, false), i);
        }
        for (idx, c) in b.constraints.iter().enumerate() {
            let key = self.ctx.constraint_key(&c.math, true);
            let label = format!("#{idx}");
            if by_content.get(&key).is_some() {
                self.log.push(EventKind::Duplicate, "constraint", &label, &label, "identical");
                continue;
            }
            let mut nc = c.clone();
            nc.math = self.map_math(&c.math);
            by_content.insert(key, self.merged.constraints.len());
            self.merged.constraints.push(nc);
            self.log.push(EventKind::Added, "constraint", &label, &label, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 10: reactions (the most involved kind)
    // ---------------------------------------------------------------
    fn merge_reactions(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_content = ComponentIndex::new(self.options().index);
        // Pattern cache ablation: when disabled, keys are recomputed per
        // lookup through a linear rescan instead of being stored.
        let cache = self.options().cache_patterns;
        for (i, r) in self.merged.reactions.iter().enumerate() {
            by_id.insert(r.id.clone(), i);
            if cache {
                by_content.insert(self.ctx.reaction_key(r, false), i);
            }
        }
        for r in &b.reactions {
            let content_key = self.ctx.reaction_key(r, true);
            if let Some(pos) = by_id.get(&r.id) {
                let ours_key = self.ctx.reaction_key(&self.merged.reactions[pos], false);
                if ours_key == content_key {
                    self.reconcile_reaction_locals(pos, r, b);
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "reaction",
                        &r.id,
                        &r.id,
                        "same id, different reaction; first model wins",
                    );
                }
                continue;
            }
            let content_pos = if cache {
                by_content.get(&content_key)
            } else {
                // no cache: rescan and recompute every time
                self.merged
                    .reactions
                    .iter()
                    .position(|ours| self.ctx.reaction_key(ours, false) == content_key)
            };
            if let Some(pos) = content_pos {
                let target = self.merged.reactions[pos].id.clone();
                self.ctx.add_mapping(&r.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "reaction",
                    &r.id,
                    target,
                    "same participants and kinetics",
                );
                self.reconcile_reaction_locals(pos, r, b);
                continue;
            }
            let final_id = self.claim_id("reaction", &r.id);
            let mut nr = r.clone();
            nr.id = final_id.clone();
            for sr in nr.reactants.iter_mut().chain(&mut nr.products).chain(&mut nr.modifiers) {
                sr.species = self.map_string(&sr.species);
            }
            if let Some(kl) = &mut nr.kinetic_law {
                let locals: BTreeSet<&str> =
                    kl.parameters.iter().map(|p| p.id.as_str()).collect();
                let mut scoped = self.ctx.mappings.clone();
                scoped.retain(|k, _| !locals.contains(k.as_str()));
                kl.math = rewrite::rename(&kl.math, &scoped);
            }
            let pos = self.merged.reactions.len();
            by_id.insert(final_id.clone(), pos);
            if cache {
                by_content.insert(content_key, pos);
            }
            self.merged.reactions.push(nr);
            self.log.push(EventKind::Added, "reaction", &r.id, final_id, "new");
        }
    }

    /// Matched reactions may still disagree on local rate-constant values;
    /// the paper resolves "conflicts in rate constants and stoichiometry
    /// within reactions" via Fig. 6 conversions before declaring a conflict.
    fn reconcile_reaction_locals(&mut self, merged_pos: usize, theirs: &Reaction, b: &Model) {
        let volume = self.reaction_volume(theirs, b).unwrap_or(1.0);
        let order = ReactionOrder::from_reactant_count(theirs.reactant_molecule_count());
        let ours_law = self.merged.reactions[merged_pos].kinetic_law.clone();
        let (Some(ours_kl), Some(theirs_kl)) = (ours_law, &theirs.kinetic_law) else {
            self.log.push(
                EventKind::Duplicate,
                "reaction",
                &theirs.id,
                self.merged.reactions[merged_pos].id.clone(),
                "same reaction",
            );
            return;
        };
        let mut all_ok = true;
        for tp in &theirs_kl.parameters {
            let Some(op) = ours_kl.parameters.iter().find(|p| p.id == tp.id) else {
                continue;
            };
            if self.ctx.values_agree(op.value, tp.value) {
                continue;
            }
            // Try plain unit conversion between the declared units.
            let mut reconciled = false;
            if self.options().semantics == SemanticsLevel::Heavy {
                if let (Some(ua), Some(ub), Some(va), Some(vb)) = (
                    resolve_units(&self.merged, op.units.as_deref()),
                    resolve_units(b, tp.units.as_deref()),
                    op.value,
                    tp.value,
                ) {
                    if let Some(factor) = conversion_factor(&ub, &ua) {
                        reconciled = self.ctx.values_agree(Some(va), Some(vb * factor));
                    }
                }
                // Fig. 6 deterministic ↔ stochastic rate constant bridge.
                if !reconciled {
                    if let (Some(order), Some(va), Some(vb)) = (order, op.value, tp.value) {
                        let as_stoch = deterministic_to_stochastic(vb, order, volume);
                        let as_det = stochastic_to_deterministic(vb, order, volume);
                        reconciled = self.ctx.values_agree(Some(va), Some(as_stoch))
                            || self.ctx.values_agree(Some(va), Some(as_det));
                    }
                }
            }
            let final_id = self.merged.reactions[merged_pos].id.clone();
            if reconciled {
                self.log.push(
                    EventKind::Warning,
                    "reaction",
                    &theirs.id,
                    final_id,
                    format!(
                        "rate constant '{}' agrees after unit conversion (paper Fig. 6)",
                        tp.id
                    ),
                );
            } else {
                all_ok = false;
                self.log.push(
                    EventKind::Conflict,
                    "reaction",
                    &theirs.id,
                    final_id,
                    format!(
                        "local parameter '{}' differs ({:?} vs {:?}); first model wins",
                        tp.id, op.value, tp.value
                    ),
                );
            }
        }
        if all_ok {
            self.log.push(
                EventKind::Duplicate,
                "reaction",
                &theirs.id,
                self.merged.reactions[merged_pos].id.clone(),
                "same reaction",
            );
        }
    }

    /// The volume relevant to a reaction of the second model: the size of
    /// the compartment of its first reactant (or product).
    fn reaction_volume(&self, r: &Reaction, b: &Model) -> Option<f64> {
        let species_id = r
            .reactants
            .first()
            .or_else(|| r.products.first())
            .map(|sr| sr.species.as_str())?;
        let species = b.species_by_id(species_id)?;
        b.compartment_by_id(&species.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_b.get(&species.compartment))
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 11: events
    // ---------------------------------------------------------------
    fn merge_events(&mut self, b: &Model) {
        let mut by_id = ComponentIndex::new(self.options().index);
        let mut by_content = ComponentIndex::new(self.options().index);
        for (i, ev) in self.merged.events.iter().enumerate() {
            if let Some(id) = &ev.id {
                by_id.insert(id.clone(), i);
            }
            by_content.insert(self.ctx.event_key(ev, false), i);
        }
        for (idx, ev) in b.events.iter().enumerate() {
            let label = ev.id.clone().unwrap_or_else(|| format!("#{idx}"));
            let content_key = self.ctx.event_key(ev, true);
            if let Some(id) = &ev.id {
                if let Some(pos) = by_id.get(id) {
                    let ours_key = self.ctx.event_key(&self.merged.events[pos], false);
                    if ours_key == content_key {
                        self.log.push(EventKind::Duplicate, "event", &label, id, "identical");
                    } else {
                        self.log.push(
                            EventKind::Conflict,
                            "event",
                            &label,
                            id,
                            "same id, different event; first model wins",
                        );
                    }
                    continue;
                }
            }
            if let Some(pos) = by_content.get(&content_key) {
                let target =
                    self.merged.events[pos].id.clone().unwrap_or_else(|| format!("@{pos}"));
                if let Some(id) = &ev.id {
                    if target != format!("@{pos}") {
                        self.ctx.add_mapping(id, &target);
                    }
                }
                self.log.push(EventKind::Mapped, "event", &label, target, "identical behaviour");
                continue;
            }
            let mut nev = ev.clone();
            if let Some(id) = &ev.id {
                nev.id = Some(self.claim_id("event", id));
            }
            nev.trigger = self.map_math(&ev.trigger);
            nev.delay = ev.delay.as_ref().map(|d| self.map_math(d));
            for a in &mut nev.assignments {
                a.variable = self.map_string(&a.variable);
                a.math = self.map_math(&a.math);
            }
            let pos = self.merged.events.len();
            if let Some(id) = &nev.id {
                by_id.insert(id.clone(), pos);
            }
            by_content.insert(content_key, pos);
            let final_label = nev.id.clone().unwrap_or_else(|| label.clone());
            self.merged.events.push(nev);
            self.log.push(EventKind::Added, "event", &label, final_label, "new");
        }
    }
}

/// Resolve a units reference against a model's unit definitions, falling
/// back to SBML builtins.
fn resolve_units(model: &Model, units: Option<&str>) -> Option<UnitDefinition> {
    let id = units?;
    model
        .unit_definitions
        .iter()
        .find(|u| u.id == id)
        .cloned()
        .or_else(|| sbml_units::definition::builtin(id))
}
