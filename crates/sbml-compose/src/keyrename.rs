//! Incremental renaming of **cached canonical keys** under ID mappings.
//!
//! A conflict-heavy push records mappings early (species unified by name,
//! parameters renamed on value conflicts), after which every later
//! component whose formula references a mapped id fails the
//! `refs_clean` fast path — and historically had its content key rebuilt
//! from scratch: a full re-canonicalisation of the formula, including
//! re-sorting commutative operand groups the rename never touched.
//!
//! Under heavy semantics the math sections of cached keys *are* canonical
//! [`Pattern`] text, so the mapped key can instead be derived from the
//! cached unmapped key by [`Pattern::rename_resolved`] — rewriting
//! identifier leaves in place and re-sorting only the dirty groups — plus
//! a direct rename of the key's id sections (rule variables, reaction
//! participants, event assignment variables). The result is byte-identical
//! to the full recompute (the rename ≡ rebuild property is enforced both
//! in `sbml-math` and at this layer), at O(touched leaves) instead of
//! O(formula).
//!
//! Every function here returns `Option`: `None` means "fall back to the
//! full recompute" (non-heavy semantics is never routed here; an
//! unexpected key shape falls back rather than guessing).

use sbml_math::pattern::{rename_canonical_text, split_canonical_top_level};
use sbml_math::rewrite::Resolver;

/// Append the renamed pattern section `text` (canonical heavy-semantics
/// math) to `out` — borrowed straight through when no leaf resolves.
fn push_pattern<R: Resolver + ?Sized>(out: &mut String, text: &str, maps: &R) {
    match rename_canonical_text(text, maps) {
        Some(renamed) => out.push_str(&renamed),
        None => out.push_str(text),
    }
}

fn map_id<'a, R: Resolver + ?Sized>(maps: &'a R, id: &'a str) -> &'a str {
    maps.resolve(id).unwrap_or(id)
}

/// `fn:{arity}:{pattern}` — function-definition key.
pub(crate) fn function_key<R: Resolver + ?Sized>(cached: &str, maps: &R) -> Option<String> {
    let rest = cached.strip_prefix("fn:")?;
    let colon = rest.find(':')?;
    let (arity, pattern) = (&rest[..colon], &rest[colon + 1..]);
    let mut out = String::with_capacity(cached.len() + 16);
    out.push_str("fn:");
    out.push_str(arity);
    out.push(':');
    push_pattern(&mut out, pattern, maps);
    Some(out)
}

/// `alg:{p}` / `asg:{var}:{p}` / `rate:{var}:{p}` — rule key.
pub(crate) fn rule_key<R: Resolver + ?Sized>(cached: &str, maps: &R) -> Option<String> {
    let mut out = String::with_capacity(cached.len() + 16);
    if let Some(pattern) = cached.strip_prefix("alg:") {
        out.push_str("alg:");
        push_pattern(&mut out, pattern, maps);
        return Some(out);
    }
    let (tag, rest) = if let Some(rest) = cached.strip_prefix("asg:") {
        ("asg", rest)
    } else if let Some(rest) = cached.strip_prefix("rate:") {
        ("rate", rest)
    } else {
        return None;
    };
    // SBML ids cannot contain `:`, so the variable ends at the first one.
    let colon = rest.find(':')?;
    let (var, pattern) = (&rest[..colon], &rest[colon + 1..]);
    out.push_str(tag);
    out.push(':');
    out.push_str(map_id(maps, var));
    out.push(':');
    push_pattern(&mut out, pattern, maps);
    Some(out)
}

/// `con:{pattern}` — constraint key.
pub(crate) fn constraint_key<R: Resolver + ?Sized>(cached: &str, maps: &R) -> Option<String> {
    let pattern = cached.strip_prefix("con:")?;
    let mut out = String::with_capacity(cached.len() + 16);
    out.push_str("con:");
    push_pattern(&mut out, pattern, maps);
    Some(out)
}

/// One `R[..]`/`P[..]`/`M[..]` participant section: sorted `id*stoich`
/// items appended to `out`. Renames the id of each item and re-sorts only
/// when something changed (an untouched section is already in sorted
/// order). Returns `None` on an unexpected shape (caller falls back).
fn push_participants<R: Resolver + ?Sized>(
    out: &mut String,
    items: &str,
    maps: &R,
) -> Option<()> {
    if items.is_empty() {
        return Some(());
    }
    let mut changed = false;
    let mut parts: Vec<std::borrow::Cow<'_, str>> = Vec::new();
    for item in items.split(',') {
        let star = item.find('*')?;
        let (id, stoich) = (&item[..star], &item[star..]);
        match maps.resolve(id) {
            Some(new) => {
                changed = true;
                parts.push(std::borrow::Cow::Owned(format!("{new}{stoich}")));
            }
            None => parts.push(std::borrow::Cow::Borrowed(item)),
        }
    }
    if changed {
        // The canonical key sorts item *strings*; reproduce that order.
        parts.sort_unstable();
    }
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(part);
    }
    Some(())
}

/// `rxn:R[..];P[..];M[..];K[math]:rev=bool` — reaction key. The math
/// section boundaries use the same positional markers as
/// [`crate::passes::key_math_section`]: first `;K[`, last `]:rev=`.
pub(crate) fn reaction_key<R: Resolver + ?Sized>(cached: &str, maps: &R) -> Option<String> {
    let body = cached.strip_prefix("rxn:")?;
    let k_start = body.find(";K[")?;
    let k_end = body.rfind("]:rev=")?;
    if k_end < k_start {
        return None;
    }
    let participants = &body[..k_start];
    let math = &body[k_start + 3..k_end];
    let rev = &body[k_end + 6..];

    let mut out = String::with_capacity(cached.len() + 16);
    out.push_str("rxn:");
    let mut sections = 0usize;
    for section in participants.split(';') {
        let tag = section.get(..1)?;
        if !matches!(tag, "R" | "P" | "M")
            || !section[1..].starts_with('[')
            || !section.ends_with(']')
        {
            return None;
        }
        if sections > 0 {
            out.push(';');
        }
        sections += 1;
        out.push_str(tag);
        out.push('[');
        push_participants(&mut out, &section[2..section.len() - 1], maps)?;
        out.push(']');
    }
    if sections != 3 {
        return None;
    }
    out.push_str(";K[");
    if math == "-" {
        out.push('-');
    } else {
        push_pattern(&mut out, math, maps);
    }
    out.push_str("]:rev=");
    out.push_str(rev);
    Some(out)
}

/// Rename only the math section of a cached reaction key — the
/// cheapest-first id-hit comparison wants just that slice.
pub(crate) fn reaction_math_section<R: Resolver + ?Sized>(
    cached: &str,
    maps: &R,
) -> Option<String> {
    let section = crate::passes::key_math_section(cached)?;
    Some(match rename_canonical_text(section, maps) {
        Some(renamed) => renamed,
        None => section.to_owned(),
    })
}

/// `ev:{trigger}|{delay}|{var}={math};{var}={math}…` — event key. The
/// trigger/delay separators are `|` at depth 0 (piecewise `[v|c]` pieces
/// sit inside brackets); assignments separate on depth-0 `;` and bind
/// variable to math at the first `=` (pattern text contains neither `;`
/// nor `=` — equality is the `eq(…)` operator).
pub(crate) fn event_key<R: Resolver + ?Sized>(cached: &str, maps: &R) -> Option<String> {
    let body = cached.strip_prefix("ev:")?;
    let parts: Vec<&str> = split_canonical_top_level(body, b'|').collect();
    if parts.len() != 3 {
        return None;
    }
    let mut out = String::with_capacity(cached.len() + 16);
    out.push_str("ev:");
    push_pattern(&mut out, parts[0], maps);
    out.push('|');
    if !parts[1].is_empty() {
        push_pattern(&mut out, parts[1], maps);
    }
    out.push('|');
    if !parts[2].is_empty() {
        for (i, assignment) in split_canonical_top_level(parts[2], b';').enumerate() {
            if i > 0 {
                out.push(';');
            }
            let eq = assignment.find('=')?;
            let (var, math) = (&assignment[..eq], &assignment[eq + 1..]);
            out.push_str(map_id(maps, var));
            out.push('=');
            push_pattern(&mut out, math, maps);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equality::{self, MappingTable};
    use crate::options::ComposeOptions;
    use sbml_math::infix;
    use sbml_model::{Event, EventAssignment, FunctionDefinition, Reaction, Rule, SpeciesReference};

    fn maps(pairs: &[(&str, &str)]) -> MappingTable {
        let mut m = MappingTable::default();
        for (from, to) in pairs {
            m.insert((*from).to_owned(), (*to).to_owned());
        }
        m
    }

    #[test]
    fn function_keys_rename_like_rebuild() {
        let options = ComposeOptions::default();
        let f = FunctionDefinition::new(
            "f",
            vec!["x".into()],
            infix::parse("x * k1 + glc").unwrap(),
        );
        let m = maps(&[("k1", "kf"), ("glc", "glucose")]);
        let cached = equality::function_key(&options, &f, &equality::NoMap);
        let rebuilt = equality::function_key(&options, &f, &m);
        assert_eq!(function_key(&cached, &m).unwrap(), rebuilt);
    }

    #[test]
    fn rule_keys_rename_like_rebuild() {
        let options = ComposeOptions::default();
        let m = maps(&[("a", "z9"), ("v", "w")]);
        for rule in [
            Rule::Algebraic { math: infix::parse("a + b - 5").unwrap() },
            Rule::Assignment { variable: "v".into(), math: infix::parse("a*b").unwrap() },
            Rule::Rate { variable: "v".into(), math: infix::parse("0 - a").unwrap() },
        ] {
            let cached = equality::rule_key(&options, &rule, &equality::NoMap);
            let rebuilt = equality::rule_key(&options, &rule, &m);
            assert_eq!(rule_key(&cached, &m).unwrap(), rebuilt, "{cached}");
        }
    }

    #[test]
    fn constraint_keys_rename_like_rebuild() {
        let options = ComposeOptions::default();
        let math = infix::parse("glc >= 0 && atp > 1").unwrap();
        let m = maps(&[("glc", "glucose"), ("atp", "ATP")]);
        let cached = equality::constraint_key(&options, &math, &equality::NoMap);
        assert_eq!(
            constraint_key(&cached, &m).unwrap(),
            equality::constraint_key(&options, &math, &m)
        );
    }

    #[test]
    fn reaction_keys_rename_like_rebuild() {
        let options = ComposeOptions::default();
        let mut r = Reaction::new("r1");
        r.reactants = vec![SpeciesReference::new("zz"), SpeciesReference::new("a")];
        r.products = vec![SpeciesReference::new("b").with_stoichiometry(2.0)];
        r.modifiers = vec![SpeciesReference::new("e")];
        r.kinetic_law =
            Some(sbml_model::KineticLaw::new(infix::parse("k * zz * a / (km + a)").unwrap()));
        // `zz -> a0` changes the participant sort order AND dirties the
        // math pattern's commutative groups.
        let m = maps(&[("zz", "a0"), ("k", "kf")]);
        let cached = equality::reaction_key(&options, &r, &equality::NoMap);
        let rebuilt = equality::reaction_key(&options, &r, &m);
        assert_eq!(reaction_key(&cached, &m).unwrap(), rebuilt);
        // Math-section-only rename agrees with the full key's section.
        let section = reaction_math_section(&cached, &m).unwrap();
        assert_eq!(Some(section.as_str()), crate::passes::key_math_section(&rebuilt));
    }

    #[test]
    fn reaction_key_without_kinetic_law() {
        let options = ComposeOptions::default();
        let mut r = Reaction::new("r1");
        r.reactants = vec![SpeciesReference::new("a")];
        let m = maps(&[("a", "b")]);
        let cached = equality::reaction_key(&options, &r, &equality::NoMap);
        assert_eq!(reaction_key(&cached, &m).unwrap(), equality::reaction_key(&options, &r, &m));
    }

    #[test]
    fn event_keys_rename_like_rebuild() {
        let options = ComposeOptions::default();
        let mut ev = Event::new(infix::parse("piecewise(1, glc < 5, 0) > 0").unwrap());
        ev.delay = Some(infix::parse("tau").unwrap());
        ev.assignments.push(EventAssignment {
            variable: "glc".into(),
            math: infix::parse("glc + bump").unwrap(),
        });
        ev.assignments.push(EventAssignment {
            variable: "atp".into(),
            math: infix::parse("0").unwrap(),
        });
        let m = maps(&[("glc", "glucose"), ("tau", "delay_p"), ("bump", "b")]);
        let cached = equality::event_key(&options, &ev, &equality::NoMap);
        assert_eq!(event_key(&cached, &m).unwrap(), equality::event_key(&options, &ev, &m));
        // No-delay, no-assignment shape.
        let bare = Event::new(infix::parse("glc > 1").unwrap());
        let cached = equality::event_key(&options, &bare, &equality::NoMap);
        assert_eq!(event_key(&cached, &m).unwrap(), equality::event_key(&options, &bare, &m));
    }
}
