//! Model decomposition — the inverse of composition.
//!
//! The paper's work plan asks for "a method for XML graph decomposition or
//! splitting" (future work item 2) and "indexes to support zooming in and
//! out of networks and their subparts" (item 4). This module implements
//! both operations over models:
//!
//! * [`split_components`] — partition a model into its weakly connected
//!   reaction-network components, each a self-contained valid model
//!   carrying exactly the parameters/functions/units it needs,
//! * [`extract_submodel`] — "zoom in": the submodel within a given
//!   reaction-radius of a set of seed species,
//! * round-trip law: composing the split parts reproduces the original
//!   network (tested in `tests/decompose.rs`).

use std::collections::{BTreeSet, HashMap, VecDeque};

use sbml_math::rewrite::collect_identifiers;
use sbml_model::{Model, Reaction};

/// Split a model into its weakly connected components.
///
/// Two species are connected when some reaction links them (as reactant,
/// product or modifier); each component model receives the species and
/// reactions of one component plus every supporting component it
/// references: compartments, (used) parameters, function definitions, unit
/// definitions, rules/events/assignments touching its species. Isolated
/// species form singleton components. A model with no species yields
/// a single clone of itself.
pub fn split_components(model: &Model) -> Vec<Model> {
    if model.species.is_empty() {
        return vec![model.clone()];
    }

    // Union-find over species indexes.
    let index_of: HashMap<&str, usize> =
        model.species.iter().enumerate().map(|(i, s)| (s.id.as_str(), i)).collect();
    let mut parent: Vec<usize> = (0..model.species.len()).collect();

    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };

    for r in &model.reactions {
        let members: Vec<usize> = r
            .reactants
            .iter()
            .chain(&r.products)
            .chain(&r.modifiers)
            .filter_map(|sr| index_of.get(sr.species.as_str()).copied())
            .collect();
        for w in members.windows(2) {
            union(&mut parent, w[0], w[1]);
        }
    }

    // Group species by root.
    let mut groups: HashMap<usize, BTreeSet<usize>> = HashMap::new();
    for i in 0..model.species.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().insert(i);
    }
    // Deterministic order: by smallest member index.
    let mut group_list: Vec<BTreeSet<usize>> = groups.into_values().collect();
    group_list.sort_by_key(|g| *g.iter().next().expect("non-empty group"));

    group_list
        .into_iter()
        .enumerate()
        .map(|(n, members)| {
            let species_ids: BTreeSet<&str> =
                members.iter().map(|&i| model.species[i].id.as_str()).collect();
            build_submodel(model, &species_ids, &format!("{}_part{}", model.id, n))
        })
        .collect()
}

/// Zoom into the submodel within `radius` reaction-hops of `seeds`.
///
/// Radius 0 keeps only the seed species (and reactions entirely inside the
/// seed set); each extra hop pulls in every reaction touching the frontier
/// along with all of its participants.
pub fn extract_submodel(model: &Model, seeds: &[&str], radius: usize) -> Model {
    let mut kept: BTreeSet<&str> = seeds
        .iter()
        .copied()
        .filter(|id| model.species_by_id(id).is_some())
        .collect();
    let mut frontier: VecDeque<&str> = kept.iter().copied().collect();

    for _ in 0..radius {
        let mut next_frontier = VecDeque::new();
        while let Some(sp) = frontier.pop_front() {
            for r in &model.reactions {
                let touches = r
                    .reactants
                    .iter()
                    .chain(&r.products)
                    .chain(&r.modifiers)
                    .any(|sr| sr.species == sp);
                if !touches {
                    continue;
                }
                for sr in r.reactants.iter().chain(&r.products).chain(&r.modifiers) {
                    if model.species_by_id(&sr.species).is_some()
                        && kept.insert(sr.species.as_str())
                    {
                        next_frontier.push_back(
                            model.species_by_id(&sr.species).map(|s| s.id.as_str()).expect("just checked"),
                        );
                    }
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }

    build_submodel(model, &kept, &format!("{}_zoom", model.id))
}

/// Assemble a self-contained model over a species subset: reactions whose
/// participants all lie inside, plus the referenced support components.
fn build_submodel(model: &Model, species_ids: &BTreeSet<&str>, id: &str) -> Model {
    let mut out = Model::new(id);
    out.name = model.name.clone();

    // Species.
    for s in &model.species {
        if species_ids.contains(s.id.as_str()) {
            out.species.push(s.clone());
        }
    }

    // Reactions fully inside the subset.
    let inside = |r: &Reaction| {
        r.reactants
            .iter()
            .chain(&r.products)
            .chain(&r.modifiers)
            .all(|sr| species_ids.contains(sr.species.as_str()))
            && !(r.reactants.is_empty() && r.products.is_empty() && r.modifiers.is_empty())
    };
    for r in &model.reactions {
        if inside(r) {
            out.reactions.push(r.clone());
        }
    }

    // Rules / initial assignments / events restricted to kept variables.
    let kept_vars: BTreeSet<&str> = species_ids.iter().copied().collect();
    for rule in &model.rules {
        match rule.variable() {
            Some(v) if kept_vars.contains(v) => out.rules.push(rule.clone()),
            Some(_) => {}
            None => {
                // Algebraic rules are kept when all their species references
                // stay inside.
                let ids = collect_identifiers(rule.math());
                let all_species_inside = ids
                    .iter()
                    .filter(|i| model.species_by_id(i).is_some())
                    .all(|i| kept_vars.contains(i.as_str()));
                if all_species_inside {
                    out.rules.push(rule.clone());
                }
            }
        }
    }
    for ia in &model.initial_assignments {
        if kept_vars.contains(ia.symbol.as_str())
            || model.parameter_by_id(&ia.symbol).is_some()
            || model.compartment_by_id(&ia.symbol).is_some()
        {
            // keep parameter/compartment assignments only if referenced later
            if kept_vars.contains(ia.symbol.as_str()) {
                out.initial_assignments.push(ia.clone());
            }
        }
    }
    for ev in &model.events {
        let all_inside = ev.assignments.iter().all(|a| {
            kept_vars.contains(a.variable.as_str()) || model.species_by_id(&a.variable).is_none()
        });
        let touches = ev
            .assignments
            .iter()
            .any(|a| kept_vars.contains(a.variable.as_str()));
        if all_inside && touches {
            out.events.push(ev.clone());
        }
    }
    for c in &model.constraints {
        let ids = collect_identifiers(&c.math);
        let all_species_inside = ids
            .iter()
            .filter(|i| model.species_by_id(i).is_some())
            .all(|i| kept_vars.contains(i.as_str()));
        if all_species_inside && ids.iter().any(|i| kept_vars.contains(i.as_str())) {
            out.constraints.push(c.clone());
        }
    }

    // Referenced identifiers across everything kept.
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for r in &out.reactions {
        if let Some(kl) = &r.kinetic_law {
            let locals: BTreeSet<&str> = kl.parameters.iter().map(|p| p.id.as_str()).collect();
            for ident in collect_identifiers(&kl.math) {
                if !locals.contains(ident.as_str()) {
                    referenced.insert(ident);
                }
            }
        }
    }
    for rule in &out.rules {
        referenced.extend(collect_identifiers(rule.math()));
    }
    for ia in &out.initial_assignments {
        referenced.extend(collect_identifiers(&ia.math));
    }
    for ev in &out.events {
        referenced.extend(collect_identifiers(&ev.trigger));
        if let Some(d) = &ev.delay {
            referenced.extend(collect_identifiers(d));
        }
        for a in &ev.assignments {
            referenced.extend(collect_identifiers(&a.math));
        }
    }
    for c in &out.constraints {
        referenced.extend(collect_identifiers(&c.math));
    }

    // Function definitions (transitively, as bodies may call others).
    loop {
        let mut changed = false;
        for f in &model.function_definitions {
            if referenced.contains(&f.id)
                && !out.function_definitions.iter().any(|g| g.id == f.id)
            {
                out.function_definitions.push(f.clone());
                referenced.extend(collect_identifiers(&f.body));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Parameters actually used.
    for p in &model.parameters {
        if referenced.contains(&p.id) {
            out.parameters.push(p.clone());
        }
    }

    // Compartments of the kept species (plus `outside` chains) and
    // compartments referenced by math.
    let mut wanted_compartments: BTreeSet<String> = out
        .species
        .iter()
        .map(|s| s.compartment.clone())
        .chain(referenced.iter().filter(|r| model.compartment_by_id(r).is_some()).cloned())
        .collect();
    loop {
        let mut additions = BTreeSet::new();
        for c in &model.compartments {
            if wanted_compartments.contains(&c.id) {
                if let Some(outside) = &c.outside {
                    if !wanted_compartments.contains(outside) {
                        additions.insert(outside.clone());
                    }
                }
            }
        }
        if additions.is_empty() {
            break;
        }
        wanted_compartments.extend(additions);
    }
    for c in &model.compartments {
        if wanted_compartments.contains(&c.id) {
            out.compartments.push(c.clone());
        }
    }

    // Types and units referenced by kept components.
    let wanted_ctypes: BTreeSet<&str> =
        out.compartments.iter().filter_map(|c| c.compartment_type.as_deref()).collect();
    for ct in &model.compartment_types {
        if wanted_ctypes.contains(ct.id.as_str()) {
            out.compartment_types.push(ct.clone());
        }
    }
    let wanted_stypes: BTreeSet<&str> =
        out.species.iter().filter_map(|s| s.species_type.as_deref()).collect();
    for st in &model.species_types {
        if wanted_stypes.contains(st.id.as_str()) {
            out.species_types.push(st.clone());
        }
    }
    let mut wanted_units: BTreeSet<&str> = BTreeSet::new();
    wanted_units.extend(out.species.iter().filter_map(|s| s.substance_units.as_deref()));
    wanted_units.extend(out.parameters.iter().filter_map(|p| p.units.as_deref()));
    wanted_units.extend(out.compartments.iter().filter_map(|c| c.units.as_deref()));
    for r in &out.reactions {
        if let Some(kl) = &r.kinetic_law {
            wanted_units.extend(kl.parameters.iter().filter_map(|p| p.units.as_deref()));
        }
    }
    for u in &model.unit_definitions {
        if wanted_units.contains(u.id.as_str()) {
            out.unit_definitions.push(u.clone());
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    /// Two islands: A→B (uses k1, mm function) and X→Y (uses k2), plus an
    /// isolated species Z.
    fn two_islands() -> Model {
        ModelBuilder::new("islands")
            .function("dbl", &["v"], "2*v")
            .compartment("cell", 1.0)
            .species("A", 10.0)
            .species("B", 0.0)
            .species("X", 5.0)
            .species("Y", 0.0)
            .species("Z", 1.0)
            .parameter("k1", 0.1)
            .parameter("k2", 0.2)
            .parameter("unused", 9.0)
            .reaction("r1", &["A"], &["B"], "dbl(k1)*A")
            .reaction("r2", &["X"], &["Y"], "k2*X")
            .build()
    }

    #[test]
    fn splits_into_weakly_connected_components() {
        let parts = split_components(&two_islands());
        assert_eq!(parts.len(), 3, "AB, XY, Z");
        let ab = &parts[0];
        assert_eq!(ab.species.len(), 2);
        assert_eq!(ab.reactions.len(), 1);
        assert!(ab.parameter_by_id("k1").is_some());
        assert!(ab.parameter_by_id("k2").is_none(), "k2 belongs to the other island");
        assert!(ab.parameter_by_id("unused").is_none(), "unused parameters dropped");
        assert!(ab.function_by_id("dbl").is_some(), "called function travels along");

        let xy = &parts[1];
        assert_eq!(xy.species.len(), 2);
        assert!(xy.parameter_by_id("k2").is_some());
        assert!(xy.function_by_id("dbl").is_none());

        let z = &parts[2];
        assert_eq!(z.species.len(), 1);
        assert!(z.reactions.is_empty());
    }

    #[test]
    fn parts_are_valid_models() {
        for part in split_components(&two_islands()) {
            let issues = sbml_model::validate(&part);
            assert!(
                issues.iter().all(|i| i.severity != sbml_model::Severity::Error),
                "{}: {issues:?}",
                part.id
            );
        }
    }

    #[test]
    fn empty_and_species_free_models() {
        let empty = Model::new("empty");
        let parts = split_components(&empty);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    fn modifiers_connect_components() {
        // Enzyme E modifies A→B: E must land in the same component.
        let mut m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .species("E", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &["B"], "k*A*E")
            .build();
        m.reactions[0].modifiers.push(sbml_model::SpeciesReference::new("E"));
        let parts = split_components(&m);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].species.len(), 3);
    }

    #[test]
    fn zoom_radius_zero_keeps_seeds_only() {
        let m = two_islands();
        let zoomed = extract_submodel(&m, &["A"], 0);
        assert_eq!(zoomed.species.len(), 1);
        assert!(zoomed.reactions.is_empty(), "r1 references B which is outside");
    }

    #[test]
    fn zoom_radius_one_pulls_in_neighbours() {
        let m = two_islands();
        let zoomed = extract_submodel(&m, &["A"], 1);
        assert_eq!(zoomed.species.len(), 2, "A and B");
        assert_eq!(zoomed.reactions.len(), 1);
        assert!(zoomed.parameter_by_id("k1").is_some());
        assert!(zoomed.species_by_id("X").is_none(), "other island stays out");
    }

    #[test]
    fn zoom_on_chain_respects_radius() {
        // S0 -> S1 -> S2 -> S3 -> S4
        let mut b = ModelBuilder::new("chain").compartment("cell", 1.0);
        for i in 0..5 {
            b = b.species(&format!("S{i}"), 1.0);
        }
        for i in 0..4 {
            let from = format!("S{i}");
            let to = format!("S{}", i + 1);
            let k = format!("k{i}");
            b = b.parameter(&k, 0.1).reaction(
                &format!("r{i}"),
                &[from.as_str()],
                &[to.as_str()],
                &format!("{k}*{from}"),
            );
        }
        let m = b.build();
        let zoom1 = extract_submodel(&m, &["S2"], 1);
        let ids: BTreeSet<&str> = zoom1.species.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, BTreeSet::from(["S1", "S2", "S3"]));
        assert_eq!(zoom1.reactions.len(), 2);

        let zoom2 = extract_submodel(&m, &["S2"], 2);
        assert_eq!(zoom2.species.len(), 5);
        assert_eq!(zoom2.reactions.len(), 4);
    }

    #[test]
    fn unknown_seed_is_ignored() {
        let m = two_islands();
        let zoomed = extract_submodel(&m, &["nothing_here"], 3);
        assert!(zoomed.species.is_empty());
    }

    #[test]
    fn compose_of_split_reproduces_network() {
        // The decomposition law: folding the parts back together restores
        // the original network shape.
        let m = two_islands();
        let parts = split_components(&m);
        let composer = crate::Composer::default();
        let rebuilt = crate::compose_many(&composer, &parts);
        assert_eq!(rebuilt.model.species.len(), m.species.len());
        assert_eq!(rebuilt.model.reactions.len(), m.reactions.len());
        // "unused" was dropped by the split — everything else survives.
        assert_eq!(rebuilt.model.parameters.len(), m.parameters.len() - 1);
    }
}
