//! Component equality under the configured semantics level.
//!
//! Every component kind gets a *content key*: a canonical string such that
//! two components denote the same entity iff their keys match. Under heavy
//! semantics keys use synonym canonicalisation, commutative math patterns
//! and unit signatures; light semantics drops the math/unit intelligence;
//! no-semantics keys are raw identifiers and raw structure.

use sbml_math::pattern::Pattern;
use sbml_math::rewrite::{self, Resolver};
use sbml_math::MathExpr;
use sbml_model::{Event, FunctionDefinition, Reaction, Rule};
use sbml_units::UnitDefinition;

use crate::index::FastMap;
use crate::options::{ComposeOptions, SemanticsLevel};

/// Relative tolerance for numeric value agreement.
pub const VALUE_TOLERANCE: f64 = 1e-9;

/// The ID mapping table (second-model id → composed-model id). A fast
/// non-SipHash map: it is probed for every identifier of every compared
/// component.
pub type MappingTable = FastMap<String, String>;

/// The empty mapping: first-model content is already in composed id space,
/// so its keys are built with this resolver.
pub(crate) struct NoMap;

impl Resolver for NoMap {
    fn resolve(&self, _id: &str) -> Option<&str> {
        None
    }

    fn is_identity(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// Canonical key derivation, generic over the mapping lookup. The merge
// passes hand in whatever mapping structure they run over — the single
// per-push table on the serial path, a sharded per-pass view on the
// pipelined path, [`NoMap`] for merged-side content — and every path
// produces byte-identical keys.
// ---------------------------------------------------------------------

/// Map an id through the resolver (identity when unmapped).
pub(crate) fn resolve_id<'a, R: Resolver + ?Sized>(maps: &'a R, id: &'a str) -> &'a str {
    maps.resolve(id).unwrap_or(id)
}

/// Canonical key for an entity name — see [`MatchContext::name_key`].
pub(crate) fn name_key(options: &ComposeOptions, id: &str, name: Option<&str>) -> String {
    match options.semantics {
        SemanticsLevel::None => id.to_owned(),
        SemanticsLevel::Light | SemanticsLevel::Heavy => {
            let label = name.unwrap_or(id);
            options.synonyms.match_key(label)
        }
    }
}

/// Canonical key for mathematics under `maps`.
pub(crate) fn math_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    math: &MathExpr,
    maps: &R,
) -> String {
    match options.semantics {
        // Heavy: the paper's Fig. 7 commutativity-aware pattern.
        SemanticsLevel::Heavy => Pattern::of_resolved(math, maps).as_str().to_owned(),
        // Light: structural form with mappings but no canonicalisation.
        SemanticsLevel::Light => {
            let renamed = rewrite::rename_resolved(math, maps);
            structural_string(&renamed)
        }
        // None: raw structure, raw ids.
        SemanticsLevel::None => structural_string(math),
    }
}

/// Canonical key for a unit definition — mapping-independent.
pub(crate) fn unit_key(options: &ComposeOptions, def: &UnitDefinition) -> String {
    match options.semantics {
        SemanticsLevel::Heavy => def.signature().key(),
        SemanticsLevel::Light | SemanticsLevel::None => {
            let mut parts: Vec<String> = def
                .units
                .iter()
                .map(|u| format!("{}^{}@{}x{}", u.kind.name(), u.exponent, u.scale, u.multiplier))
                .collect();
            parts.sort();
            parts.join(",")
        }
    }
}

/// Canonical key for a function definition.
pub(crate) fn function_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    f: &FunctionDefinition,
    maps: &R,
) -> String {
    let lambda = f.as_lambda();
    format!("fn:{}:{}", f.params.len(), math_key(options, &lambda, maps))
}

/// Canonical key for a rule.
pub(crate) fn rule_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    rule: &Rule,
    maps: &R,
) -> String {
    match rule {
        Rule::Algebraic { math } => format!("alg:{}", math_key(options, math, maps)),
        Rule::Assignment { variable, math } => {
            format!("asg:{}:{}", resolve_id(maps, variable), math_key(options, math, maps))
        }
        Rule::Rate { variable, math } => {
            format!("rate:{}:{}", resolve_id(maps, variable), math_key(options, math, maps))
        }
    }
}

/// Canonical key for a constraint.
pub(crate) fn constraint_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    math: &MathExpr,
    maps: &R,
) -> String {
    format!("con:{}", math_key(options, math, maps))
}

/// Canonical key for a reaction.
pub(crate) fn reaction_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    r: &Reaction,
    maps: &R,
) -> String {
    let mut parts = Vec::with_capacity(4);
    for (tag, refs) in [("R", &r.reactants), ("P", &r.products), ("M", &r.modifiers)] {
        let mut items: Vec<String> = refs
            .iter()
            .map(|sr| format!("{}*{}", resolve_id(maps, &sr.species), sr.stoichiometry))
            .collect();
        items.sort();
        parts.push(format!("{tag}[{}]", items.join(",")));
    }
    let math = match &r.kinetic_law {
        Some(kl) => math_key(options, &kl.math, maps),
        None => "-".to_owned(),
    };
    parts.push(format!("K[{math}]"));
    format!("rxn:{}:rev={}", parts.join(";"), r.reversible)
}

/// Canonical key for an event.
pub(crate) fn event_key<R: Resolver + ?Sized>(
    options: &ComposeOptions,
    ev: &Event,
    maps: &R,
) -> String {
    let trigger = math_key(options, &ev.trigger, maps);
    let delay = ev.delay.as_ref().map(|d| math_key(options, d, maps)).unwrap_or_default();
    // Assignment order is semantic — keep it.
    let assignments: Vec<String> = ev
        .assignments
        .iter()
        .map(|a| format!("{}={}", resolve_id(maps, &a.variable), math_key(options, &a.math, maps)))
        .collect();
    format!("ev:{trigger}|{delay}|{}", assignments.join(";"))
}

/// Do two optional numeric values agree within tolerance?
pub(crate) fn values_agree(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            if x == y {
                return true;
            }
            let scale = x.abs().max(y.abs());
            (x - y).abs() <= scale * VALUE_TOLERANCE
        }
        _ => false,
    }
}

/// Matching context: options plus the ID mappings accumulated so far
/// (second-model id → composed-model id).
pub struct MatchContext<'o> {
    /// Composition options.
    pub options: &'o ComposeOptions,
    /// Accumulated mappings, applied to second-model content before
    /// comparison (the paper's "add mapping" step).
    pub mappings: MappingTable,
}

impl<'o> MatchContext<'o> {
    /// Fresh context with no mappings.
    pub fn new(options: &'o ComposeOptions) -> MatchContext<'o> {
        MatchContext { options, mappings: MappingTable::default() }
    }

    /// Record a mapping `from → to`.
    pub fn add_mapping(&mut self, from: impl Into<String>, to: impl Into<String>) {
        let (from, to) = (from.into(), to.into());
        if from != to {
            self.mappings.insert(from, to);
        }
    }

    /// Map a second-model id into composed-model id space.
    pub fn map_id<'a>(&'a self, id: &'a str) -> &'a str {
        self.mappings.get(id).map(String::as_str).unwrap_or(id)
    }

    /// Canonical key for an entity name (species, compartments, types):
    /// display name preferred over id, run through the synonym table under
    /// heavy/light semantics.
    pub fn name_key(&self, id: &str, name: Option<&str>) -> String {
        name_key(self.options, id, name)
    }

    /// Canonical key for mathematics. `mapped` applies the accumulated ID
    /// mappings (use for second-model content; first-model content is
    /// already in composed id space).
    pub fn math_key(&self, math: &MathExpr, mapped: bool) -> String {
        if mapped {
            math_key(self.options, math, &self.mappings)
        } else {
            math_key(self.options, math, &NoMap)
        }
    }

    /// Canonical key for a unit definition (heavy: dimension + factor
    /// signature, litre == 0.001 m³; light/none: the normalised factor
    /// list).
    pub fn unit_key(&self, def: &UnitDefinition) -> String {
        unit_key(self.options, def)
    }

    /// Canonical key for a function definition (α-equivalence comes free
    /// from the pattern's positional bound variables under heavy semantics).
    pub fn function_key(&self, f: &FunctionDefinition, mapped: bool) -> String {
        if mapped {
            function_key(self.options, f, &self.mappings)
        } else {
            function_key(self.options, f, &NoMap)
        }
    }

    /// Canonical key for a rule.
    pub fn rule_key(&self, rule: &Rule, mapped: bool) -> String {
        if mapped {
            rule_key(self.options, rule, &self.mappings)
        } else {
            rule_key(self.options, rule, &NoMap)
        }
    }

    /// Canonical key for a constraint.
    pub fn constraint_key(&self, math: &MathExpr, mapped: bool) -> String {
        if mapped {
            constraint_key(self.options, math, &self.mappings)
        } else {
            constraint_key(self.options, math, &NoMap)
        }
    }

    /// Canonical key for a reaction: participant multisets (mapped into
    /// composed id space) plus the kinetic-law math key.
    pub fn reaction_key(&self, r: &Reaction, mapped: bool) -> String {
        if mapped {
            reaction_key(self.options, r, &self.mappings)
        } else {
            reaction_key(self.options, r, &NoMap)
        }
    }

    /// Canonical key for an event.
    pub fn event_key(&self, ev: &Event, mapped: bool) -> String {
        if mapped {
            event_key(self.options, ev, &self.mappings)
        } else {
            event_key(self.options, ev, &NoMap)
        }
    }

    /// Do two optional numeric values agree within tolerance?
    pub fn values_agree(&self, a: Option<f64>, b: Option<f64>) -> bool {
        values_agree(a, b)
    }
}

/// A plain structural rendering of math (no commutative canonicalisation) —
/// the light/none-semantics comparison form.
fn structural_string(math: &MathExpr) -> String {
    // The infix printer is deterministic and structure-faithful.
    sbml_math::writer::to_infix(math)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_math::infix;
    use sbml_model::SpeciesReference;

    fn heavy() -> ComposeOptions {
        ComposeOptions::heavy()
    }

    #[test]
    fn math_keys_by_semantics() {
        let heavy_opts = heavy();
        let light_opts = ComposeOptions::light();
        let none_opts = ComposeOptions::none();
        let heavy_ctx = MatchContext::new(&heavy_opts);
        let light_ctx = MatchContext::new(&light_opts);
        let none_ctx = MatchContext::new(&none_opts);

        let a = infix::parse("k1*A*B").unwrap();
        let b = infix::parse("B*k1*A").unwrap();
        assert_eq!(heavy_ctx.math_key(&a, false), heavy_ctx.math_key(&b, false));
        assert_ne!(light_ctx.math_key(&a, false), light_ctx.math_key(&b, false));
        assert_ne!(none_ctx.math_key(&a, false), none_ctx.math_key(&b, false));
    }

    #[test]
    fn mappings_affect_second_model_keys_only() {
        let opts = heavy();
        let mut ctx = MatchContext::new(&opts);
        ctx.add_mapping("k1", "kf");
        let b_math = infix::parse("k1*X").unwrap();
        let a_math = infix::parse("kf*X").unwrap();
        assert_eq!(ctx.math_key(&b_math, true), ctx.math_key(&a_math, false));
        assert_ne!(ctx.math_key(&b_math, false), ctx.math_key(&a_math, false));
    }

    #[test]
    fn name_keys() {
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        assert_eq!(ctx.name_key("s1", Some("glucose")), ctx.name_key("s2", Some("dextrose")));
        assert_ne!(ctx.name_key("s1", Some("glucose")), ctx.name_key("s2", Some("ATP")));
        // id fallback when unnamed
        assert_eq!(ctx.name_key("glucose", None), ctx.name_key("x", Some("Glucose")));

        let none_opts = ComposeOptions::none();
        let none_ctx = MatchContext::new(&none_opts);
        assert_ne!(none_ctx.name_key("s1", Some("glucose")), none_ctx.name_key("s2", Some("dextrose")));
    }

    #[test]
    fn unit_keys() {
        use sbml_units::{Unit, UnitKind};
        let litre = UnitDefinition::new("l", vec![Unit::of(UnitKind::Litre)]);
        let milli_m3 = UnitDefinition::new("mm3", vec![Unit::of(UnitKind::Metre).pow(3).times(0.1)]);
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        assert_eq!(ctx.unit_key(&litre), ctx.unit_key(&milli_m3), "heavy: dimensional");

        let light_opts = ComposeOptions::light();
        let light_ctx = MatchContext::new(&light_opts);
        assert_ne!(light_ctx.unit_key(&litre), light_ctx.unit_key(&milli_m3), "light: literal");
    }

    #[test]
    fn reaction_keys_ignore_participant_order() {
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        let mut r1 = Reaction::new("r1");
        r1.reactants = vec![SpeciesReference::new("A"), SpeciesReference::new("B")];
        r1.products = vec![SpeciesReference::new("C")];
        let mut r2 = Reaction::new("other_id");
        r2.reactants = vec![SpeciesReference::new("B"), SpeciesReference::new("A")];
        r2.products = vec![SpeciesReference::new("C")];
        assert_eq!(ctx.reaction_key(&r1, false), ctx.reaction_key(&r2, false));

        r2.reactants[0].stoichiometry = 2.0;
        assert_ne!(ctx.reaction_key(&r1, false), ctx.reaction_key(&r2, false));
    }

    #[test]
    fn reaction_keys_include_kinetics_and_reversibility() {
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        let mut r1 = Reaction::new("r");
        r1.reactants = vec![SpeciesReference::new("A")];
        r1.kinetic_law = Some(sbml_model::KineticLaw::new(infix::parse("k*A").unwrap()));
        let mut r2 = r1.clone();
        assert_eq!(ctx.reaction_key(&r1, false), ctx.reaction_key(&r2, false));
        r2.kinetic_law = Some(sbml_model::KineticLaw::new(infix::parse("k2*A").unwrap()));
        assert_ne!(ctx.reaction_key(&r1, false), ctx.reaction_key(&r2, false));
        let mut r3 = r1.clone();
        r3.reversible = true;
        assert_ne!(ctx.reaction_key(&r1, false), ctx.reaction_key(&r3, false));
    }

    #[test]
    fn function_alpha_equivalence_heavy_only() {
        let f = FunctionDefinition::new("f", vec!["x".into()], infix::parse("x*2").unwrap());
        let g = FunctionDefinition::new("g", vec!["y".into()], infix::parse("y*2").unwrap());
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        assert_eq!(ctx.function_key(&f, false), ctx.function_key(&g, false));

        let light_opts = ComposeOptions::light();
        let light_ctx = MatchContext::new(&light_opts);
        assert_ne!(light_ctx.function_key(&f, false), light_ctx.function_key(&g, false));
    }

    #[test]
    fn rule_and_event_keys() {
        let opts = heavy();
        let mut ctx = MatchContext::new(&opts);
        ctx.add_mapping("x2", "x");
        let a = Rule::Assignment { variable: "x".into(), math: infix::parse("a+b").unwrap() };
        let b = Rule::Assignment { variable: "x2".into(), math: infix::parse("b+a").unwrap() };
        assert_eq!(ctx.rule_key(&a, false), ctx.rule_key(&b, true));

        let mut e1 = Event::new(infix::parse("time >= 5").unwrap());
        e1.assignments.push(sbml_model::EventAssignment {
            variable: "x".into(),
            math: infix::parse("1").unwrap(),
        });
        let mut e2 = Event::new(infix::parse("time >= 5").unwrap());
        e2.assignments.push(sbml_model::EventAssignment {
            variable: "x2".into(),
            math: infix::parse("1").unwrap(),
        });
        assert_eq!(ctx.event_key(&e1, false), ctx.event_key(&e2, true));
        assert_ne!(ctx.event_key(&e1, false), ctx.event_key(&e2, false));
    }

    #[test]
    fn value_agreement() {
        let opts = heavy();
        let ctx = MatchContext::new(&opts);
        assert!(ctx.values_agree(None, None));
        assert!(ctx.values_agree(Some(1.0), Some(1.0)));
        assert!(ctx.values_agree(Some(1.0), Some(1.0 + 1e-12)));
        assert!(!ctx.values_agree(Some(1.0), Some(1.1)));
        assert!(!ctx.values_agree(Some(1.0), None));
        assert!(ctx.values_agree(Some(0.0), Some(0.0)));
        assert!(ctx.values_agree(Some(6.022e23), Some(6.022e23 * (1.0 + 1e-12))));
    }

    #[test]
    fn identity_mapping_not_stored() {
        let opts = heavy();
        let mut ctx = MatchContext::new(&opts);
        ctx.add_mapping("same", "same");
        assert!(ctx.mappings.is_empty());
    }
}
