//! The incremental composition engine.
//!
//! [`CompositionSession`] owns the accumulating merged [`Model`] together
//! with *live* per-kind [`ComponentIndex`] structures and a cache of
//! canonical content keys, so a chain composition
//! (`push(m1); push(m2); …`) does the work the paper's pairwise algorithm
//! would redo from scratch at every step exactly once:
//!
//! * **no accumulator clones** — `compose(a, b)` starts from `a.clone()`,
//!   so a left fold over an *n*-model chain clones the ever-growing result
//!   *n* times; a session keeps the accumulator in place and moves pushed
//!   models' components instead,
//! * **persistent indexes** — the by-id / by-name / by-content indexes of
//!   every component kind are updated in place as components are inserted
//!   rather than rebuilt from the whole accumulator on every push,
//! * **cached content keys** — the canonical key of a merged component
//!   (`name_key`, `math_key`-derived content keys, `unit_key`) is computed
//!   once, interned as `Arc<str>` shared between the index and the cache,
//!   and reused by every later push instead of being re-derived,
//! * **incremental initial values** — the accumulator's evaluated initial
//!   values (the paper's pre-composition collection step) are held in an
//!   [`IncrementalValues`] store that is seeded at the first merge and
//!   extended with each push's additions through a dependency graph of
//!   initial assignments, instead of re-running [`collect`] over the
//!   whole accumulator before every push,
//! * **within-push parallel keys** — a raw pushed model at or above
//!   [`ComposeOptions::parallel_push_threshold`] keyed components gets its
//!   canonical content keys computed on a scoped thread pool *before* the
//!   merge passes consume them (the per-model analogue of
//!   [`crate::BatchComposer::prepare_corpus`]'s across-model fan-out),
//!   with per-job **size-weighted chunking** so one giant kinetic law
//!   cannot serialise a chunk; below the threshold, keys are computed
//!   inline as before,
//! * **pipelined merge passes** — with [`ComposeOptions::merge_pipeline`]
//!   (default on) the Fig. 4 passes of one push execute as a
//!   **dependency DAG** on a scoped-thread scheduler (the crate-internal
//!   `pipeline` module): per-kind mapping shards, taken-id family
//!   analysis and fixed cross-kind data edges decide which passes may
//!   overlap; output is bit-for-bit identical to the serial pass order,
//! * **incremental mapped-key renaming** — with
//!   [`ComposeOptions::incremental_key_rename`] (default on, heavy
//!   semantics) a cached content key whose referenced ids were remapped
//!   mid-push is revalidated by renaming the cached canonical text (the
//!   crate-internal `keyrename` module over
//!   [`sbml_math::pattern::Pattern::rename_mapped`]) — O(touched
//!   leaves) — instead of re-canonicalising the formula.
//!
//! # Anatomy and cost of one push
//!
//! A push runs the paper's Fig. 4 pipeline over the incoming model `b`
//! against the accumulator `A` (sizes `|b|`, `|A|`):
//!
//! | phase | work | serial cost | pipelined |
//! |---|---|---|---|
//! | per-push reset | clear mapping table + delta indexes | O(1) amortised | same |
//! | initial values | incremental store lookup (seeded once) | O(1) per push (O(&#124;A&#124;) once); O(&#124;A&#124;) per push with the store ablated | same |
//! | incoming keys | serial inline, or precomputed on the pool at/above the threshold (size-weighted chunks) | O(&#124;b&#124;) work, ÷ cores wall-clock when parallel | same |
//! | merge passes | functions → units → compartment/species types → compartments → species → parameters → initial assignments → rules → constraints → reactions → events; each component is an O(1) expected index probe (by id, then by content/name) plus a conflict check; stale cached keys revalidated by incremental rename (O(touched leaves)) instead of re-canonicalisation (O(formula)) | O(&#124;b&#124;) | independent passes overlap on the scheduler — wall-clock ≈ critical path of the per-push dependency DAG, ÷ min(workers, DAG width) |
//! | finish | fold per-pass logs/shards in Fig. 4 order (pipelined only), fold delta indexes under canonical merged-side keys, extend the key cache and the value store with the push's additions | O(additions) | same |
//!
//! Nothing in a push scales with `|A|` (the two O(n)-per-push costs the
//! ROADMAP listed — whole-accumulator value re-collection and serial key
//! computation — were removed by the incremental store and the parallel
//! key path respectively), so an n-model chain is O(total components)
//! plus index-probe constants, not O(n²). The remaining *serial* per-pair
//! costs — strictly ordered merge passes and O(formula) recomputation of
//! mapped keys — are what the pipeline and the incremental rename remove;
//! `BENCH_pipeline.json` (gated ≥ 1.5x by `ci.sh`) tracks their combined
//! win on the conflict-heavy corpus.
//!
//! The output is bit-for-bit identical to a left fold of pairwise
//! [`Composer::compose`] calls — `tests/properties.rs` proves model, log
//! and mappings equality over randomized chains, across every semantics
//! level, ablation knob and thread count. Within one push the
//! session therefore mirrors a subtlety of the pairwise pass: a component
//! inserted *during* a push is indexed under its incoming (second-model)
//! key until the push ends, and under its canonical merged-side key
//! afterwards, exactly as a per-pass index rebuild would do. Additions are
//! staged in small per-push *delta* indexes and folded into the persistent
//! indexes when the push completes.
//!
//! [`Composer::compose`]: crate::composer::Composer::compose
//! [`ComposeOptions::parallel_push_threshold`]: crate::options::ComposeOptions::parallel_push_threshold
//! [`ComposeOptions::merge_pipeline`]: crate::options::ComposeOptions::merge_pipeline
//! [`ComposeOptions::incremental_key_rename`]: crate::options::ComposeOptions::incremental_key_rename

use std::collections::HashMap;
use std::sync::Arc;

use sbml_model::Model;

use crate::composer::{ComposeResult, SharedComposeResult, SharedModel};
use crate::cow::{Accum, CowState};
use crate::equality::{self, MappingTable, NoMap};
use crate::guard::{self, ExecError, Meter, PushOutcome, Site};
use crate::index::ComponentIndex;
use crate::initial_values::{collect, IncrementalValues, InitialValues, ValueDelta};
use crate::log::MergeLog;
use crate::options::ComposeOptions;
use crate::pool::WorkerPool;
use crate::passes::{
    self, AssignmentsMut, CompartmentTypesMut, CompartmentsMut, CompartmentsRead, ConstraintsMut,
    EventsMut, FunctionsMut, IdRegistry, Incoming, IvA, MapStore, ParametersMut, PassEnv,
    PrefixMask, ReactionsMut, RulesMut, SpeciesMut, SpeciesTypesMut, TakenStore, UnitsMut,
    UnitsRead,
};
use crate::pipeline;
use crate::prepared::{IncomingKeys, Indexes, KeyCache, ModelAnalysis, PreparedModel};

/// Per-push staging indexes for components added during the current push,
/// keyed by their *incoming* (second-model) content/name key. Folded into
/// [`Indexes`] under canonical merged-side keys at push end.
#[derive(Debug, Clone)]
pub(crate) struct DeltaIndexes {
    pub(crate) functions_by_content: ComponentIndex,
    pub(crate) compartment_types_by_name: ComponentIndex,
    pub(crate) species_types_by_name: ComponentIndex,
    pub(crate) compartments_by_name: ComponentIndex,
    pub(crate) species_by_name: ComponentIndex,
    pub(crate) rules_by_content: ComponentIndex,
    pub(crate) constraints_by_content: ComponentIndex,
    pub(crate) reactions_by_content: ComponentIndex,
    pub(crate) events_by_content: ComponentIndex,
}

impl DeltaIndexes {
    fn new(options: &ComposeOptions) -> DeltaIndexes {
        let mk = || ComponentIndex::new(options.index);
        DeltaIndexes {
            functions_by_content: mk(),
            compartment_types_by_name: mk(),
            species_types_by_name: mk(),
            compartments_by_name: mk(),
            species_by_name: mk(),
            rules_by_content: mk(),
            constraints_by_content: mk(),
            reactions_by_content: mk(),
            events_by_content: mk(),
        }
    }

    fn clear(&mut self) {
        self.functions_by_content.clear();
        self.compartment_types_by_name.clear();
        self.species_types_by_name.clear();
        self.compartments_by_name.clear();
        self.species_by_name.clear();
        self.rules_by_content.clear();
        self.constraints_by_content.clear();
        self.reactions_by_content.clear();
        self.events_by_content.clear();
    }
}

/// Keyed-component count of a model: the components that carry a canonical
/// content or name key (everything except parameters and initial
/// assignments). This is what [`ComposeOptions::parallel_push_threshold`]
/// gates — both the within-push key fan-out and the merge-pass pipeline.
///
/// [`ComposeOptions::parallel_push_threshold`]: crate::options::ComposeOptions::parallel_push_threshold
pub(crate) fn keyed_components(model: &Model) -> usize {
    model.function_definitions.len()
        + model.unit_definitions.len()
        + model.compartment_types.len()
        + model.species_types.len()
        + model.compartments.len()
        + model.species.len()
        + model.rules.len()
        + model.constraints.len()
        + model.reactions.len()
        + model.events.len()
}

/// Component-list lengths at the start of a push; everything past these
/// positions was added by the push currently being folded in.
#[derive(Debug, Clone, Copy)]
struct PushStart {
    functions: usize,
    units: usize,
    compartment_types: usize,
    species_types: usize,
    compartments: usize,
    species: usize,
    parameters: usize,
    initial_assignments: usize,
    rules: usize,
    constraints: usize,
    reactions: usize,
    events: usize,
}

impl PushStart {
    fn of(model: &Model) -> PushStart {
        PushStart {
            functions: model.function_definitions.len(),
            units: model.unit_definitions.len(),
            compartment_types: model.compartment_types.len(),
            species_types: model.species_types.len(),
            compartments: model.compartments.len(),
            species: model.species.len(),
            parameters: model.parameters.len(),
            initial_assignments: model.initial_assignments.len(),
            rules: model.rules.len(),
            constraints: model.constraints.len(),
            reactions: model.reactions.len(),
            events: model.events.len(),
        }
    }
}

/// An in-progress chain composition; see the [module docs](self).
///
/// ```
/// use sbml_compose::{ComposeOptions, Composer, CompositionSession};
/// use sbml_model::builder::ModelBuilder;
///
/// let options = ComposeOptions::default();
/// let mut session = CompositionSession::new(&options);
/// for part in ["glycolysis", "tca"] {
///     let m = ModelBuilder::new(part)
///         .compartment("cell", 1.0)
///         .species("pyruvate", 0.0)
///         .build();
///     session.push(&m);
/// }
/// let result = session.finish();
/// assert_eq!(result.model.species.len(), 1); // pyruvate shared
/// ```
pub struct CompositionSession<'o> {
    pub(crate) options: &'o ComposeOptions,
    /// The current push's ID mappings (second-model id → merged id) —
    /// cleared per push, drained into `mappings` at push end. On the
    /// pipelined path the passes write per-kind shards that are folded in
    /// here in pass order before `finish_push`.
    pub(crate) push_maps: MappingTable,
    /// First-byte index over `push_maps` sources (see
    /// [`PrefixMask`]); cleared with it per push.
    pub(crate) push_mask: PrefixMask,
    /// The accumulator: a shared prepared base (copy-on-write, nothing
    /// cloned yet) or a plain owned model. See [`crate::cow`].
    pub(crate) accum: Accum,
    /// The adopted COW base, kept (sticky) so a failed push that
    /// materialised mid-pass can roll all the way back to the fully
    /// shared state. `Some` only for sessions created through
    /// [`CompositionSession::with_shared_base`] with
    /// [`ComposeOptions::adopt_base`] on.
    base: Option<Arc<PreparedModel>>,
    /// Session-lifetime worker pool backing the merge-pass pipeline and
    /// the within-push key fan-out; created lazily on the first parallel
    /// push ([`ComposeOptions::pool_threads`] sizes it) or injected by
    /// [`CompositionSession::set_pool`] for batch-/daemon-lifetime reuse.
    pool: Option<Arc<WorkerPool>>,
    pub(crate) log: MergeLog,
    pub(crate) mappings: HashMap<String, String>,
    pub(crate) taken: IdRegistry,
    pub(crate) iv_a: Arc<InitialValues>,
    pub(crate) iv_b: Arc<InitialValues>,
    /// Initial values of the current accumulator when they are already
    /// known (adopted from a [`PreparedModel`] base); consumed by the next
    /// push instead of re-running [`collect`] over the accumulator.
    pub(crate) base_ivs: Option<Arc<InitialValues>>,
    /// The accumulator's initial values, maintained incrementally across
    /// pushes (seeded at the first merge, extended with each push's
    /// additions). `None` when [`ComposeOptions::incremental_initial_values`]
    /// is off, when values are not collected at all, or before the first
    /// real merge.
    pub(crate) incremental: Option<IncrementalValues>,
    pub(crate) idx: Indexes,
    pub(crate) delta: DeltaIndexes,
    pub(crate) keys: KeyCache,
    pushes: usize,
}

impl<'o> CompositionSession<'o> {
    /// A session with an empty accumulator. The first non-empty pushed
    /// model becomes the base (its id is retained, per Fig. 5 line 25).
    pub fn new(options: &'o ComposeOptions) -> CompositionSession<'o> {
        CompositionSession {
            options,
            push_maps: MappingTable::default(),
            push_mask: PrefixMask::default(),
            accum: Accum::Owned(Model::new("empty")),
            base: None,
            pool: None,
            log: MergeLog::new(),
            mappings: HashMap::new(),
            taken: IdRegistry::new(),
            iv_a: Arc::new(InitialValues::default()),
            iv_b: Arc::new(InitialValues::default()),
            base_ivs: None,
            incremental: None,
            idx: Indexes::new(options),
            delta: DeltaIndexes::new(options),
            keys: KeyCache::default(),
            pushes: 0,
        }
    }

    /// A session whose accumulator starts as `base`, moved in without a
    /// clone.
    pub fn with_base(options: &'o ComposeOptions, base: Model) -> CompositionSession<'o> {
        let mut session = CompositionSession::new(options);
        session.accum = Accum::Owned(base);
        session.reindex();
        session
    }

    /// A session whose accumulator starts as a clone of a prepared model,
    /// adopting its precomputed indexes, content keys and initial values
    /// instead of re-deriving them (the per-pair `reindex` + `collect`
    /// cost of the raw path).
    ///
    /// Panics if `base` was prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint).
    pub fn with_prepared_base(
        options: &'o ComposeOptions,
        base: &PreparedModel,
    ) -> CompositionSession<'o> {
        base.check_options(options);
        let mut session = CompositionSession::new(options);
        session.adopt_prepared(base);
        session
    }

    /// A session whose accumulator *is* `base`, adopted by reference: with
    /// [`ComposeOptions::adopt_base`] on (the default) nothing is cloned —
    /// component lists, indexes, key cache and evaluated initial values
    /// all stay shared with the `Arc` until a push actually mutates the
    /// accumulator (see the `cow` module). A composition whose every
    /// incoming component matches the base (Duplicate-only) finishes with
    /// the base still fully shared; [`CompositionSession::finish_shared`]
    /// then hands the `Arc` back instead of a copy.
    ///
    /// With `adopt_base` off this falls back to the eager clone of
    /// [`CompositionSession::with_prepared_base`] — the oracle engine the
    /// differential tests compare against. Output is bit-for-bit
    /// identical either way.
    ///
    /// Panics if `base` was prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint).
    pub fn with_shared_base(
        options: &'o ComposeOptions,
        base: Arc<PreparedModel>,
    ) -> CompositionSession<'o> {
        base.check_options(options);
        let mut session = CompositionSession::new(options);
        if options.adopt_base {
            session.taken.reset(Arc::clone(&base.analysis().taken));
            session.base_ivs =
                options.collect_initial_values.then(|| Arc::clone(&base.initial_values));
            session.incremental = None;
            session.base = Some(Arc::clone(&base));
            session.accum = Accum::Shared(base);
        } else {
            session.adopt_prepared(&base);
        }
        session
    }

    /// The merged model so far.
    pub fn model(&self) -> &Model {
        self.accum.model()
    }

    /// Is the accumulator still fully shared with an adopted base — i.e.
    /// has no push cloned anything yet? Observability hook for the COW
    /// differential and fault-isolation tests.
    pub fn is_base_shared(&self) -> bool {
        self.accum.is_shared()
    }

    /// Install a caller-owned worker pool for this session's parallel
    /// work (merge-pass pipeline, within-push key fan-out). Without one
    /// the session lazily creates its own, sized by
    /// [`ComposeOptions::pool_threads`]; batch and daemon callers inject
    /// a shared pool here so hot paths reuse warm, parked workers instead
    /// of spawning per push.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Builder form of [`CompositionSession::set_pool`].
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.set_pool(pool);
        self
    }

    /// The session's pool, creating it on first use. Sized by
    /// [`ComposeOptions::pool_threads`] (`0` = host parallelism).
    pub(crate) fn ensure_pool(&mut self) -> Arc<WorkerPool> {
        if self.pool.is_none() {
            self.pool = Some(Arc::new(match self.options.pool_threads {
                0 => WorkerPool::for_host(),
                n => WorkerPool::new(n),
            }));
        }
        Arc::clone(self.pool.as_ref().expect("pool installed above"))
    }

    /// The cumulative merge log across all pushes.
    pub fn log(&self) -> &MergeLog {
        &self.log
    }

    /// Cumulative ID mappings (pushed-model id → merged-model id), later
    /// pushes overriding earlier ones, as a pairwise fold would.
    pub fn mappings(&self) -> &HashMap<String, String> {
        &self.mappings
    }

    /// Number of models pushed so far.
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Merge one model into the accumulator (borrowing; components that
    /// end up in the result are cloned, the accumulator never is).
    pub fn push(&mut self, b: &Model) {
        self.pushes += 1;
        // Fig. 5 lines 1–2: an empty side returns the other unchanged.
        if self.accum.model().is_empty() {
            self.accum = Accum::Owned(b.clone());
            self.reindex();
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(b, false);
    }

    /// Merge one model by value: as [`CompositionSession::push`], but a
    /// model that becomes the base is moved, not cloned.
    pub fn push_owned(&mut self, b: Model) {
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.accum = Accum::Owned(b);
            self.reindex();
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(&b, false);
    }

    /// [`CompositionSession::push`] for a push known to be the last before
    /// [`CompositionSession::finish`]: skips maintenance work only a later
    /// push would read. Same output, internal-only.
    pub(crate) fn push_final(&mut self, b: &Model) {
        self.pushes += 1;
        if self.accum.model().is_empty() {
            // The model becomes the result as-is; no push follows, so the
            // indexes it would seed are never consulted.
            self.accum = Accum::Owned(b.clone());
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(b, true);
    }

    /// Final-push variant of [`CompositionSession::push_owned`].
    pub(crate) fn push_owned_final(&mut self, b: Model) {
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.accum = Accum::Owned(b);
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(&b, true);
    }

    /// Merge one prepared model, reusing its precomputed analysis: name,
    /// unit and (while the push has no ID mappings) content keys come from
    /// the preparation, conflict-check lookups go through its indexes, and
    /// its evaluated initial values replace a `collect` pass. A model that
    /// becomes the base also donates its base-side indexes and key cache,
    /// skipping the reindex.
    ///
    /// Output is bit-for-bit identical to [`CompositionSession::push`] on
    /// the same model (a property test enforces this). Panics if `p` was
    /// prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint).
    pub fn push_prepared(&mut self, p: &PreparedModel) {
        p.check_options(self.options());
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.adopt_prepared(p);
            return;
        }
        if p.model().is_empty() {
            return;
        }
        self.merge_model(&Incoming::prepared(p), false);
    }

    /// Final-push variant of [`CompositionSession::push_prepared`].
    pub(crate) fn push_prepared_final(&mut self, p: &PreparedModel) {
        p.check_options(self.options());
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.accum = Accum::Owned(p.model().clone());
            return;
        }
        if p.model().is_empty() {
            return;
        }
        self.merge_model(&Incoming::prepared(p), true);
    }

    /// [`CompositionSession::push`] with fault containment and budget
    /// governance (see [`crate::guard`]). `meter` is charged one step per
    /// incoming component *before* the accumulator is touched, so an
    /// exhausted budget fails the push cleanly; a fault inside the merge
    /// walks the degradation ladder — pipelined attempt, one serial
    /// retry, rollback — and `Err` guarantees the accumulator, log and
    /// mappings are exactly their pre-push state.
    ///
    /// Output on success is bit-for-bit identical to
    /// [`CompositionSession::push`] on the same model, degraded or not.
    pub fn push_guarded(
        &mut self,
        b: &Model,
        meter: Option<&Meter>,
    ) -> Result<PushOutcome, ExecError> {
        if let Some(m) = meter {
            m.charge(b.component_count() as u64, Site::Push(self.pushes))?;
        }
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.accum = Accum::Owned(b.clone());
            self.reindex();
            return Ok(PushOutcome::clean());
        }
        if b.is_empty() {
            return Ok(PushOutcome::clean());
        }
        let keys = self.precomputed_push_keys(b);
        self.merge_model_guarded(&Incoming::raw_with_keys(b, keys.as_ref()), meter)
    }

    /// Guarded variant of [`CompositionSession::push_prepared`]: same
    /// containment and budget semantics as
    /// [`CompositionSession::push_guarded`]. Panics (only) if `p` was
    /// prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint) — that is caller
    /// misuse, not input-driven.
    pub fn push_prepared_guarded(
        &mut self,
        p: &PreparedModel,
        meter: Option<&Meter>,
    ) -> Result<PushOutcome, ExecError> {
        p.check_options(self.options());
        if let Some(m) = meter {
            m.charge(p.model().component_count() as u64, Site::Push(self.pushes))?;
        }
        self.pushes += 1;
        if self.accum.model().is_empty() {
            self.adopt_prepared(p);
            return Ok(PushOutcome::clean());
        }
        if p.model().is_empty() {
            return Ok(PushOutcome::clean());
        }
        self.merge_model_guarded(&Incoming::prepared(p), meter)
    }

    /// Finish, returning the composed model, cumulative log and mappings.
    /// A still-shared COW accumulator is cloned here (once); use
    /// [`CompositionSession::finish_shared`] to keep the zero-copy result.
    pub fn finish(self) -> ComposeResult {
        ComposeResult { model: self.accum.into_model(), log: self.log, mappings: self.mappings }
    }

    /// Finish without forcing a copy: a Duplicate-only composition over an
    /// adopted base returns [`SharedModel::Base`] — the original `Arc`,
    /// refcount-bumped, no model bytes cloned end to end.
    pub fn finish_shared(self) -> SharedComposeResult {
        let model = match self.accum {
            Accum::Shared(base) => SharedModel::Base(base),
            Accum::Owned(m) => SharedModel::Owned(m),
        };
        SharedComposeResult { model, log: self.log, mappings: self.mappings }
    }

    /// The evaluated initial values of the current accumulator — exactly
    /// what the next push's conflict checks will consult: empty when
    /// [`ComposeOptions::collect_initial_values`] is off, else the
    /// incremental store's view when it is active, else recomputed via
    /// [`collect`]. The equivalence property tests compare the store
    /// against a fresh `collect` after every push.
    pub fn current_initial_values(&self) -> InitialValues {
        if !self.options().collect_initial_values {
            return InitialValues::default();
        }
        match &self.incremental {
            Some(store) => store.snapshot(),
            // A still-shared accumulator's values are the base's evaluated
            // values, adopted at `with_shared_base`; avoid the O(model)
            // re-collect.
            None => match &self.base_ivs {
                Some(iv) if self.accum.is_shared() => iv.as_ref().clone(),
                _ => collect(self.accum.model()),
            },
        }
    }

    /// Shared tail of every raw push entry point: precompute content keys
    /// when the model clears the parallel threshold, then run the merge
    /// passes.
    fn merge_raw(&mut self, b: &Model, final_push: bool) {
        let keys = self.precomputed_push_keys(b);
        self.merge_model(&Incoming::raw_with_keys(b, keys.as_ref()), final_push);
    }

    /// Content keys for a raw push, computed up front on the session's
    /// worker pool when the model clears
    /// [`ComposeOptions::parallel_push_threshold`] — the within-push
    /// analogue of [`crate::BatchComposer::prepare_corpus`]'s per-model
    /// fan-out. `None` below the threshold (the merge passes then compute
    /// keys inline, as before).
    fn precomputed_push_keys(&mut self, b: &Model) -> Option<IncomingKeys> {
        // Gate on the components that actually produce key jobs —
        // parameters and initial assignments have no canonical keys, so a
        // parameter-heavy model must not spawn workers for a handful of
        // name keys.
        if keyed_components(b) < self.options().parallel_push_threshold {
            return None;
        }
        let pool = self.ensure_pool();
        Some(IncomingKeys::build_parallel_on(b, self.options(), pool.threads(), Some(&pool)))
    }

    fn options(&self) -> &'o ComposeOptions {
        self.options
    }

    fn cache_keys(&self) -> bool {
        self.options().cache_content_keys
    }

    // ---------------------------------------------------------------
    // Index lifecycle
    // ---------------------------------------------------------------

    /// Rebuild every persistent index (and the key cache) from the
    /// current merged model. Only needed when the accumulator is replaced
    /// wholesale; pushes maintain the indexes incrementally.
    fn reindex(&mut self) {
        let analysis = ModelAnalysis::build(self.accum.model(), self.options(), None);
        self.taken.reset(analysis.taken);
        self.idx = analysis.idx;
        self.keys = analysis.keys;
        self.delta = DeltaIndexes::new(self.options());
        self.base_ivs = None;
        self.incremental = None;
        self.base = None;
    }

    /// Replace the accumulator with a clone of a prepared model, adopting
    /// its base-side analysis instead of rebuilding it.
    fn adopt_prepared(&mut self, p: &PreparedModel) {
        self.accum = Accum::Owned(p.model().clone());
        self.base = None;
        self.taken.reset(Arc::clone(&p.analysis().taken));
        self.idx = p.analysis().idx.clone();
        self.keys = p.analysis().keys.clone();
        self.delta = DeltaIndexes::new(self.options());
        self.incremental = None;
        self.base_ivs = self
            .options()
            .collect_initial_values
            .then(|| Arc::clone(&p.initial_values));
    }

    /// Run the Fig. 4 pipeline for one (non-empty) incoming model. With
    /// `final_push`, skip the end-of-push index and key-cache maintenance
    /// that only a subsequent push would consume (the merged model, log
    /// and mappings are unaffected) — used by the one-shot entry points.
    fn merge_model(&mut self, inc: &Incoming<'_>, final_push: bool) {
        let start = self.begin_push(inc);

        // The Fig. 4 passes: as a dependency-DAG pipeline on scoped worker
        // threads when the knobs and the push shape allow it, else in
        // strict serial order. Output is bit-for-bit identical either way
        // (property-tested across thread counts).
        match self.pipeline_workers(inc) {
            Some(workers) => {
                let pool = self.ensure_pool();
                if let Err(fault) = pipeline::run(self, inc, workers, &pool, None) {
                    // Unguarded entry point: keep the historical contract
                    // (a pass panic aborts the push) rather than silently
                    // degrading. push_guarded is the containing variant.
                    panic!("a merge pass panicked: {fault}");
                }
            }
            None => self.merge_passes_serial(inc),
        }

        self.finish_push(start, final_push);
    }

    /// Everything a push does before the merge passes run: reset the
    /// per-push state, seed both sides' initial values, snapshot the
    /// accumulator's component-list lengths and pre-size for the incoming
    /// model. Shared by the plain and guarded merge paths (the guarded
    /// path re-runs it for the serial retry after a rollback).
    fn begin_push(&mut self, inc: &Incoming<'_>) -> PushStart {
        // Per-push state: fresh mappings and initial values, clean deltas
        // (exactly what a pairwise `compose` would start from).
        self.push_maps.clear();
        self.push_mask.clear();
        self.delta.clear();
        if self.options().collect_initial_values {
            if self.accum.is_shared() {
                // COW base, untouched so far: the accumulator's values ARE
                // the base's evaluated values. Serve them as a snapshot
                // (IvA::Snap) and defer any incremental seeding until a
                // push actually materialises — `base_ivs` is kept, not
                // taken, so a Duplicate-only push costs one Arc bump.
                if let Some(iv) = &self.base_ivs {
                    self.iv_a = Arc::clone(iv);
                }
            } else if self.options().incremental_initial_values {
                // Incremental path: seed the store once — from the
                // prepared base's already-evaluated values when we have
                // them, else one collect-equivalent fixed point — and let
                // `finish_push` extend it with this push's additions.
                // Accumulator-side lookups go through `iv_a_get`.
                if self.incremental.is_none() {
                    let known = self.base_ivs.take();
                    self.incremental = Some(match known {
                        Some(iv) => IncrementalValues::seed_with_known(self.accum.model(), &iv),
                        None => IncrementalValues::seed(self.accum.model()),
                    });
                }
            } else {
                let base_ivs = self.base_ivs.take();
                self.iv_a = base_ivs.unwrap_or_else(|| Arc::new(collect(self.accum.model())));
            }
            self.iv_b = match inc.ivs {
                Some(ivs) => Arc::clone(ivs),
                None => Arc::new(collect(inc.model)),
            };
        } else {
            self.base_ivs = None;
            self.incremental = None;
            self.iv_a = Arc::new(InitialValues::default());
            self.iv_b = Arc::new(InitialValues::default());
        }
        let start = PushStart::of(self.accum.model());

        // Pre-size the accumulator for the worst case (every incoming
        // component added) — one reserve beats repeated regrow-and-copy.
        // A still-shared accumulator has nothing to reserve into; sizing
        // happens if and when a list materialises.
        if let Accum::Owned(m) = &mut self.accum {
            let b = inc.model;
            m.function_definitions.reserve(b.function_definitions.len());
            m.unit_definitions.reserve(b.unit_definitions.len());
            m.compartments.reserve(b.compartments.len());
            m.species.reserve(b.species.len());
            m.parameters.reserve(b.parameters.len());
            m.initial_assignments.reserve(b.initial_assignments.len());
            m.rules.reserve(b.rules.len());
            m.constraints.reserve(b.constraints.len());
            m.reactions.reserve(b.reactions.len());
            m.events.reserve(b.events.len());
        }
        start
    }

    /// Undo a push whose merge passes did not complete: the passes only
    /// ever *append* to the accumulator (conflicts keep the first entry;
    /// reconciliation reads and logs but never rewrites), so truncating
    /// every component list and the log back to their pre-push lengths
    /// restores the exact pre-push model, and one `reindex` rebuilds the
    /// derived state from it. O(accumulator), paid only on the fault path.
    ///
    /// `was_shared` records whether the accumulator was still the fully
    /// shared COW base *before* this push: then the failed push itself did
    /// any materialising, so rollback is re-adoption — drop whatever was
    /// cloned and point back at the base `Arc`. O(1), no reindex.
    fn rollback_push(&mut self, start: PushStart, log_start: usize, was_shared: bool) {
        self.log.events.truncate(log_start);
        self.push_maps.clear();
        self.push_mask.clear();
        if was_shared {
            let base = Arc::clone(
                self.base.as_ref().expect("a shared accumulator always has its base recorded"),
            );
            self.delta.clear();
            self.taken.reset(Arc::clone(&base.analysis().taken));
            self.idx = Indexes::new(self.options());
            self.keys = KeyCache::default();
            self.incremental = None;
            self.base_ivs =
                self.options().collect_initial_values.then(|| Arc::clone(&base.initial_values));
            self.accum = Accum::Shared(base);
            return;
        }
        let m = match &mut self.accum {
            Accum::Owned(m) => m,
            Accum::Shared(_) => unreachable!("push on a shared accumulator has was_shared set"),
        };
        m.function_definitions.truncate(start.functions);
        m.unit_definitions.truncate(start.units);
        m.compartment_types.truncate(start.compartment_types);
        m.species_types.truncate(start.species_types);
        m.compartments.truncate(start.compartments);
        m.species.truncate(start.species);
        m.parameters.truncate(start.parameters);
        m.initial_assignments.truncate(start.initial_assignments);
        m.rules.truncate(start.rules);
        m.constraints.truncate(start.constraints);
        m.reactions.truncate(start.reactions);
        m.events.truncate(start.events);
        self.reindex();
    }

    /// The contained merge behind the guarded push entry points: the
    /// degradation ladder of ISSUE 6. Rung one is the pipelined DAG
    /// executor (when the push engages it) with per-pass deadline checks
    /// and contained worker panics; on a fault the push is rolled back
    /// and retried once on the serial reference path, which produces the
    /// identical result ([`crate::guard::PushOutcome::degraded`] records
    /// the fault). A serial-path panic is contained too: the accumulator
    /// is rolled back to its exact pre-push state and the fault returned.
    fn merge_model_guarded(
        &mut self,
        inc: &Incoming<'_>,
        meter: Option<&Meter>,
    ) -> Result<PushOutcome, ExecError> {
        let log_start = self.log.events.len();
        // Captured before the push runs: a fault must roll a COW session
        // all the way back to the fully shared base, not to a half-cloned
        // accumulator.
        let was_shared = self.accum.is_shared();
        let start = self.begin_push(inc);

        let mut degraded = None;
        if let Some(workers) = self.pipeline_workers(inc) {
            let pool = self.ensure_pool();
            match pipeline::run(self, inc, workers, &pool, meter) {
                Ok(()) => {
                    self.finish_push(start, false);
                    return Ok(PushOutcome::clean());
                }
                Err(fault) => {
                    self.rollback_push(start, log_start, was_shared);
                    degraded = Some(fault);
                    // Re-seed the per-push state the rollback discarded
                    // before the serial retry.
                    self.begin_push(inc);
                }
            }
        }

        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.merge_passes_serial(inc)
        }));
        match attempt {
            Ok(()) => {
                self.finish_push(start, false);
                Ok(PushOutcome { degraded })
            }
            Err(payload) => {
                self.rollback_push(start, log_start, was_shared);
                Err(ExecError::Panicked {
                    site: Site::Push(self.pushes - 1),
                    detail: crate::guard::panic_detail(payload.as_ref()),
                })
            }
        }
    }

    /// Should this push run the pipelined merge, and with how many
    /// workers? The pipeline needs precomputed incoming keys (their
    /// free-reference sets feed the dependency analysis) and a push big
    /// enough to be worth scheduling — the same
    /// [`ComposeOptions::parallel_push_threshold`] gate the within-push
    /// key fan-out uses.
    ///
    /// [`ComposeOptions::pipeline_threads`] is an **upper bound**: the
    /// resolved worker count is capped at the host's available
    /// parallelism, because a push's scoped workers are CPU-bound — extra
    /// threads beyond the cores can only add context-switch churn, never
    /// overlap. An *explicit* setting engages the pipelined executor even
    /// when the cap resolves to one worker (the dependency-DAG executor
    /// then runs its cost-priority schedule on the calling thread, no
    /// spawns); the automatic setting (`0`) falls back to the plain
    /// serial pass order on single-core hosts instead.
    ///
    /// [`ComposeOptions::parallel_push_threshold`]: crate::options::ComposeOptions::parallel_push_threshold
    /// [`ComposeOptions::pipeline_threads`]: crate::options::ComposeOptions::pipeline_threads
    fn pipeline_workers(&self, inc: &Incoming<'_>) -> Option<usize> {
        if !self.options.merge_pipeline || inc.keys.is_none() {
            return None;
        }
        if keyed_components(inc.model) < self.options.parallel_push_threshold {
            return None;
        }
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        match self.options.pipeline_threads {
            0 if host >= 2 => Some(host),
            0 => None,
            n => Some(n.min(host).max(1)),
        }
    }

    /// Take everything the merge passes mutate out of the session for the
    /// duration of one push: COW wrappers over the shared base when the
    /// accumulator is still [`Accum::Shared`], plain moved-out owned state
    /// otherwise. Must be paired with
    /// [`CompositionSession::restore_cow_state`] on every exit path
    /// (including unwinds), or the accumulator is left empty.
    pub(crate) fn take_cow_state(&mut self) -> CowState {
        match &mut self.accum {
            Accum::Shared(base) => CowState::from_shared(base, &mut self.delta),
            Accum::Owned(model) => {
                CowState::from_owned(model, &mut self.idx, &mut self.keys, &mut self.delta)
            }
        }
    }

    /// Put one push's worked state back into the session. Three cases:
    /// everything still shared — the accumulator stays [`Accum::Shared`]
    /// and only the per-push deltas move (the zero-copy push); something
    /// materialised under a shared accumulator — consolidate every kind to
    /// owned (untouched kinds clone from the base here, once) and flip to
    /// [`Accum::Owned`]; accumulator already owned — move the parts back
    /// verbatim.
    pub(crate) fn restore_cow_state(&mut self, st: CowState) {
        if self.accum.is_shared() && !st.any_materialised() {
            debug_assert!(
                !self.taken.has_additions(),
                "a push that registered fresh IDs must have materialised"
            );
            st.restore_delta(&mut self.delta);
            return;
        }
        let shared_before = self.accum.is_shared();
        let (model, idx, keys) = st.into_owned_parts(self.accum.model(), &mut self.delta);
        self.accum = Accum::Owned(model);
        self.idx = idx;
        self.keys = keys;
        if shared_before {
            // The accumulator's contents just diverged from the base; its
            // adopted values no longer describe them. The next push
            // re-collects (or seeds the incremental store) from the owned
            // model via the established begin_push paths.
            self.base_ivs = None;
        }
    }

    /// Run the twelve passes in Fig. 4 order over the session's own state
    /// — the serial schedule, and the reference the pipelined path is
    /// property-tested against. The pass state is taken out as a
    /// [`CowState`] and restored on both the success and unwind paths, so
    /// a pass panic never strands a half-taken session (the guarded
    /// caller's rollback then sees a structurally whole accumulator).
    fn merge_passes_serial(&mut self, inc: &Incoming<'_>) {
        guard::fail_point(Site::Push(self.pushes.saturating_sub(1)));
        let mut st = self.take_cow_state();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_passes_serial(&mut st, inc)
        }));
        self.restore_cow_state(st);
        if let Err(payload) = attempt {
            std::panic::resume_unwind(payload);
        }
    }

    fn run_passes_serial(&mut self, st: &mut CowState, inc: &Incoming<'_>) {
        macro_rules! env {
            () => {
                &mut PassEnv {
                    options: self.options,
                    maps: MapStore::Single {
                        table: &mut self.push_maps,
                        mask: &mut self.push_mask,
                    },
                    taken: TakenStore::Single(&mut self.taken),
                    log: &mut self.log,
                    iv_a: match &self.incremental {
                        Some(store) => IvA::Store(store),
                        None => IvA::Snap(&self.iv_a),
                    },
                    iv_b: &self.iv_b,
                }
            };
        }
        passes::functions(
            env!(),
            &mut FunctionsMut {
                list: &mut st.functions,
                by_id: &mut st.functions_by_id,
                by_content: &mut st.functions_by_content,
                delta_by_content: &mut st.functions_delta,
                keys: &mut st.functions_keys,
            },
            inc,
        );
        passes::units(
            env!(),
            &mut UnitsMut {
                list: &mut st.units,
                by_id: &mut st.units_by_id,
                by_content: &mut st.units_by_content,
                keys: &mut st.units_keys,
            },
            inc,
        );
        passes::compartment_types(
            env!(),
            &mut CompartmentTypesMut {
                list: &mut st.compartment_types,
                by_id: &mut st.compartment_types_by_id,
                by_name: &mut st.compartment_types_by_name,
                delta_by_name: &mut st.compartment_types_delta,
            },
            inc,
        );
        passes::species_types(
            env!(),
            &mut SpeciesTypesMut {
                list: &mut st.species_types,
                by_id: &mut st.species_types_by_id,
                by_name: &mut st.species_types_by_name,
                delta_by_name: &mut st.species_types_delta,
            },
            inc,
        );
        passes::compartments(
            env!(),
            &mut CompartmentsMut {
                list: &mut st.compartments,
                by_id: &mut st.compartments_by_id,
                by_name: &mut st.compartments_by_name,
                delta_by_name: &mut st.compartments_delta,
            },
            &UnitsRead { list: &st.units, by_id: &st.units_by_id },
            inc,
        );
        passes::species(
            env!(),
            &mut SpeciesMut {
                list: &mut st.species,
                by_id: &mut st.species_by_id,
                by_name: &mut st.species_by_name,
                delta_by_name: &mut st.species_delta,
            },
            &UnitsRead { list: &st.units, by_id: &st.units_by_id },
            &CompartmentsRead { list: &st.compartments, by_id: &st.compartments_by_id },
            inc,
        );
        passes::parameters(
            env!(),
            &mut ParametersMut { list: &mut st.parameters, by_id: &mut st.parameters_by_id },
            &UnitsRead { list: &st.units, by_id: &st.units_by_id },
            inc,
        );
        passes::initial_assignments(
            env!(),
            &mut AssignmentsMut {
                list: &mut st.assignments,
                by_symbol: &mut st.assignments_by_symbol,
            },
            inc,
        );
        passes::rules(
            env!(),
            &mut RulesMut {
                list: &mut st.rules,
                by_content: &mut st.rules_by_content,
                by_variable: &mut st.rules_by_variable,
                delta_by_content: &mut st.rules_delta,
            },
            inc,
        );
        passes::constraints(
            env!(),
            &mut ConstraintsMut {
                list: &mut st.constraints,
                by_content: &mut st.constraints_by_content,
                delta_by_content: &mut st.constraints_delta,
            },
            inc,
        );
        passes::reactions(
            env!(),
            &mut ReactionsMut {
                list: &mut st.reactions,
                by_id: &mut st.reactions_by_id,
                by_content: &mut st.reactions_by_content,
                delta_by_content: &mut st.reactions_delta,
                keys: &mut st.reactions_keys,
            },
            &UnitsRead { list: &st.units, by_id: &st.units_by_id },
            inc,
        );
        passes::events(
            env!(),
            &mut EventsMut {
                list: &mut st.events,
                by_id: &mut st.events_by_id,
                by_content: &mut st.events_by_content,
                delta_by_content: &mut st.events_delta,
                keys: &mut st.events_keys,
            },
            inc,
        );
    }

    /// Fold this push's additions into the persistent indexes under their
    /// canonical merged-side keys (the keys a from-scratch index rebuild
    /// would compute), extend the key cache, and roll the push's mappings
    /// into the cumulative map. A `final_push` skips the index/key
    /// fix-ups — nothing will consume them.
    fn finish_push(&mut self, start: PushStart, final_push: bool) {
        if final_push {
            self.delta.clear();
            self.mappings.extend(self.push_maps.drain());
            return;
        }
        // Feed the incremental value store exactly the components this
        // push appended (already renamed/mapped — the merged model is the
        // source of truth); it re-evaluates only the affected dependency
        // closure, O(push), where the re-collect path is O(accumulator).
        // A still-shared accumulator appended nothing and has no store:
        // every range below is empty and the loops cost zero.
        if let Some(store) = &mut self.incremental {
            store.absorb(
                self.accum.model(),
                &ValueDelta {
                    functions: start.functions,
                    compartments: start.compartments,
                    species: start.species,
                    parameters: start.parameters,
                    initial_assignments: start.initial_assignments,
                },
            );
        }
        let cache = self.cache_keys();

        let options = self.options;
        let merged = self.accum.model();
        for pos in start.functions..merged.function_definitions.len() {
            let key = equality::function_key(options, &merged.function_definitions[pos], &NoMap);
            let key: Arc<str> = Arc::from(key.as_str());
            self.idx.functions_by_content.insert_shared(&key, pos);
            if cache {
                self.keys.functions.push(key);
            }
        }
        // Units need no fix-up: their content key is invariant under
        // renaming, so both indexes were final at insertion time.
        let _ = start.units;
        for pos in start.compartment_types..merged.compartment_types.len() {
            let t = &merged.compartment_types[pos];
            self.idx
                .compartment_types_by_name
                .insert(&equality::name_key(options, &t.id, t.name.as_deref()), pos);
        }
        for pos in start.species_types..merged.species_types.len() {
            let t = &merged.species_types[pos];
            self.idx
                .species_types_by_name
                .insert(&equality::name_key(options, &t.id, t.name.as_deref()), pos);
        }
        for pos in start.compartments..merged.compartments.len() {
            let c = &merged.compartments[pos];
            self.idx
                .compartments_by_name
                .insert(&equality::name_key(options, &c.id, c.name.as_deref()), pos);
        }
        for pos in start.species..merged.species.len() {
            let s = &merged.species[pos];
            self.idx
                .species_by_name
                .insert(&equality::name_key(options, &s.id, s.name.as_deref()), pos);
        }
        // Conflict-renamed parameters are (deliberately) not visible to
        // by-id lookups within their own push; surface them now.
        for pos in start.parameters..merged.parameters.len() {
            self.idx.parameters_by_id.insert(&merged.parameters[pos].id, pos);
        }
        for pos in start.rules..merged.rules.len() {
            let key = equality::rule_key(options, &merged.rules[pos], &NoMap);
            self.idx.rules_by_content.insert(&key, pos);
        }
        for pos in start.constraints..merged.constraints.len() {
            let key = equality::constraint_key(options, &merged.constraints[pos].math, &NoMap);
            self.idx.constraints_by_content.insert(&key, pos);
        }
        if self.options().cache_patterns {
            for pos in start.reactions..merged.reactions.len() {
                let key = equality::reaction_key(options, &merged.reactions[pos], &NoMap);
                let key: Arc<str> = Arc::from(key.as_str());
                self.idx.reactions_by_content.insert_shared(&key, pos);
                if cache {
                    self.keys.reactions.push(key);
                }
            }
        }
        for pos in start.events..merged.events.len() {
            let key = equality::event_key(options, &merged.events[pos], &NoMap);
            let key: Arc<str> = Arc::from(key.as_str());
            self.idx.events_by_content.insert_shared(&key, pos);
            if cache {
                self.keys.events.push(key);
            }
        }
        self.delta.clear();
        self.mappings.extend(self.push_maps.drain());
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::{compose_many, Composer};
    use sbml_model::builder::ModelBuilder;

    fn chain_model(i: usize) -> Model {
        ModelBuilder::new(format!("m{i}"))
            .compartment("cell", 1.0)
            .species(&format!("S{i}"), i as f64)
            .species(&format!("S{}", i + 1), 0.0)
            .parameter(&format!("k{i}"), 0.1 * (i + 1) as f64)
            .reaction(
                &format!("r{i}"),
                &[format!("S{i}").as_str()],
                &[format!("S{}", i + 1).as_str()],
                &format!("k{i}*S{i}"),
            )
            .build()
    }

    #[test]
    fn session_equals_pairwise_fold_on_chain() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let folded = compose_many(&composer, &models);

        let mut session = CompositionSession::new(&options);
        for m in &models {
            session.push(m);
        }
        let chained = session.finish();

        assert_eq!(chained.model, folded.model);
        assert_eq!(chained.log.events, folded.log.events);
        assert_eq!(chained.mappings, folded.mappings);
    }

    #[test]
    fn empty_pushes_follow_pairwise_edges() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let full = chain_model(3);
        let empty_a = Model::new("left_empty");
        let empty_b = Model::new("right_empty");

        // compose(empty, empty) keeps the second model — so must a session.
        let models = [empty_a.clone(), empty_b.clone()];
        let folded = compose_many(&composer, &models);
        let mut session = CompositionSession::new(&options);
        session.push(&empty_a);
        session.push(&empty_b);
        assert_eq!(session.finish().model, folded.model);

        // empty then full: the full model becomes the base.
        let mut session = CompositionSession::new(&options);
        session.push(&empty_a);
        session.push(&full);
        assert_eq!(session.finish().model, full);

        // full then empty: unchanged, no log events.
        let mut session = CompositionSession::new(&options);
        session.push(&full);
        session.push(&empty_b);
        let result = session.finish();
        assert_eq!(result.model, full);
        assert!(result.log.events.is_empty());
    }

    #[test]
    fn push_owned_moves_the_base() {
        let options = ComposeOptions::default();
        let a = chain_model(0);
        let expected = a.clone();
        let mut session = CompositionSession::new(&options);
        session.push_owned(a);
        session.push_owned(chain_model(1));
        assert_eq!(session.pushes(), 2);
        let result = session.finish();
        assert_eq!(result.model.id, expected.id);
        assert_eq!(result.model.species.len(), 3); // S0, S1, S2 — S1 shared
    }

    #[test]
    fn with_base_equals_compose() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let a = chain_model(0);
        let b = chain_model(1);
        let pairwise = composer.compose(&a, &b);

        let mut session = CompositionSession::with_base(&options, a.clone());
        session.push(&b);
        let chained = session.finish();
        assert_eq!(chained.model, pairwise.model);
        assert_eq!(chained.log.events, pairwise.log.events);
        assert_eq!(chained.mappings, pairwise.mappings);
    }

    #[test]
    fn self_merge_chain_is_idempotent() {
        let options = ComposeOptions::default();
        let m = chain_model(2);
        let mut session = CompositionSession::new(&options);
        for _ in 0..5 {
            session.push(&m);
        }
        let result = session.finish();
        assert_eq!(result.model.species.len(), m.species.len());
        assert_eq!(result.model.reactions.len(), m.reactions.len());
        assert_eq!(result.model.parameters.len(), m.parameters.len());
        assert_eq!(result.log.conflict_count(), 0);
    }

    #[test]
    fn prepared_pushes_equal_raw_pushes() {
        let options = ComposeOptions::default();
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let mut raw = CompositionSession::new(&options);
        for m in &models {
            raw.push(m);
        }
        let raw = raw.finish();

        let mut prepared = CompositionSession::new(&options);
        for m in &models {
            prepared.push_prepared(&PreparedModel::new(m, &options));
        }
        assert_eq!(prepared.pushes(), models.len());
        let prepared = prepared.finish();

        assert_eq!(prepared.model, raw.model);
        assert_eq!(prepared.log.events, raw.log.events);
        assert_eq!(prepared.mappings, raw.mappings);
    }

    #[test]
    fn with_prepared_base_equals_compose() {
        let options = ComposeOptions::default();
        let composer = crate::composer::Composer::new(options.clone());
        let (a, b) = (chain_model(0), chain_model(1));
        let pairwise = composer.compose(&a, &b);

        let pa = PreparedModel::new(&a, &options);
        let pb = PreparedModel::new(&b, &options);
        let mut session = CompositionSession::with_prepared_base(&options, &pa);
        session.push_prepared(&pb);
        let chained = session.finish();
        assert_eq!(chained.model, pairwise.model);
        assert_eq!(chained.log.events, pairwise.log.events);
        assert_eq!(chained.mappings, pairwise.mappings);
    }

    #[test]
    fn prepared_and_raw_pushes_interleave() {
        let options = ComposeOptions::default();
        let models: Vec<Model> = (0..4).map(chain_model).collect();
        let mut raw = CompositionSession::new(&options);
        let mut mixed = CompositionSession::new(&options);
        for (i, m) in models.iter().enumerate() {
            raw.push(m);
            if i % 2 == 0 {
                mixed.push_prepared(&PreparedModel::new(m, &options));
            } else {
                mixed.push(m);
            }
        }
        let (raw, mixed) = (raw.finish(), mixed.finish());
        assert_eq!(mixed.model, raw.model);
        assert_eq!(mixed.log.events, raw.log.events);
        assert_eq!(mixed.mappings, raw.mappings);
    }

    #[test]
    fn prepared_function_param_shadowing_a_mapped_id() {
        // Regression: model B's function f2 has a *parameter* named like
        // another component that gets mapped (g → h). The raw path
        // renames the bare body (where the param is a free id), so the
        // prepared path must not treat the lambda-bound view's emptier
        // reference set as clean.
        use sbml_math::infix;
        use sbml_model::FunctionDefinition;

        let mut a = ModelBuilder::new("a").compartment("cell", 1.0).build();
        a.function_definitions.push(FunctionDefinition::new(
            "h",
            vec!["x".into()],
            infix::parse("x*2").unwrap(),
        ));
        let mut b = ModelBuilder::new("b").compartment("cell", 1.0).build();
        b.function_definitions.push(FunctionDefinition::new(
            "g",
            vec!["x".into()],
            infix::parse("x*2").unwrap(), // content-matches h ⇒ mapping g → h
        ));
        b.function_definitions.push(FunctionDefinition::new(
            "f2",
            vec!["g".into()], // param shadows the mapped id
            infix::parse("g+1").unwrap(),
        ));

        let options = ComposeOptions::default();
        let composer = crate::composer::Composer::new(options.clone());
        let raw = composer.compose(&a, &b);
        let prepared = composer.compose_prepared(&composer.prepare(&a), &composer.prepare(&b));
        assert_eq!(prepared.model, raw.model);
        assert_eq!(prepared.log.events, raw.log.events);
        assert_eq!(prepared.mappings, raw.mappings);
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn same_group_count_different_synonyms_rejected() {
        // Regression: two synonym tables with equal group counts but
        // different contents must not fingerprint equal.
        use bio_synonyms::SynonymTable;
        let mut table_a = SynonymTable::new();
        table_a.add_group(["glucose", "dextrose"]);
        let mut table_b = SynonymTable::new();
        table_b.add_group(["ATP", "adenosine triphosphate"]);
        let opts_a = ComposeOptions::default().with_synonyms(table_a);
        let opts_b = ComposeOptions::default().with_synonyms(table_b);
        let p = PreparedModel::new(&chain_model(0), &opts_a);
        let mut session = CompositionSession::new(&opts_b);
        session.push_prepared(&p);
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn mismatched_preparation_is_rejected() {
        let heavy = ComposeOptions::default();
        let light = ComposeOptions::light();
        let p = PreparedModel::new(&chain_model(0), &light);
        let mut session = CompositionSession::new(&heavy);
        session.push_prepared(&p);
    }

    #[test]
    fn ablations_do_not_change_output() {
        let heavy = ComposeOptions::default();
        let no_key_cache = ComposeOptions::default().with_content_key_cache(false);
        let no_pattern_cache = ComposeOptions::default().with_pattern_cache(false);
        let btree = ComposeOptions::default().with_index(crate::IndexKind::BTree);
        let linear = ComposeOptions::default().with_index(crate::IndexKind::LinearScan);
        let recollect = ComposeOptions::default().with_incremental_initial_values(false);
        let always_parallel = ComposeOptions::default().with_parallel_push_threshold(0);
        let never_parallel = ComposeOptions::default().with_parallel_push_threshold(usize::MAX);
        let models: Vec<Model> = (0..5).map(chain_model).collect();

        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };

        let baseline = run(&heavy);
        for options in [
            &no_key_cache,
            &no_pattern_cache,
            &btree,
            &linear,
            &recollect,
            &always_parallel,
            &never_parallel,
        ] {
            let other = run(options);
            assert_eq!(other.model, baseline.model);
            assert_eq!(other.log.events, baseline.log.events);
            assert_eq!(other.mappings, baseline.mappings);
        }
    }

    #[test]
    fn incremental_values_track_collect_across_pushes() {
        // After every push, the session's value snapshot must equal a
        // fresh batch collect over the accumulator — with the store on,
        // off, and across prepared/raw interleavings.
        let incremental = ComposeOptions::default();
        let recollect = ComposeOptions::default().with_incremental_initial_values(false);
        for options in [&incremental, &recollect] {
            let mut session = CompositionSession::new(options);
            for (i, m) in (0..5).map(chain_model).enumerate() {
                if i % 2 == 0 {
                    session.push(&m);
                } else {
                    session.push_prepared(&PreparedModel::new(&m, options));
                }
                assert_eq!(
                    session.current_initial_values(),
                    crate::initial_values::collect(session.model()),
                    "push {i}"
                );
            }
        }
    }

    #[test]
    fn incremental_values_survive_prepared_base_adoption() {
        let options = ComposeOptions::default();
        let base = PreparedModel::new(&chain_model(0), &options);
        let mut session = CompositionSession::with_prepared_base(&options, &base);
        session.push(&chain_model(1));
        assert_eq!(
            session.current_initial_values(),
            crate::initial_values::collect(session.model())
        );
        session.push(&chain_model(2));
        assert_eq!(
            session.current_initial_values(),
            crate::initial_values::collect(session.model())
        );
    }

    /// A conflict-heavy model: species ids diverge per version but share
    /// display names (name-mapped), parameters share ids with diverging
    /// values (conflict-renamed), and rules/constraints/reactions/events
    /// all reference the mapped ids — every math-bearing pass has to
    /// revalidate its cached keys under live mappings.
    fn conflict_model(v: usize) -> Model {
        use sbml_math::infix;
        use sbml_model::{Event, EventAssignment, Rule};

        let mut b = ModelBuilder::new(format!("cm{v}")).compartment("cell", 1.0);
        for j in 0..6 {
            b = b.species_named(&format!("s{v}_{j}"), &format!("spec{j}"), j as f64);
        }
        for j in 0..4 {
            b = b.parameter(&format!("k{j}"), 0.1 * (v as f64 + 1.0) * (j as f64 + 1.0));
        }
        for j in 0..4 {
            b = b.parameter(&format!("rv{v}_{j}"), 0.0);
        }
        for j in 0..4 {
            let (a, c) = (format!("s{v}_{}", j % 6), format!("s{v}_{}", (j + 1) % 6));
            b = b.reaction(
                &format!("r{v}_{j}"),
                &[a.as_str()],
                &[c.as_str()],
                &format!("k{j}*{a} + k{}*{c}", (j + 1) % 4),
            );
        }
        let mut m = b.build();
        for j in 0..3 {
            m.rules.push(Rule::Assignment {
                variable: format!("rv{v}_{j}"),
                math: infix::parse(&format!("k{j} * s{v}_{j} + s{v}_{}", j + 1)).unwrap(),
            });
        }
        for j in 0..2 {
            m.constraints.push(sbml_model::rule::Constraint {
                math: infix::parse(&format!("s{v}_{j} >= 0")).unwrap(),
                message: None,
            });
        }
        for j in 0..2 {
            let mut ev = Event::new(infix::parse(&format!("s{v}_{j} > k{j}")).unwrap());
            ev.id = Some(format!("ev{v}_{j}"));
            ev.assignments.push(EventAssignment {
                variable: format!("s{v}_{j}"),
                math: infix::parse(&format!("s{v}_{j} + 1")).unwrap(),
            });
            m.events.push(ev);
        }
        m
    }

    #[test]
    fn pipelined_merge_equals_serial_across_thread_counts() {
        // Conflict-heavy pushes: species mapped by name, parameters
        // renamed on value conflicts, every later pass revalidating keys
        // under those mappings — the shape the dependency DAG must get
        // exactly right.
        let models: Vec<Model> = (0..4).map(conflict_model).collect();
        let serial_opts = ComposeOptions::default()
            .with_merge_pipeline(false)
            .with_parallel_push_threshold(0);
        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };
        let serial = run(&serial_opts);
        assert!(
            serial.log.events.iter().any(|e| e.kind == crate::EventKind::Mapped),
            "conflict corpus must actually produce mappings"
        );
        for threads in [1, 2, 3, 4, 8] {
            let opts = ComposeOptions::default()
                .with_parallel_push_threshold(0)
                .with_pipeline_threads(threads);
            let out = run(&opts);
            assert_eq!(out.model, serial.model, "threads={threads}");
            assert_eq!(out.log.events, serial.log.events, "threads={threads}");
            assert_eq!(out.mappings, serial.mappings, "threads={threads}");
        }
    }

    #[test]
    fn pipelined_merge_handles_cross_kind_id_families() {
        // Adversarial id overlaps across kinds: an incoming parameter and
        // an incoming species fighting over one id family, a function id
        // colliding with a pre-existing species id, and references to the
        // winners from math-bearing kinds. These force the taken-registry
        // family edges and the cross-kind mapping-shard edges.
        use sbml_math::infix;
        use sbml_model::{FunctionDefinition, Rule};

        let mut a = ModelBuilder::new("a")
            .compartment("cell", 1.0)
            .species("x", 1.0)
            .species("x_1", 2.0)
            .parameter("k", 1.0)
            .build();
        a.function_definitions.push(FunctionDefinition::new(
            "f",
            vec!["p".into()],
            infix::parse("p*2").unwrap(),
        ));

        let mut b = ModelBuilder::new("b")
            .compartment("cell", 1.0)
            // Species `x` id-hits A's; `x_2` is fresh but probes the same
            // family; parameter `x_9` claims into the family from a later
            // pass.
            .species("x", 9.0) // conflicting value -> Conflict, first wins
            .species("x_2", 3.0)
            .parameter("x_9", 5.0)
            .parameter("k", 7.0) // value conflict -> renamed k_1, mapping k->k_1
            .build();
        // Function under A's species id: claim_id must rename it.
        b.function_definitions.push(FunctionDefinition::new(
            "x_1",
            vec!["p".into()],
            infix::parse("p+3").unwrap(),
        ));
        b.rules.push(Rule::Assignment {
            variable: "x_9".into(),
            math: infix::parse("k * x + x_2").unwrap(),
        });
        let mut r = sbml_model::Reaction::new("rx");
        r.reactants.push(sbml_model::SpeciesReference::new("x"));
        r.products.push(sbml_model::SpeciesReference::new("x_2"));
        r.kinetic_law =
            Some(sbml_model::KineticLaw::new(infix::parse("x_1(k) * x").unwrap()));
        b.reactions.push(r);

        let serial_opts = ComposeOptions::default()
            .with_merge_pipeline(false)
            .with_parallel_push_threshold(0);
        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            session.push(&a);
            session.push(&b);
            session.finish()
        };
        let serial = run(&serial_opts);
        for threads in [2, 4, 8] {
            let opts = ComposeOptions::default()
                .with_parallel_push_threshold(0)
                .with_pipeline_threads(threads);
            let out = run(&opts);
            assert_eq!(out.model, serial.model, "threads={threads}");
            assert_eq!(out.log.events, serial.log.events, "threads={threads}");
            assert_eq!(out.mappings, serial.mappings, "threads={threads}");
        }
    }

    #[test]
    fn key_rename_ablation_does_not_change_output() {
        let models: Vec<Model> = (0..4).map(conflict_model).collect();
        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };
        let fast = run(&ComposeOptions::default().with_parallel_push_threshold(0));
        let slow = run(
            &ComposeOptions::default()
                .with_parallel_push_threshold(0)
                .with_incremental_key_rename(false),
        );
        assert_eq!(fast.model, slow.model);
        assert_eq!(fast.log.events, slow.log.events);
        assert_eq!(fast.mappings, slow.mappings);
    }

    #[test]
    fn prepared_models_survive_pipeline_setting_changes() {
        // Pipeline knobs are execution details: a preparation built under
        // pipeline-off options must be accepted (and produce identical
        // output) under pipeline-on options and vice versa.
        let off = ComposeOptions::default()
            .with_merge_pipeline(false)
            .with_parallel_push_threshold(0);
        let on = ComposeOptions::default()
            .with_parallel_push_threshold(0)
            .with_pipeline_threads(4);
        let models: Vec<Model> = (0..3).map(conflict_model).collect();
        let prepared_off: Vec<PreparedModel> =
            models.iter().map(|m| PreparedModel::new(m, &off)).collect();

        let run = |options: &ComposeOptions, prepared: &[PreparedModel]| {
            let mut session = CompositionSession::new(options);
            for p in prepared {
                session.push_prepared(p);
            }
            session.finish()
        };
        let serial = run(&off, &prepared_off);
        let pipelined = run(&on, &prepared_off); // cross-setting acceptance
        assert_eq!(pipelined.model, serial.model);
        assert_eq!(pipelined.log.events, serial.log.events);
        assert_eq!(pipelined.mappings, serial.mappings);
    }

    #[test]
    fn parallel_push_threshold_does_not_change_output() {
        // Force the within-push parallel key path for every push (and the
        // one-shot compose entry points, which ride push_final) and
        // compare against the never-parallel path.
        let serial_opts = ComposeOptions::default().with_parallel_push_threshold(usize::MAX);
        let parallel_opts = ComposeOptions::default().with_parallel_push_threshold(0);
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };
        let serial = run(&serial_opts);
        let parallel = run(&parallel_opts);
        assert_eq!(parallel.model, serial.model);
        assert_eq!(parallel.log.events, serial.log.events);
        assert_eq!(parallel.mappings, serial.mappings);

        let pair_serial = Composer::new(serial_opts.clone()).compose(&models[0], &models[1]);
        let pair_parallel = Composer::new(parallel_opts.clone()).compose(&models[0], &models[1]);
        assert_eq!(pair_parallel.model, pair_serial.model);
        assert_eq!(pair_parallel.log.events, pair_serial.log.events);
        assert_eq!(pair_parallel.mappings, pair_serial.mappings);
    }
}
