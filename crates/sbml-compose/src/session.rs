//! The incremental composition engine.
//!
//! [`CompositionSession`] owns the accumulating merged [`Model`] together
//! with *live* per-kind [`ComponentIndex`] structures and a cache of
//! canonical content keys, so a chain composition
//! (`push(m1); push(m2); …`) does the work the paper's pairwise algorithm
//! would redo from scratch at every step exactly once:
//!
//! * **no accumulator clones** — `compose(a, b)` starts from `a.clone()`,
//!   so a left fold over an *n*-model chain clones the ever-growing result
//!   *n* times; a session keeps the accumulator in place and moves pushed
//!   models' components instead,
//! * **persistent indexes** — the by-id / by-name / by-content indexes of
//!   every component kind are updated in place as components are inserted
//!   rather than rebuilt from the whole accumulator on every push,
//! * **cached content keys** — the canonical key of a merged component
//!   (`name_key`, `math_key`-derived content keys, `unit_key`) is computed
//!   once, interned as `Arc<str>` shared between the index and the cache,
//!   and reused by every later push instead of being re-derived,
//! * **incremental initial values** — the accumulator's evaluated initial
//!   values (the paper's pre-composition collection step) are held in an
//!   [`IncrementalValues`] store that is seeded at the first merge and
//!   extended with each push's additions through a dependency graph of
//!   initial assignments, instead of re-running [`collect`] over the
//!   whole accumulator before every push,
//! * **within-push parallel keys** — a raw pushed model at or above
//!   [`ComposeOptions::parallel_push_threshold`] keyed components gets its
//!   canonical content keys computed on a scoped thread pool *before* the
//!   serial merge pass consumes them (the per-model analogue of
//!   [`crate::BatchComposer::prepare_corpus`]'s across-model fan-out);
//!   below the threshold, and whenever a key's referenced ids have been
//!   remapped mid-push, keys are computed inline as before.
//!
//! # Anatomy and cost of one push
//!
//! A push runs the paper's Fig. 4 pipeline over the incoming model `b`
//! against the accumulator `A` (sizes `|b|`, `|A|`):
//!
//! | phase | work | cost |
//! |---|---|---|
//! | per-push reset | clear mapping table + delta indexes | O(1) amortised |
//! | initial values | incremental store lookup (seeded once) | O(1) per push (O(&#124;A&#124;) once); O(&#124;A&#124;) per push with the store ablated |
//! | incoming keys | serial inline, or precomputed on the pool at/above the threshold | O(&#124;b&#124;) work, ÷ cores wall-clock when parallel |
//! | merge passes | functions → units → compartment/species types → compartments → species → parameters → initial assignments → rules → constraints → reactions → events; each component is an O(1) expected index probe (by id, then by content/name) plus a conflict check | O(&#124;b&#124;) |
//! | finish | fold delta indexes under canonical merged-side keys, extend the key cache and the value store with the push's additions | O(additions) |
//!
//! Nothing in a push scales with `|A|` (the two O(n)-per-push costs the
//! ROADMAP listed — whole-accumulator value re-collection and serial key
//! computation — were removed by the incremental store and the parallel
//! key path respectively), so an n-model chain is O(total components)
//! plus index-probe constants, not O(n²).
//!
//! The output is bit-for-bit identical to a left fold of pairwise
//! [`Composer::compose`] calls — `tests/properties.rs` proves model, log
//! and mappings equality over randomized chains, across every semantics
//! level, ablation knob and thread count. Within one push the
//! session therefore mirrors a subtlety of the pairwise pass: a component
//! inserted *during* a push is indexed under its incoming (second-model)
//! key until the push ends, and under its canonical merged-side key
//! afterwards, exactly as a per-pass index rebuild would do. Additions are
//! staged in small per-push *delta* indexes and folded into the persistent
//! indexes when the push completes.
//!
//! [`Composer::compose`]: crate::composer::Composer::compose
//! [`ComposeOptions::parallel_push_threshold`]: crate::options::ComposeOptions::parallel_push_threshold

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use sbml_math::rewrite;
use sbml_model::{Compartment, Model, Parameter, Reaction, Species};
use sbml_units::convert::{
    conversion_factor, deterministic_to_stochastic, stochastic_to_deterministic, ReactionOrder,
};
use sbml_units::UnitDefinition;

use crate::composer::ComposeResult;
use crate::equality::MatchContext;
use crate::index::{ComponentIndex, FastSet};
use crate::initial_values::{collect, IncrementalValues, InitialValues, ValueDelta};
use crate::log::{EventKind, MergeLog};
use crate::options::{ComposeOptions, SemanticsLevel};
use crate::prepared::{refs_unmapped, IncomingKeys, Indexes, KeyCache, ModelAnalysis, PreparedModel};

/// The incoming side of one push: the model plus whatever precomputed
/// analysis is available for it. Raw pushes carry only the model; prepared
/// pushes also carry the [`PreparedModel`]'s incoming keys, per-kind
/// indexes and evaluated initial values.
struct Incoming<'m> {
    model: &'m Model,
    keys: Option<&'m IncomingKeys>,
    idx: Option<&'m Indexes>,
    ivs: Option<&'m Arc<InitialValues>>,
}

impl<'m> Incoming<'m> {
    /// A raw push: no prepared indexes or initial values, and content
    /// keys only when the within-push parallel path precomputed them — the
    /// merge passes then treat those exactly as prepared-model keys,
    /// cached while the referenced ids are unmapped and recomputed
    /// otherwise.
    fn raw_with_keys(model: &'m Model, keys: Option<&'m IncomingKeys>) -> Incoming<'m> {
        Incoming { model, keys, idx: None, ivs: None }
    }

    fn prepared(p: &'m PreparedModel) -> Incoming<'m> {
        Incoming {
            model: p.model(),
            keys: Some(&p.incoming),
            idx: Some(&p.analysis.idx),
            ivs: Some(&p.initial_values),
        }
    }

    /// Species lookup through the prepared index when available (ROADMAP:
    /// conflict-check lookups stop being linear scans), else the model's
    /// own linear scan. First-wins index semantics match first-match scans.
    fn species_by_id(&self, id: &str) -> Option<&'m Species> {
        match self.idx {
            Some(ix) => ix.species_by_id.get(id).map(|pos| &self.model.species[pos]),
            None => self.model.species_by_id(id),
        }
    }

    /// Compartment lookup, index-backed when prepared.
    fn compartment_by_id(&self, id: &str) -> Option<&'m Compartment> {
        match self.idx {
            Some(ix) => ix.compartments_by_id.get(id).map(|pos| &self.model.compartments[pos]),
            None => self.model.compartment_by_id(id),
        }
    }

    /// Resolve a units reference against this model, index-backed when
    /// prepared, falling back to SBML builtins.
    fn resolve_units(&self, units: Option<&str>) -> Option<UnitDefinition> {
        let id = units?;
        match self.idx {
            Some(ix) => {
                ix.units_by_id.get(id).map(|pos| self.model.unit_definitions[pos].clone())
            }
            None => self.model.unit_definitions.iter().find(|u| u.id == id).cloned(),
        }
        .or_else(|| sbml_units::definition::builtin(id))
    }
}

/// One incoming component's canonical key: a shared reference into the
/// [`PreparedModel`]'s key store, or a key computed on the spot. Cached
/// keys are only used where they are byte-identical to what the raw path
/// would compute (see [`crate::prepared`] module docs).
enum IncomingKey<'a> {
    Cached(&'a Arc<str>),
    Computed(String),
}

impl IncomingKey<'_> {
    fn as_str(&self) -> &str {
        match self {
            IncomingKey::Cached(k) => k,
            IncomingKey::Computed(s) => s,
        }
    }

    /// Intern as `Arc<str>`: refcount bump for cached keys, one allocation
    /// for computed ones.
    fn to_arc(&self) -> Arc<str> {
        match self {
            IncomingKey::Cached(k) => Arc::clone(k),
            IncomingKey::Computed(s) => Arc::from(s.as_str()),
        }
    }

    /// Insert into an index, sharing the `Arc` when cached.
    fn insert_into(&self, index: &mut ComponentIndex, pos: usize) -> bool {
        match self {
            IncomingKey::Cached(k) => index.insert_shared(k, pos),
            IncomingKey::Computed(s) => index.insert(s, pos),
        }
    }
}

/// Per-push staging indexes for components added during the current push,
/// keyed by their *incoming* (second-model) content/name key. Folded into
/// [`Indexes`] under canonical merged-side keys at push end.
#[derive(Debug, Clone)]
struct DeltaIndexes {
    functions_by_content: ComponentIndex,
    compartment_types_by_name: ComponentIndex,
    species_types_by_name: ComponentIndex,
    compartments_by_name: ComponentIndex,
    species_by_name: ComponentIndex,
    rules_by_content: ComponentIndex,
    constraints_by_content: ComponentIndex,
    reactions_by_content: ComponentIndex,
    events_by_content: ComponentIndex,
}

impl DeltaIndexes {
    fn new(options: &ComposeOptions) -> DeltaIndexes {
        let mk = || ComponentIndex::new(options.index);
        DeltaIndexes {
            functions_by_content: mk(),
            compartment_types_by_name: mk(),
            species_types_by_name: mk(),
            compartments_by_name: mk(),
            species_by_name: mk(),
            rules_by_content: mk(),
            constraints_by_content: mk(),
            reactions_by_content: mk(),
            events_by_content: mk(),
        }
    }

    fn clear(&mut self) {
        self.functions_by_content.clear();
        self.compartment_types_by_name.clear();
        self.species_types_by_name.clear();
        self.compartments_by_name.clear();
        self.species_by_name.clear();
        self.rules_by_content.clear();
        self.constraints_by_content.clear();
        self.reactions_by_content.clear();
        self.events_by_content.clear();
    }
}

/// The `K[...]` section of a canonical reaction key (see
/// [`MatchContext::reaction_key`]'s format
/// `rxn:R[..];P[..];M[..];K[math]:rev=bool`). The math section may
/// contain almost any character (light/none-semantics keys are infix
/// text with `=`, and patterns contain `[`/`]` for piecewise), so the
/// markers rely on position, not alphabet: participant items are
/// `id*stoich` (SBML ids are word characters, no `;` or `[`), making the
/// FIRST `;K[` the true section start, and nothing but the literal
/// `true`/`false` follows the terminator, making the LAST `]:rev=` the
/// true section end. Do not swap `find`/`rfind` here.
fn key_math_section(key: &str) -> Option<&str> {
    let start = key.find(";K[")? + 3;
    let end = key.rfind("]:rev=")?;
    key.get(start..end)
}

/// The taken-global-id registry: an immutable base set (shared by `Arc`
/// with a [`PreparedModel`] when one is adopted as the accumulator) plus
/// this session's own additions. Splitting the two makes adopting a
/// prepared base a refcount bump instead of a clone of every id string.
#[derive(Debug, Clone)]
struct IdRegistry {
    base: Arc<FastSet<String>>,
    added: FastSet<String>,
}

impl IdRegistry {
    fn new() -> IdRegistry {
        IdRegistry { base: Arc::new(FastSet::default()), added: FastSet::default() }
    }

    fn contains(&self, id: &str) -> bool {
        self.base.contains(id) || self.added.contains(id)
    }

    fn insert(&mut self, id: String) {
        self.added.insert(id);
    }

    /// Replace the whole registry with a new base set.
    fn reset(&mut self, base: Arc<FastSet<String>>) {
        self.base = base;
        self.added.clear();
    }
}

/// Component-list lengths at the start of a push; everything past these
/// positions was added by the push currently being folded in.
#[derive(Debug, Clone, Copy)]
struct PushStart {
    functions: usize,
    units: usize,
    compartment_types: usize,
    species_types: usize,
    compartments: usize,
    species: usize,
    parameters: usize,
    initial_assignments: usize,
    rules: usize,
    constraints: usize,
    reactions: usize,
    events: usize,
}

impl PushStart {
    fn of(model: &Model) -> PushStart {
        PushStart {
            functions: model.function_definitions.len(),
            units: model.unit_definitions.len(),
            compartment_types: model.compartment_types.len(),
            species_types: model.species_types.len(),
            compartments: model.compartments.len(),
            species: model.species.len(),
            parameters: model.parameters.len(),
            initial_assignments: model.initial_assignments.len(),
            rules: model.rules.len(),
            constraints: model.constraints.len(),
            reactions: model.reactions.len(),
            events: model.events.len(),
        }
    }
}

/// An in-progress chain composition; see the [module docs](self).
///
/// ```
/// use sbml_compose::{ComposeOptions, Composer, CompositionSession};
/// use sbml_model::builder::ModelBuilder;
///
/// let options = ComposeOptions::default();
/// let mut session = CompositionSession::new(&options);
/// for part in ["glycolysis", "tca"] {
///     let m = ModelBuilder::new(part)
///         .compartment("cell", 1.0)
///         .species("pyruvate", 0.0)
///         .build();
///     session.push(&m);
/// }
/// let result = session.finish();
/// assert_eq!(result.model.species.len(), 1); // pyruvate shared
/// ```
pub struct CompositionSession<'o> {
    ctx: MatchContext<'o>,
    merged: Model,
    log: MergeLog,
    mappings: HashMap<String, String>,
    taken: IdRegistry,
    iv_a: Arc<InitialValues>,
    iv_b: Arc<InitialValues>,
    /// Initial values of the current accumulator when they are already
    /// known (adopted from a [`PreparedModel`] base); consumed by the next
    /// push instead of re-running [`collect`] over the accumulator.
    base_ivs: Option<Arc<InitialValues>>,
    /// The accumulator's initial values, maintained incrementally across
    /// pushes (seeded at the first merge, extended with each push's
    /// additions). `None` when [`ComposeOptions::incremental_initial_values`]
    /// is off, when values are not collected at all, or before the first
    /// real merge.
    incremental: Option<IncrementalValues>,
    idx: Indexes,
    delta: DeltaIndexes,
    keys: KeyCache,
    pushes: usize,
}

impl<'o> CompositionSession<'o> {
    /// A session with an empty accumulator. The first non-empty pushed
    /// model becomes the base (its id is retained, per Fig. 5 line 25).
    pub fn new(options: &'o ComposeOptions) -> CompositionSession<'o> {
        CompositionSession {
            ctx: MatchContext::new(options),
            merged: Model::new("empty"),
            log: MergeLog::new(),
            mappings: HashMap::new(),
            taken: IdRegistry::new(),
            iv_a: Arc::new(InitialValues::default()),
            iv_b: Arc::new(InitialValues::default()),
            base_ivs: None,
            incremental: None,
            idx: Indexes::new(options),
            delta: DeltaIndexes::new(options),
            keys: KeyCache::default(),
            pushes: 0,
        }
    }

    /// A session whose accumulator starts as `base`, moved in without a
    /// clone.
    pub fn with_base(options: &'o ComposeOptions, base: Model) -> CompositionSession<'o> {
        let mut session = CompositionSession::new(options);
        session.merged = base;
        session.reindex();
        session
    }

    /// A session whose accumulator starts as a clone of a prepared model,
    /// adopting its precomputed indexes, content keys and initial values
    /// instead of re-deriving them (the per-pair `reindex` + `collect`
    /// cost of the raw path).
    ///
    /// Panics if `base` was prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint).
    pub fn with_prepared_base(
        options: &'o ComposeOptions,
        base: &PreparedModel,
    ) -> CompositionSession<'o> {
        base.check_options(options);
        let mut session = CompositionSession::new(options);
        session.adopt_prepared(base);
        session
    }

    /// The merged model so far.
    pub fn model(&self) -> &Model {
        &self.merged
    }

    /// The cumulative merge log across all pushes.
    pub fn log(&self) -> &MergeLog {
        &self.log
    }

    /// Cumulative ID mappings (pushed-model id → merged-model id), later
    /// pushes overriding earlier ones, as a pairwise fold would.
    pub fn mappings(&self) -> &HashMap<String, String> {
        &self.mappings
    }

    /// Number of models pushed so far.
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Merge one model into the accumulator (borrowing; components that
    /// end up in the result are cloned, the accumulator never is).
    pub fn push(&mut self, b: &Model) {
        self.pushes += 1;
        // Fig. 5 lines 1–2: an empty side returns the other unchanged.
        if self.merged.is_empty() {
            self.merged = b.clone();
            self.reindex();
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(b, false);
    }

    /// Merge one model by value: as [`CompositionSession::push`], but a
    /// model that becomes the base is moved, not cloned.
    pub fn push_owned(&mut self, b: Model) {
        self.pushes += 1;
        if self.merged.is_empty() {
            self.merged = b;
            self.reindex();
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(&b, false);
    }

    /// [`CompositionSession::push`] for a push known to be the last before
    /// [`CompositionSession::finish`]: skips maintenance work only a later
    /// push would read. Same output, internal-only.
    pub(crate) fn push_final(&mut self, b: &Model) {
        self.pushes += 1;
        if self.merged.is_empty() {
            // The model becomes the result as-is; no push follows, so the
            // indexes it would seed are never consulted.
            self.merged = b.clone();
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(b, true);
    }

    /// Final-push variant of [`CompositionSession::push_owned`].
    pub(crate) fn push_owned_final(&mut self, b: Model) {
        self.pushes += 1;
        if self.merged.is_empty() {
            self.merged = b;
            return;
        }
        if b.is_empty() {
            return;
        }
        self.merge_raw(&b, true);
    }

    /// Merge one prepared model, reusing its precomputed analysis: name,
    /// unit and (while the push has no ID mappings) content keys come from
    /// the preparation, conflict-check lookups go through its indexes, and
    /// its evaluated initial values replace a `collect` pass. A model that
    /// becomes the base also donates its base-side indexes and key cache,
    /// skipping the reindex.
    ///
    /// Output is bit-for-bit identical to [`CompositionSession::push`] on
    /// the same model (a property test enforces this). Panics if `p` was
    /// prepared under options with a different
    /// [fingerprint](ComposeOptions::fingerprint).
    pub fn push_prepared(&mut self, p: &PreparedModel) {
        p.check_options(self.options());
        self.pushes += 1;
        if self.merged.is_empty() {
            self.adopt_prepared(p);
            return;
        }
        if p.model().is_empty() {
            return;
        }
        self.merge_model(&Incoming::prepared(p), false);
    }

    /// Final-push variant of [`CompositionSession::push_prepared`].
    pub(crate) fn push_prepared_final(&mut self, p: &PreparedModel) {
        p.check_options(self.options());
        self.pushes += 1;
        if self.merged.is_empty() {
            self.merged = p.model().clone();
            return;
        }
        if p.model().is_empty() {
            return;
        }
        self.merge_model(&Incoming::prepared(p), true);
    }

    /// Finish, returning the composed model, cumulative log and mappings.
    pub fn finish(self) -> ComposeResult {
        ComposeResult { model: self.merged, log: self.log, mappings: self.mappings }
    }

    /// The evaluated initial values of the current accumulator — exactly
    /// what the next push's conflict checks will consult: empty when
    /// [`ComposeOptions::collect_initial_values`] is off, else the
    /// incremental store's view when it is active, else recomputed via
    /// [`collect`]. The equivalence property tests compare the store
    /// against a fresh `collect` after every push.
    pub fn current_initial_values(&self) -> InitialValues {
        if !self.options().collect_initial_values {
            return InitialValues::default();
        }
        match &self.incremental {
            Some(store) => store.snapshot(),
            None => collect(&self.merged),
        }
    }

    /// Shared tail of every raw push entry point: precompute content keys
    /// when the model clears the parallel threshold, then run the merge
    /// passes.
    fn merge_raw(&mut self, b: &Model, final_push: bool) {
        let keys = self.precomputed_push_keys(b);
        self.merge_model(&Incoming::raw_with_keys(b, keys.as_ref()), final_push);
    }

    /// Content keys for a raw push, computed up front on a scoped thread
    /// pool when the model clears
    /// [`ComposeOptions::parallel_push_threshold`] — the within-push
    /// analogue of [`crate::BatchComposer::prepare_corpus`]'s per-model
    /// fan-out. `None` below the threshold (the merge passes then compute
    /// keys inline, as before).
    fn precomputed_push_keys(&self, b: &Model) -> Option<IncomingKeys> {
        // Gate on the components that actually produce key jobs —
        // parameters and initial assignments have no canonical keys, so a
        // parameter-heavy model must not spawn workers for a handful of
        // name keys.
        let keyed = b.function_definitions.len()
            + b.unit_definitions.len()
            + b.compartment_types.len()
            + b.species_types.len()
            + b.compartments.len()
            + b.species.len()
            + b.rules.len()
            + b.constraints.len()
            + b.reactions.len()
            + b.events.len();
        if keyed < self.options().parallel_push_threshold {
            return None;
        }
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Some(IncomingKeys::build_parallel(b, self.options(), workers))
    }

    fn options(&self) -> &'o ComposeOptions {
        self.ctx.options
    }

    fn cache_keys(&self) -> bool {
        self.options().cache_content_keys
    }

    // ---------------------------------------------------------------
    // Index lifecycle
    // ---------------------------------------------------------------

    /// Rebuild every persistent index (and the key cache) from the
    /// current merged model. Only needed when the accumulator is replaced
    /// wholesale; pushes maintain the indexes incrementally.
    fn reindex(&mut self) {
        let analysis = ModelAnalysis::build(&self.merged, self.options(), None);
        self.taken.reset(analysis.taken);
        self.idx = analysis.idx;
        self.keys = analysis.keys;
        self.delta = DeltaIndexes::new(self.options());
        self.base_ivs = None;
        self.incremental = None;
    }

    /// Replace the accumulator with a clone of a prepared model, adopting
    /// its base-side analysis instead of rebuilding it.
    fn adopt_prepared(&mut self, p: &PreparedModel) {
        self.merged = p.model().clone();
        self.taken.reset(Arc::clone(&p.analysis.taken));
        self.idx = p.analysis.idx.clone();
        self.keys = p.analysis.keys.clone();
        self.delta = DeltaIndexes::new(self.options());
        self.incremental = None;
        self.base_ivs = self
            .options()
            .collect_initial_values
            .then(|| Arc::clone(&p.initial_values));
    }

    /// Run the Fig. 4 pipeline for one (non-empty) incoming model. With
    /// `final_push`, skip the end-of-push index and key-cache maintenance
    /// that only a subsequent push would consume (the merged model, log
    /// and mappings are unaffected) — used by the one-shot entry points.
    fn merge_model(&mut self, inc: &Incoming<'_>, final_push: bool) {
        // Per-push state: fresh mappings and initial values, clean deltas
        // (exactly what a pairwise `compose` would start from).
        self.ctx.mappings.clear();
        self.delta.clear();
        if self.options().collect_initial_values {
            if self.options().incremental_initial_values {
                // Incremental path: seed the store once — from the
                // prepared base's already-evaluated values when we have
                // them, else one collect-equivalent fixed point — and let
                // `finish_push` extend it with this push's additions.
                // Accumulator-side lookups go through `iv_a_get`.
                if self.incremental.is_none() {
                    let known = self.base_ivs.take();
                    self.incremental = Some(match known {
                        Some(iv) => IncrementalValues::seed_with_known(&self.merged, &iv),
                        None => IncrementalValues::seed(&self.merged),
                    });
                }
            } else {
                let base_ivs = self.base_ivs.take();
                self.iv_a = base_ivs.unwrap_or_else(|| Arc::new(collect(&self.merged)));
            }
            self.iv_b = match inc.ivs {
                Some(ivs) => Arc::clone(ivs),
                None => Arc::new(collect(inc.model)),
            };
        } else {
            self.base_ivs = None;
            self.incremental = None;
            self.iv_a = Arc::new(InitialValues::default());
            self.iv_b = Arc::new(InitialValues::default());
        }
        let start = PushStart::of(&self.merged);

        // Pre-size the accumulator for the worst case (every incoming
        // component added) — one reserve beats repeated regrow-and-copy.
        let b = inc.model;
        self.merged.function_definitions.reserve(b.function_definitions.len());
        self.merged.unit_definitions.reserve(b.unit_definitions.len());
        self.merged.compartments.reserve(b.compartments.len());
        self.merged.species.reserve(b.species.len());
        self.merged.parameters.reserve(b.parameters.len());
        self.merged.initial_assignments.reserve(b.initial_assignments.len());
        self.merged.rules.reserve(b.rules.len());
        self.merged.constraints.reserve(b.constraints.len());
        self.merged.reactions.reserve(b.reactions.len());
        self.merged.events.reserve(b.events.len());

        // Fig. 4 pipeline order.
        self.merge_function_definitions(inc);
        self.merge_unit_definitions(inc);
        self.merge_compartment_types(inc);
        self.merge_species_types(inc);
        self.merge_compartments(inc);
        self.merge_species(inc);
        self.merge_parameters(inc);
        self.merge_initial_assignments(inc);
        self.merge_rules(inc);
        self.merge_constraints(inc);
        self.merge_reactions(inc);
        self.merge_events(inc);

        self.finish_push(start, final_push);
    }

    /// Fold this push's additions into the persistent indexes under their
    /// canonical merged-side keys (the keys a from-scratch index rebuild
    /// would compute), extend the key cache, and roll the push's mappings
    /// into the cumulative map. A `final_push` skips the index/key
    /// fix-ups — nothing will consume them.
    fn finish_push(&mut self, start: PushStart, final_push: bool) {
        if final_push {
            self.delta.clear();
            self.mappings.extend(self.ctx.mappings.drain());
            return;
        }
        // Feed the incremental value store exactly the components this
        // push appended (already renamed/mapped — the merged model is the
        // source of truth); it re-evaluates only the affected dependency
        // closure, O(push), where the re-collect path is O(accumulator).
        if let Some(store) = &mut self.incremental {
            store.absorb(
                &self.merged,
                &ValueDelta {
                    functions: start.functions,
                    compartments: start.compartments,
                    species: start.species,
                    parameters: start.parameters,
                    initial_assignments: start.initial_assignments,
                },
            );
        }
        let cache = self.cache_keys();

        for pos in start.functions..self.merged.function_definitions.len() {
            let key = self.ctx.function_key(&self.merged.function_definitions[pos], false);
            let key: Arc<str> = Arc::from(key.as_str());
            self.idx.functions_by_content.insert_shared(&key, pos);
            if cache {
                self.keys.functions.push(key);
            }
        }
        // Units need no fix-up: their content key is invariant under
        // renaming, so both indexes were final at insertion time.
        let _ = start.units;
        for pos in start.compartment_types..self.merged.compartment_types.len() {
            let t = &self.merged.compartment_types[pos];
            self.idx
                .compartment_types_by_name
                .insert(&self.ctx.name_key(&t.id, t.name.as_deref()), pos);
        }
        for pos in start.species_types..self.merged.species_types.len() {
            let t = &self.merged.species_types[pos];
            self.idx.species_types_by_name.insert(&self.ctx.name_key(&t.id, t.name.as_deref()), pos);
        }
        for pos in start.compartments..self.merged.compartments.len() {
            let c = &self.merged.compartments[pos];
            self.idx.compartments_by_name.insert(&self.ctx.name_key(&c.id, c.name.as_deref()), pos);
        }
        for pos in start.species..self.merged.species.len() {
            let s = &self.merged.species[pos];
            self.idx.species_by_name.insert(&self.ctx.name_key(&s.id, s.name.as_deref()), pos);
        }
        // Conflict-renamed parameters are (deliberately) not visible to
        // by-id lookups within their own push; surface them now.
        for pos in start.parameters..self.merged.parameters.len() {
            self.idx.parameters_by_id.insert(&self.merged.parameters[pos].id, pos);
        }
        for pos in start.rules..self.merged.rules.len() {
            let key = self.ctx.rule_key(&self.merged.rules[pos], false);
            self.idx.rules_by_content.insert(&key, pos);
        }
        for pos in start.constraints..self.merged.constraints.len() {
            let key = self.ctx.constraint_key(&self.merged.constraints[pos].math, false);
            self.idx.constraints_by_content.insert(&key, pos);
        }
        if self.options().cache_patterns {
            for pos in start.reactions..self.merged.reactions.len() {
                let key = self.ctx.reaction_key(&self.merged.reactions[pos], false);
                let key: Arc<str> = Arc::from(key.as_str());
                self.idx.reactions_by_content.insert_shared(&key, pos);
                if cache {
                    self.keys.reactions.push(key);
                }
            }
        }
        for pos in start.events..self.merged.events.len() {
            let key = self.ctx.event_key(&self.merged.events[pos], false);
            let key: Arc<str> = Arc::from(key.as_str());
            self.idx.events_by_content.insert_shared(&key, pos);
            if cache {
                self.keys.events.push(key);
            }
        }
        self.delta.clear();
        self.mappings.extend(self.ctx.mappings.drain());
    }

    // ---------------------------------------------------------------
    // Cached merged-side content keys
    // ---------------------------------------------------------------
    // Components added by the current push sit past the cache's end and
    // are recomputed on demand, mirroring the pairwise pass which only
    // pre-computes keys for components present when the pass started.

    fn function_key_matches(&self, pos: usize, key: &str) -> bool {
        if let Some(cached) = self.keys.functions.get(pos) {
            cached.as_ref() == key
        } else {
            self.ctx.function_key(&self.merged.function_definitions[pos], false) == key
        }
    }

    fn unit_key_matches(&self, pos: usize, key: &str) -> bool {
        if let Some(cached) = self.keys.units.get(pos) {
            cached.as_ref() == key
        } else {
            self.ctx.unit_key(&self.merged.unit_definitions[pos]) == key
        }
    }

    /// Id-hit comparison for reactions: exactly equivalent to comparing
    /// the merged reaction's canonical key with the incoming mapped key,
    /// but ordered cheapest-first — reversibility, then participant
    /// multisets (no string building), then the kinetic-law pattern, for
    /// which both sides' cached key sections are reused while valid.
    fn reaction_matches(&self, pos: usize, theirs: &Reaction, inc: &Incoming<'_>, i: usize) -> bool {
        let ours = &self.merged.reactions[pos];
        if ours.reversible != theirs.reversible {
            return false;
        }
        if !self.participants_match(&ours.reactants, &theirs.reactants)
            || !self.participants_match(&ours.products, &theirs.products)
            || !self.participants_match(&ours.modifiers, &theirs.modifiers)
        {
            return false;
        }
        let ours_math: Cow<'_, str> = match self.keys.reactions.get(pos).and_then(|k| key_math_section(k)) {
            Some(section) => Cow::Borrowed(section),
            None => Cow::Owned(match &ours.kinetic_law {
                Some(kl) => self.ctx.math_key(&kl.math, false),
                None => "-".to_owned(),
            }),
        };
        let cached_theirs = match inc.keys {
            Some(keys) if self.refs_clean(Some(&keys.reaction_math_refs[i])) => {
                key_math_section(&keys.reactions[i])
            }
            _ => None,
        };
        let theirs_math: Cow<'_, str> = match cached_theirs {
            Some(section) => Cow::Borrowed(section),
            None => Cow::Owned(match &theirs.kinetic_law {
                Some(kl) => self.ctx.math_key(&kl.math, true),
                None => "-".to_owned(),
            }),
        };
        ours_math == theirs_math
    }

    /// Participant-list equality as the canonical key would decide it
    /// (sorted `id*stoich` multisets, incoming ids mapped), without
    /// building the canonical string.
    fn participants_match(
        &self,
        ours: &[sbml_model::SpeciesReference],
        theirs: &[sbml_model::SpeciesReference],
    ) -> bool {
        if ours.len() != theirs.len() {
            return false;
        }
        // Stoichiometries compare as their canonical-key text would:
        // `Display` for f64 is injective up to bit pattern for non-NaN
        // values (all NaNs print "NaN"), so compare bits with NaN folded.
        let stoich_key = |v: f64| if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
        let mut a: Vec<(&str, u64)> =
            ours.iter().map(|sr| (sr.species.as_str(), stoich_key(sr.stoichiometry))).collect();
        let mut b: Vec<(&str, u64)> = theirs
            .iter()
            .map(|sr| (self.ctx.map_id(&sr.species), stoich_key(sr.stoichiometry)))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    fn event_key_matches(&self, pos: usize, key: &str) -> bool {
        if let Some(cached) = self.keys.events.get(pos) {
            cached.as_ref() == key
        } else {
            self.ctx.event_key(&self.merged.events[pos], false) == key
        }
    }

    // ---------------------------------------------------------------
    // Shared merge helpers (paper Fig. 5)
    // ---------------------------------------------------------------

    /// Fresh id based on `base`, registering it as taken.
    fn fresh_id(&mut self, base: &str) -> String {
        if !self.taken.contains(base) {
            self.taken.insert(base.to_owned());
            return base.to_owned();
        }
        for n in 1.. {
            let candidate = format!("{base}_{n}");
            if !self.taken.contains(&candidate) {
                self.taken.insert(candidate.clone());
                return candidate;
            }
        }
        unreachable!("id space exhausted")
    }

    /// Register an id as taken when inserting a B component verbatim, or
    /// rename it if an unrelated component holds it. Returns the final id
    /// and logs the rename.
    fn claim_id(&mut self, kind: &'static str, id: &str) -> String {
        if self.taken.contains(id) {
            let fresh = self.fresh_id(id);
            self.ctx.add_mapping(id, fresh.clone());
            self.log.push(
                EventKind::Renamed,
                kind,
                id,
                fresh.clone(),
                "id already taken by an unrelated component",
            );
            fresh
        } else {
            self.taken.insert(id.to_owned());
            id.to_owned()
        }
    }

    /// Accumulator-side initial value of `id` as of the start of the
    /// current push: the incremental store when active, else the batch
    /// [`collect`] snapshot in `iv_a`. (The store is only extended in
    /// `finish_push`, so mid-push reads always see the pre-push state,
    /// exactly like the snapshot.)
    fn iv_a_get(&self, id: &str) -> Option<f64> {
        match &self.incremental {
            Some(store) => store.get(id),
            None => self.iv_a.get(id),
        }
    }

    fn map_string(&self, s: &str) -> String {
        self.ctx.map_id(s).to_owned()
    }

    fn map_opt(&self, s: &Option<String>) -> Option<String> {
        s.as_ref().map(|v| self.map_string(v))
    }

    fn map_math(&self, math: &sbml_math::MathExpr) -> sbml_math::MathExpr {
        if self.ctx.mappings.is_empty() {
            return math.clone();
        }
        rewrite::rename(math, &self.ctx.mappings)
    }

    /// Is a component with the given prepared reference set untouched by
    /// the current push's mappings (so every `map_*`/`map_math` over it is
    /// the identity)? Without prepared refs, only an empty mapping table
    /// guarantees that.
    fn refs_clean(&self, refs: Option<&[String]>) -> bool {
        match refs {
            Some(refs) => {
                self.ctx.mappings.is_empty() || refs_unmapped(refs, &self.ctx.mappings)
            }
            None => self.ctx.mappings.is_empty(),
        }
    }

    /// Resolve a units reference against the accumulator through the
    /// persistent by-id index (ROADMAP: `resolve_units` was a linear scan
    /// inside conflict checks), falling back to SBML builtins.
    fn resolve_units_merged(&self, units: Option<&str>) -> Option<UnitDefinition> {
        let id = units?;
        self.idx
            .units_by_id
            .get(id)
            .map(|pos| self.merged.unit_definitions[pos].clone())
            .or_else(|| sbml_units::definition::builtin(id))
    }

    /// Accumulator compartment lookup through the persistent by-id index
    /// (replaces `Model::compartment_by_id`'s linear scan in conflict
    /// checks).
    fn merged_compartment_by_id(&self, id: &str) -> Option<&Compartment> {
        self.idx.compartments_by_id.get(id).map(|pos| &self.merged.compartments[pos])
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 1: function definitions
    // ---------------------------------------------------------------
    fn merge_function_definitions(&mut self, inc: &Incoming<'_>) {
        for (i, f) in inc.model.function_definitions.iter().enumerate() {
            let content_key = match inc.keys {
                Some(keys) if self.refs_clean(Some(&keys.function_refs[i])) => {
                    IncomingKey::Cached(&keys.functions[i])
                }
                _ => IncomingKey::Computed(self.ctx.function_key(f, true)),
            };
            let content_key_str = content_key.as_str();
            if let Some(pos) = self.idx.functions_by_id.get(&f.id) {
                if self.function_key_matches(pos, content_key_str) {
                    self.log.push(
                        EventKind::Duplicate,
                        "functionDefinition",
                        &f.id,
                        &f.id,
                        "identical definition",
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "functionDefinition",
                        &f.id,
                        &f.id,
                        "same id, different body; first model wins",
                    );
                }
                continue;
            }
            let content_pos = self
                .idx
                .functions_by_content
                .get(content_key_str)
                .or_else(|| self.delta.functions_by_content.get(content_key_str));
            if let Some(pos) = content_pos {
                let target = self.merged.function_definitions[pos].id.clone();
                self.ctx.add_mapping(&f.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "functionDefinition",
                    &f.id,
                    target,
                    "equivalent body (α-renaming/commutativity)",
                );
                continue;
            }
            let final_id = self.claim_id("functionDefinition", &f.id);
            let mut nf = f.clone();
            nf.id = final_id.clone();
            if !self.refs_clean(inc.keys.map(|k| k.function_refs[i].as_ref())) {
                nf.body = self.map_math(&f.body);
            }
            let pos = self.merged.function_definitions.len();
            self.idx.functions_by_id.insert(&final_id, pos);
            content_key.insert_into(&mut self.delta.functions_by_content, pos);
            self.merged.function_definitions.push(nf);
            self.log.push(EventKind::Added, "functionDefinition", &f.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 2: unit definitions
    // ---------------------------------------------------------------
    fn merge_unit_definitions(&mut self, inc: &Incoming<'_>) {
        for (i, u) in inc.model.unit_definitions.iter().enumerate() {
            // Unit keys never depend on ID mappings — always reusable.
            let content_key = match inc.keys {
                Some(keys) => IncomingKey::Cached(&keys.units[i]),
                None => IncomingKey::Computed(self.ctx.unit_key(u)),
            };
            let content_key_str = content_key.as_str();
            if let Some(pos) = self.idx.units_by_id.get(&u.id) {
                if self.unit_key_matches(pos, content_key_str) {
                    self.log.push(
                        EventKind::Duplicate,
                        "unitDefinition",
                        &u.id,
                        &u.id,
                        "same units",
                    );
                } else {
                    let ours = &self.merged.unit_definitions[pos];
                    self.log.push(
                        EventKind::Conflict,
                        "unitDefinition",
                        &u.id,
                        &u.id,
                        format!(
                            "same id, different units ({} vs {}); first model wins",
                            ours.signature(),
                            u.signature()
                        ),
                    );
                }
                continue;
            }
            if let Some(pos) = self.idx.units_by_content.get(content_key_str) {
                let target = self.merged.unit_definitions[pos].id.clone();
                self.ctx.add_mapping(&u.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "unitDefinition",
                    &u.id,
                    target,
                    "equivalent unit signature",
                );
                continue;
            }
            let final_id = self.claim_id("unitDefinition", &u.id);
            let mut nu = u.clone();
            nu.id = final_id.clone();
            let pos = self.merged.unit_definitions.len();
            self.idx.units_by_id.insert(&final_id, pos);
            // A unit's content key is invariant under renaming and
            // mappings, so it can enter the persistent index immediately.
            let key = content_key.to_arc();
            self.idx.units_by_content.insert_shared(&key, pos);
            if self.cache_keys() {
                self.keys.units.push(key);
            }
            self.merged.unit_definitions.push(nu);
            self.log.push(EventKind::Added, "unitDefinition", &u.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 lines 3–4: compartment types, species types
    // ---------------------------------------------------------------
    fn merge_compartment_types(&mut self, inc: &Incoming<'_>) {
        for (i, t) in inc.model.compartment_types.iter().enumerate() {
            // Name keys never depend on ID mappings — always reusable.
            let name_key = match inc.keys {
                Some(keys) => IncomingKey::Cached(&keys.compartment_types[i]),
                None => IncomingKey::Computed(self.ctx.name_key(&t.id, t.name.as_deref())),
            };
            if self.idx.compartment_types_by_id.get(&t.id).is_some() {
                self.log.push(EventKind::Duplicate, "compartmentType", &t.id, &t.id, "same id");
                continue;
            }
            let name_pos = self
                .idx
                .compartment_types_by_name
                .get(name_key.as_str())
                .or_else(|| self.delta.compartment_types_by_name.get(name_key.as_str()));
            if let Some(pos) = name_pos {
                let target = self.merged.compartment_types[pos].id.clone();
                self.ctx.add_mapping(&t.id, &target);
                self.log.push(EventKind::Mapped, "compartmentType", &t.id, target, "synonymous name");
                continue;
            }
            let final_id = self.claim_id("compartmentType", &t.id);
            let mut nt = t.clone();
            nt.id = final_id.clone();
            let pos = self.merged.compartment_types.len();
            self.idx.compartment_types_by_id.insert(&final_id, pos);
            name_key.insert_into(&mut self.delta.compartment_types_by_name, pos);
            self.merged.compartment_types.push(nt);
            self.log.push(EventKind::Added, "compartmentType", &t.id, final_id, "new");
        }
    }

    fn merge_species_types(&mut self, inc: &Incoming<'_>) {
        for (i, t) in inc.model.species_types.iter().enumerate() {
            let name_key = match inc.keys {
                Some(keys) => IncomingKey::Cached(&keys.species_types[i]),
                None => IncomingKey::Computed(self.ctx.name_key(&t.id, t.name.as_deref())),
            };
            if self.idx.species_types_by_id.get(&t.id).is_some() {
                self.log.push(EventKind::Duplicate, "speciesType", &t.id, &t.id, "same id");
                continue;
            }
            let name_pos = self
                .idx
                .species_types_by_name
                .get(name_key.as_str())
                .or_else(|| self.delta.species_types_by_name.get(name_key.as_str()));
            if let Some(pos) = name_pos {
                let target = self.merged.species_types[pos].id.clone();
                self.ctx.add_mapping(&t.id, &target);
                self.log.push(EventKind::Mapped, "speciesType", &t.id, target, "synonymous name");
                continue;
            }
            let final_id = self.claim_id("speciesType", &t.id);
            let mut nt = t.clone();
            nt.id = final_id.clone();
            let pos = self.merged.species_types.len();
            self.idx.species_types_by_id.insert(&final_id, pos);
            name_key.insert_into(&mut self.delta.species_types_by_name, pos);
            self.merged.species_types.push(nt);
            self.log.push(EventKind::Added, "speciesType", &t.id, final_id, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 5: compartments
    // ---------------------------------------------------------------
    fn merge_compartments(&mut self, inc: &Incoming<'_>) {
        for (i, c) in inc.model.compartments.iter().enumerate() {
            let name_key = match inc.keys {
                Some(keys) => IncomingKey::Cached(&keys.compartments[i]),
                None => IncomingKey::Computed(self.ctx.name_key(&c.id, c.name.as_deref())),
            };
            let matched = self.idx.compartments_by_id.get(&c.id).map(|pos| (pos, true)).or_else(|| {
                self.idx
                    .compartments_by_name
                    .get(name_key.as_str())
                    .or_else(|| self.delta.compartments_by_name.get(name_key.as_str()))
                    .map(|pos| (pos, false))
            });
            if let Some((pos, by_identifier)) = matched {
                let ours = &self.merged.compartments[pos];
                let target = ours.id.clone();
                let sizes_agree = self.compartment_sizes_agree(ours, c, inc);
                if !by_identifier {
                    self.ctx.add_mapping(&c.id, &target);
                }
                if sizes_agree && self.merged.compartments[pos].spatial_dimensions == c.spatial_dimensions {
                    self.log.push(
                        if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                        "compartment",
                        &c.id,
                        target,
                        "same compartment",
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "compartment",
                        &c.id,
                        target,
                        format!(
                            "attributes differ (size {:?} vs {:?}); first model wins",
                            self.merged.compartments[pos].size, c.size
                        ),
                    );
                }
                continue;
            }
            let final_id = self.claim_id("compartment", &c.id);
            let mut nc = c.clone();
            nc.id = final_id.clone();
            nc.compartment_type = self.map_opt(&c.compartment_type);
            nc.units = self.map_opt(&c.units);
            nc.outside = self.map_opt(&c.outside);
            let pos = self.merged.compartments.len();
            self.idx.compartments_by_id.insert(&final_id, pos);
            name_key.insert_into(&mut self.delta.compartments_by_name, pos);
            self.merged.compartments.push(nc);
            self.log.push(EventKind::Added, "compartment", &c.id, final_id, "new");
        }
    }

    fn compartment_sizes_agree(
        &self,
        ours: &Compartment,
        theirs: &Compartment,
        inc: &Incoming<'_>,
    ) -> bool {
        let va = ours.size.or_else(|| self.iv_a_get(&ours.id));
        let vb = theirs.size.or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        // Try unit conversion (e.g. litres vs millilitres).
        let (Some(va), Some(vb)) = (va, vb) else { return false };
        let (Some(ua), Some(ub)) = (
            self.resolve_units_merged(ours.units.as_deref()),
            inc.resolve_units(theirs.units.as_deref()),
        ) else {
            return false;
        };
        match conversion_factor(&ub, &ua) {
            Some(factor) => self.ctx.values_agree(Some(va), Some(vb * factor)),
            None => false,
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 6: species
    // ---------------------------------------------------------------
    fn merge_species(&mut self, inc: &Incoming<'_>) {
        for (i, s) in inc.model.species.iter().enumerate() {
            let name_key = match inc.keys {
                Some(keys) => IncomingKey::Cached(&keys.species[i]),
                None => IncomingKey::Computed(self.ctx.name_key(&s.id, s.name.as_deref())),
            };
            let matched = self.idx.species_by_id.get(&s.id).map(|pos| (pos, true)).or_else(|| {
                self.idx
                    .species_by_name
                    .get(name_key.as_str())
                    .or_else(|| self.delta.species_by_name.get(name_key.as_str()))
                    .map(|pos| (pos, false))
            });
            if let Some((pos, by_identifier)) = matched {
                let ours = &self.merged.species[pos];
                let target = ours.id.clone();
                let compartments_match = ours.compartment == self.ctx.map_id(&s.compartment);
                let values_ok = self.species_values_agree(ours, s, inc);
                if !by_identifier {
                    self.ctx.add_mapping(&s.id, &target);
                }
                if compartments_match && values_ok {
                    self.log.push(
                        if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                        "species",
                        &s.id,
                        target,
                        "same species",
                    );
                } else {
                    let reason = if !compartments_match {
                        "compartments differ; first model wins"
                    } else {
                        "initial values differ; first model wins"
                    };
                    self.log.push(EventKind::Conflict, "species", &s.id, target, reason);
                }
                continue;
            }
            let final_id = self.claim_id("species", &s.id);
            let mut ns = s.clone();
            ns.id = final_id.clone();
            ns.compartment = self.map_string(&s.compartment);
            ns.species_type = self.map_opt(&s.species_type);
            ns.substance_units = self.map_opt(&s.substance_units);
            let pos = self.merged.species.len();
            self.idx.species_by_id.insert(&final_id, pos);
            name_key.insert_into(&mut self.delta.species_by_name, pos);
            self.merged.species.push(ns);
            self.log.push(EventKind::Added, "species", &s.id, final_id, "new");
        }
    }

    /// Initial-value agreement with Fig. 6 unit awareness:
    /// direct comparison → substance-unit conversion → amount vs
    /// concentration reconciliation through the compartment volume.
    fn species_values_agree(&self, ours: &Species, theirs: &Species, inc: &Incoming<'_>) -> bool {
        let va = ours.initial_value().or_else(|| self.iv_a_get(&ours.id));
        let vb = theirs.initial_value().or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        let (Some(va), Some(vb)) = (va, vb) else { return false };

        // Substance-unit conversion (e.g. mole vs millimole).
        if let (Some(ua), Some(ub)) = (
            self.resolve_units_merged(ours.substance_units.as_deref()),
            inc.resolve_units(theirs.substance_units.as_deref()),
        ) {
            if let Some(factor) = conversion_factor(&ub, &ua) {
                if self.ctx.values_agree(Some(va), Some(vb * factor)) {
                    return true;
                }
            }
        }

        // Amount vs concentration: amount = concentration × volume.
        let vol_a = self
            .merged_compartment_by_id(&ours.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_a_get(&ours.compartment));
        let vol_b = inc
            .compartment_by_id(&theirs.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_b.get(&theirs.compartment));
        if let (Some(amount), Some(conc), Some(vol)) =
            (ours.initial_amount, theirs.initial_concentration, vol_b)
        {
            if self.ctx.values_agree(Some(amount), Some(conc * vol)) {
                return true;
            }
        }
        match (ours.initial_concentration, theirs.initial_amount, vol_a) {
            (Some(conc), Some(amount), Some(vol))
                if vol != 0.0 && self.ctx.values_agree(Some(conc), Some(amount / vol)) =>
            {
                return true;
            }
            _ => {}
        }
        false
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 7: parameters (always kept; renamed on clash — §3)
    // ---------------------------------------------------------------
    fn merge_parameters(&mut self, inc: &Incoming<'_>) {
        for p in &inc.model.parameters {
            if let Some(pos) = self.idx.parameters_by_id.get(&p.id) {
                let ours_value = self.merged.parameters[pos].value;
                if self.parameter_values_agree(&self.merged.parameters[pos], p, inc) {
                    self.log.push(
                        EventKind::Duplicate,
                        "parameter",
                        &p.id,
                        &p.id,
                        "same id and value",
                    );
                } else {
                    // Keep both: rename the incoming one (paper §3). The
                    // renamed parameter stays out of the by-id index until
                    // the push ends, as in the per-pass rebuild.
                    let fresh = self.fresh_id(&p.id);
                    self.ctx.add_mapping(&p.id, &fresh);
                    let mut np = p.clone();
                    np.id = fresh.clone();
                    np.units = self.map_opt(&p.units);
                    self.merged.parameters.push(np);
                    self.log.push(
                        EventKind::Conflict,
                        "parameter",
                        &p.id,
                        fresh.clone(),
                        format!(
                            "values differ ({:?} vs {:?}); both kept, incoming renamed",
                            ours_value, p.value
                        ),
                    );
                    self.log.push(
                        EventKind::Renamed,
                        "parameter",
                        &p.id,
                        fresh,
                        "renamed to avoid conflict",
                    );
                }
                continue;
            }
            // Different id: always include (no content matching for
            // parameters — the paper: "there is no way of confirming
            // whether they are intended to be equal or not").
            let final_id = self.claim_id("parameter", &p.id);
            let mut np = p.clone();
            np.id = final_id.clone();
            np.units = self.map_opt(&p.units);
            let pos = self.merged.parameters.len();
            self.idx.parameters_by_id.insert(&final_id, pos);
            self.merged.parameters.push(np);
            self.log.push(EventKind::Added, "parameter", &p.id, final_id, "new");
        }
    }

    fn parameter_values_agree(&self, ours: &Parameter, theirs: &Parameter, inc: &Incoming<'_>) -> bool {
        let va = ours.value.or_else(|| self.iv_a_get(&ours.id));
        let vb = theirs.value.or_else(|| self.iv_b.get(&theirs.id));
        if self.ctx.values_agree(va, vb) {
            return true;
        }
        if self.options().semantics != SemanticsLevel::Heavy {
            return false;
        }
        let (Some(va), Some(vb)) = (va, vb) else { return false };
        if let (Some(ua), Some(ub)) = (
            self.resolve_units_merged(ours.units.as_deref()),
            inc.resolve_units(theirs.units.as_deref()),
        ) {
            if let Some(factor) = conversion_factor(&ub, &ua) {
                return self.ctx.values_agree(Some(va), Some(vb * factor));
            }
        }
        false
    }

    // ---------------------------------------------------------------
    // Initial assignments (collected before merge; conflict-checked here)
    // ---------------------------------------------------------------
    fn merge_initial_assignments(&mut self, inc: &Incoming<'_>) {
        for ia in &inc.model.initial_assignments {
            let symbol = self.map_string(&ia.symbol);
            if let Some(pos) = self.idx.assignments_by_symbol.get(&symbol) {
                let ours = &self.merged.initial_assignments[pos];
                let math_equal =
                    self.ctx.math_key(&ours.math, false) == self.ctx.math_key(&ia.math, true);
                // The paper's improvement over semanticSBML: evaluate the
                // maths and compare values when structure differs.
                let values_equal = self.options().collect_initial_values
                    && self
                        .ctx
                        .values_agree(self.iv_a_get(&ours.symbol), self.iv_b.get(&ia.symbol));
                if math_equal || values_equal {
                    self.log.push(
                        EventKind::Duplicate,
                        "initialAssignment",
                        &ia.symbol,
                        symbol,
                        if math_equal { "same maths" } else { "same evaluated value" },
                    );
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "initialAssignment",
                        &ia.symbol,
                        symbol,
                        "different initial maths for one symbol; first model wins",
                    );
                }
                continue;
            }
            let mut nia = ia.clone();
            nia.symbol = symbol.clone();
            nia.math = self.map_math(&ia.math);
            self.idx.assignments_by_symbol.insert(&symbol, self.merged.initial_assignments.len());
            self.merged.initial_assignments.push(nia);
            self.log.push(EventKind::Added, "initialAssignment", &ia.symbol, symbol, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 8: rules
    // ---------------------------------------------------------------
    fn merge_rules(&mut self, inc: &Incoming<'_>) {
        for (i, r) in inc.model.rules.iter().enumerate() {
            let content_key = match inc.keys {
                Some(keys) if self.refs_clean(Some(&keys.rule_refs[i])) => {
                    IncomingKey::Cached(&keys.rules[i])
                }
                _ => IncomingKey::Computed(self.ctx.rule_key(r, true)),
            };
            let label = r.variable().unwrap_or("<algebraic>").to_owned();
            if self
                .idx
                .rules_by_content
                .get(content_key.as_str())
                .or_else(|| self.delta.rules_by_content.get(content_key.as_str()))
                .is_some()
            {
                self.log.push(EventKind::Duplicate, "rule", &label, &label, "identical rule");
                continue;
            }
            if let Some(v) = r.variable() {
                let mapped_v = self.map_string(v);
                if self.idx.rules_by_variable.get(&mapped_v).is_some() {
                    self.log.push(
                        EventKind::Conflict,
                        "rule",
                        &label,
                        mapped_v,
                        "variable already ruled with different maths; first model wins",
                    );
                    continue;
                }
            }
            let mut nr = r.clone();
            if !self.refs_clean(inc.keys.map(|k| k.rule_refs[i].as_ref())) {
                match &mut nr {
                    sbml_model::Rule::Algebraic { math } => *math = self.map_math(math),
                    sbml_model::Rule::Assignment { variable, math }
                    | sbml_model::Rule::Rate { variable, math } => {
                        *variable = self.map_string(variable);
                        *math = self.map_math(math);
                    }
                }
            }
            let pos = self.merged.rules.len();
            content_key.insert_into(&mut self.delta.rules_by_content, pos);
            if let Some(v) = nr.variable() {
                self.idx.rules_by_variable.insert(v, pos);
            }
            self.merged.rules.push(nr);
            self.log.push(EventKind::Added, "rule", &label, &label, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 9: constraints
    // ---------------------------------------------------------------
    fn merge_constraints(&mut self, inc: &Incoming<'_>) {
        for (idx, c) in inc.model.constraints.iter().enumerate() {
            let key = match inc.keys {
                Some(keys) if self.refs_clean(Some(&keys.constraint_refs[idx])) => {
                    IncomingKey::Cached(&keys.constraints[idx])
                }
                _ => IncomingKey::Computed(self.ctx.constraint_key(&c.math, true)),
            };
            let label = format!("#{idx}");
            if self
                .idx
                .constraints_by_content
                .get(key.as_str())
                .or_else(|| self.delta.constraints_by_content.get(key.as_str()))
                .is_some()
            {
                self.log.push(EventKind::Duplicate, "constraint", &label, &label, "identical");
                continue;
            }
            let mut nc = c.clone();
            if !self.refs_clean(inc.keys.map(|k| k.constraint_refs[idx].as_ref())) {
                nc.math = self.map_math(&c.math);
            }
            key.insert_into(&mut self.delta.constraints_by_content, self.merged.constraints.len());
            self.merged.constraints.push(nc);
            self.log.push(EventKind::Added, "constraint", &label, &label, "new");
        }
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 10: reactions (the most involved kind)
    // ---------------------------------------------------------------
    fn merge_reactions(&mut self, inc: &Incoming<'_>) {
        // Pattern cache ablation: when disabled, keys are recomputed per
        // lookup through a linear rescan instead of being stored.
        let cache = self.options().cache_patterns;
        for (i, r) in inc.model.reactions.iter().enumerate() {
            if let Some(pos) = self.idx.reactions_by_id.get(&r.id) {
                if self.reaction_matches(pos, r, inc, i) {
                    self.reconcile_reaction_locals(pos, r, inc);
                } else {
                    self.log.push(
                        EventKind::Conflict,
                        "reaction",
                        &r.id,
                        &r.id,
                        "same id, different reaction; first model wins",
                    );
                }
                continue;
            }
            let content_key = match inc.keys {
                Some(keys) if self.refs_clean(Some(&keys.reaction_refs[i])) => {
                    IncomingKey::Cached(&keys.reactions[i])
                }
                _ => IncomingKey::Computed(self.ctx.reaction_key(r, true)),
            };
            let content_key_str = content_key.as_str();
            let content_pos = if cache {
                self.idx
                    .reactions_by_content
                    .get(content_key_str)
                    .or_else(|| self.delta.reactions_by_content.get(content_key_str))
            } else {
                // no cache: rescan and recompute every time
                self.merged
                    .reactions
                    .iter()
                    .position(|ours| self.ctx.reaction_key(ours, false) == content_key_str)
            };
            if let Some(pos) = content_pos {
                let target = self.merged.reactions[pos].id.clone();
                self.ctx.add_mapping(&r.id, &target);
                self.log.push(
                    EventKind::Mapped,
                    "reaction",
                    &r.id,
                    target,
                    "same participants and kinetics",
                );
                self.reconcile_reaction_locals(pos, r, inc);
                continue;
            }
            let final_id = self.claim_id("reaction", &r.id);
            let mut nr = r.clone();
            nr.id = final_id.clone();
            if !self.refs_clean(inc.keys.map(|k| k.reaction_refs[i].as_ref())) {
                for sr in nr.reactants.iter_mut().chain(&mut nr.products).chain(&mut nr.modifiers) {
                    sr.species = self.map_string(&sr.species);
                }
                if let Some(kl) = &mut nr.kinetic_law {
                    // The law's local parameters shadow the mapping table.
                    // Hide them while renaming (O(locals) removes/restores)
                    // instead of cloning the whole table per reaction.
                    let mut hidden: Vec<(String, String)> = Vec::new();
                    for p in &kl.parameters {
                        if let Some(target) = self.ctx.mappings.remove(&p.id) {
                            hidden.push((p.id.clone(), target));
                        }
                    }
                    if !self.ctx.mappings.is_empty() {
                        kl.math = rewrite::rename(&kl.math, &self.ctx.mappings);
                    }
                    for (local, target) in hidden {
                        self.ctx.mappings.insert(local, target);
                    }
                }
            }
            let pos = self.merged.reactions.len();
            self.idx.reactions_by_id.insert(&final_id, pos);
            if cache {
                content_key.insert_into(&mut self.delta.reactions_by_content, pos);
            }
            self.merged.reactions.push(nr);
            self.log.push(EventKind::Added, "reaction", &r.id, final_id, "new");
        }
    }

    /// Matched reactions may still disagree on local rate-constant values;
    /// the paper resolves "conflicts in rate constants and stoichiometry
    /// within reactions" via Fig. 6 conversions before declaring a conflict.
    fn reconcile_reaction_locals(&mut self, merged_pos: usize, theirs: &Reaction, inc: &Incoming<'_>) {
        let volume = self.reaction_volume(theirs, inc).unwrap_or(1.0);
        let order = ReactionOrder::from_reactant_count(theirs.reactant_molecule_count());
        let ours_law = self.merged.reactions[merged_pos].kinetic_law.clone();
        let (Some(ours_kl), Some(theirs_kl)) = (ours_law, &theirs.kinetic_law) else {
            self.log.push(
                EventKind::Duplicate,
                "reaction",
                &theirs.id,
                self.merged.reactions[merged_pos].id.clone(),
                "same reaction",
            );
            return;
        };
        let mut all_ok = true;
        for tp in &theirs_kl.parameters {
            let Some(op) = ours_kl.parameters.iter().find(|p| p.id == tp.id) else {
                continue;
            };
            if self.ctx.values_agree(op.value, tp.value) {
                continue;
            }
            // Try plain unit conversion between the declared units.
            let mut reconciled = false;
            if self.options().semantics == SemanticsLevel::Heavy {
                if let (Some(ua), Some(ub), Some(va), Some(vb)) = (
                    self.resolve_units_merged(op.units.as_deref()),
                    inc.resolve_units(tp.units.as_deref()),
                    op.value,
                    tp.value,
                ) {
                    if let Some(factor) = conversion_factor(&ub, &ua) {
                        reconciled = self.ctx.values_agree(Some(va), Some(vb * factor));
                    }
                }
                // Fig. 6 deterministic ↔ stochastic rate constant bridge.
                if !reconciled {
                    if let (Some(order), Some(va), Some(vb)) = (order, op.value, tp.value) {
                        let as_stoch = deterministic_to_stochastic(vb, order, volume);
                        let as_det = stochastic_to_deterministic(vb, order, volume);
                        reconciled = self.ctx.values_agree(Some(va), Some(as_stoch))
                            || self.ctx.values_agree(Some(va), Some(as_det));
                    }
                }
            }
            let final_id = self.merged.reactions[merged_pos].id.clone();
            if reconciled {
                self.log.push(
                    EventKind::Warning,
                    "reaction",
                    &theirs.id,
                    final_id,
                    format!(
                        "rate constant '{}' agrees after unit conversion (paper Fig. 6)",
                        tp.id
                    ),
                );
            } else {
                all_ok = false;
                self.log.push(
                    EventKind::Conflict,
                    "reaction",
                    &theirs.id,
                    final_id,
                    format!(
                        "local parameter '{}' differs ({:?} vs {:?}); first model wins",
                        tp.id, op.value, tp.value
                    ),
                );
            }
        }
        if all_ok {
            self.log.push(
                EventKind::Duplicate,
                "reaction",
                &theirs.id,
                self.merged.reactions[merged_pos].id.clone(),
                "same reaction",
            );
        }
    }

    /// The volume relevant to a reaction of the second model: the size of
    /// the compartment of its first reactant (or product).
    fn reaction_volume(&self, r: &Reaction, inc: &Incoming<'_>) -> Option<f64> {
        let species_id = r
            .reactants
            .first()
            .or_else(|| r.products.first())
            .map(|sr| sr.species.as_str())?;
        let species = inc.species_by_id(species_id)?;
        inc.compartment_by_id(&species.compartment)
            .and_then(|c| c.size)
            .or_else(|| self.iv_b.get(&species.compartment))
    }

    // ---------------------------------------------------------------
    // Fig. 4 line 11: events
    // ---------------------------------------------------------------
    fn merge_events(&mut self, inc: &Incoming<'_>) {
        for (idx, ev) in inc.model.events.iter().enumerate() {
            let label = ev.id.clone().unwrap_or_else(|| format!("#{idx}"));
            let content_key = match inc.keys {
                Some(keys) if self.refs_clean(Some(&keys.event_refs[idx])) => {
                    IncomingKey::Cached(&keys.events[idx])
                }
                _ => IncomingKey::Computed(self.ctx.event_key(ev, true)),
            };
            if let Some(id) = &ev.id {
                if let Some(pos) = self.idx.events_by_id.get(id) {
                    if self.event_key_matches(pos, content_key.as_str()) {
                        self.log.push(EventKind::Duplicate, "event", &label, id, "identical");
                    } else {
                        self.log.push(
                            EventKind::Conflict,
                            "event",
                            &label,
                            id,
                            "same id, different event; first model wins",
                        );
                    }
                    continue;
                }
            }
            let content_pos = self
                .idx
                .events_by_content
                .get(content_key.as_str())
                .or_else(|| self.delta.events_by_content.get(content_key.as_str()));
            if let Some(pos) = content_pos {
                let target =
                    self.merged.events[pos].id.clone().unwrap_or_else(|| format!("@{pos}"));
                if let Some(id) = &ev.id {
                    if target != format!("@{pos}") {
                        self.ctx.add_mapping(id, &target);
                    }
                }
                self.log.push(EventKind::Mapped, "event", &label, target, "identical behaviour");
                continue;
            }
            let mut nev = ev.clone();
            if let Some(id) = &ev.id {
                nev.id = Some(self.claim_id("event", id));
            }
            if !self.refs_clean(inc.keys.map(|k| k.event_refs[idx].as_ref())) {
                nev.trigger = self.map_math(&ev.trigger);
                nev.delay = ev.delay.as_ref().map(|d| self.map_math(d));
                for a in &mut nev.assignments {
                    a.variable = self.map_string(&a.variable);
                    a.math = self.map_math(&a.math);
                }
            }
            let pos = self.merged.events.len();
            if let Some(id) = &nev.id {
                self.idx.events_by_id.insert(id, pos);
            }
            content_key.insert_into(&mut self.delta.events_by_content, pos);
            let final_label = nev.id.clone().unwrap_or_else(|| label.clone());
            self.merged.events.push(nev);
            self.log.push(EventKind::Added, "event", &label, final_label, "new");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::{compose_many, Composer};
    use sbml_model::builder::ModelBuilder;

    fn chain_model(i: usize) -> Model {
        ModelBuilder::new(format!("m{i}"))
            .compartment("cell", 1.0)
            .species(&format!("S{i}"), i as f64)
            .species(&format!("S{}", i + 1), 0.0)
            .parameter(&format!("k{i}"), 0.1 * (i + 1) as f64)
            .reaction(
                &format!("r{i}"),
                &[format!("S{i}").as_str()],
                &[format!("S{}", i + 1).as_str()],
                &format!("k{i}*S{i}"),
            )
            .build()
    }

    #[test]
    fn session_equals_pairwise_fold_on_chain() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let folded = compose_many(&composer, &models);

        let mut session = CompositionSession::new(&options);
        for m in &models {
            session.push(m);
        }
        let chained = session.finish();

        assert_eq!(chained.model, folded.model);
        assert_eq!(chained.log.events, folded.log.events);
        assert_eq!(chained.mappings, folded.mappings);
    }

    #[test]
    fn empty_pushes_follow_pairwise_edges() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let full = chain_model(3);
        let empty_a = Model::new("left_empty");
        let empty_b = Model::new("right_empty");

        // compose(empty, empty) keeps the second model — so must a session.
        let models = [empty_a.clone(), empty_b.clone()];
        let folded = compose_many(&composer, &models);
        let mut session = CompositionSession::new(&options);
        session.push(&empty_a);
        session.push(&empty_b);
        assert_eq!(session.finish().model, folded.model);

        // empty then full: the full model becomes the base.
        let mut session = CompositionSession::new(&options);
        session.push(&empty_a);
        session.push(&full);
        assert_eq!(session.finish().model, full);

        // full then empty: unchanged, no log events.
        let mut session = CompositionSession::new(&options);
        session.push(&full);
        session.push(&empty_b);
        let result = session.finish();
        assert_eq!(result.model, full);
        assert!(result.log.events.is_empty());
    }

    #[test]
    fn push_owned_moves_the_base() {
        let options = ComposeOptions::default();
        let a = chain_model(0);
        let expected = a.clone();
        let mut session = CompositionSession::new(&options);
        session.push_owned(a);
        session.push_owned(chain_model(1));
        assert_eq!(session.pushes(), 2);
        let result = session.finish();
        assert_eq!(result.model.id, expected.id);
        assert_eq!(result.model.species.len(), 3); // S0, S1, S2 — S1 shared
    }

    #[test]
    fn with_base_equals_compose() {
        let options = ComposeOptions::default();
        let composer = Composer::new(options.clone());
        let a = chain_model(0);
        let b = chain_model(1);
        let pairwise = composer.compose(&a, &b);

        let mut session = CompositionSession::with_base(&options, a.clone());
        session.push(&b);
        let chained = session.finish();
        assert_eq!(chained.model, pairwise.model);
        assert_eq!(chained.log.events, pairwise.log.events);
        assert_eq!(chained.mappings, pairwise.mappings);
    }

    #[test]
    fn self_merge_chain_is_idempotent() {
        let options = ComposeOptions::default();
        let m = chain_model(2);
        let mut session = CompositionSession::new(&options);
        for _ in 0..5 {
            session.push(&m);
        }
        let result = session.finish();
        assert_eq!(result.model.species.len(), m.species.len());
        assert_eq!(result.model.reactions.len(), m.reactions.len());
        assert_eq!(result.model.parameters.len(), m.parameters.len());
        assert_eq!(result.log.conflict_count(), 0);
    }

    #[test]
    fn prepared_pushes_equal_raw_pushes() {
        let options = ComposeOptions::default();
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let mut raw = CompositionSession::new(&options);
        for m in &models {
            raw.push(m);
        }
        let raw = raw.finish();

        let mut prepared = CompositionSession::new(&options);
        for m in &models {
            prepared.push_prepared(&PreparedModel::new(m, &options));
        }
        assert_eq!(prepared.pushes(), models.len());
        let prepared = prepared.finish();

        assert_eq!(prepared.model, raw.model);
        assert_eq!(prepared.log.events, raw.log.events);
        assert_eq!(prepared.mappings, raw.mappings);
    }

    #[test]
    fn with_prepared_base_equals_compose() {
        let options = ComposeOptions::default();
        let composer = crate::composer::Composer::new(options.clone());
        let (a, b) = (chain_model(0), chain_model(1));
        let pairwise = composer.compose(&a, &b);

        let pa = PreparedModel::new(&a, &options);
        let pb = PreparedModel::new(&b, &options);
        let mut session = CompositionSession::with_prepared_base(&options, &pa);
        session.push_prepared(&pb);
        let chained = session.finish();
        assert_eq!(chained.model, pairwise.model);
        assert_eq!(chained.log.events, pairwise.log.events);
        assert_eq!(chained.mappings, pairwise.mappings);
    }

    #[test]
    fn prepared_and_raw_pushes_interleave() {
        let options = ComposeOptions::default();
        let models: Vec<Model> = (0..4).map(chain_model).collect();
        let mut raw = CompositionSession::new(&options);
        let mut mixed = CompositionSession::new(&options);
        for (i, m) in models.iter().enumerate() {
            raw.push(m);
            if i % 2 == 0 {
                mixed.push_prepared(&PreparedModel::new(m, &options));
            } else {
                mixed.push(m);
            }
        }
        let (raw, mixed) = (raw.finish(), mixed.finish());
        assert_eq!(mixed.model, raw.model);
        assert_eq!(mixed.log.events, raw.log.events);
        assert_eq!(mixed.mappings, raw.mappings);
    }

    #[test]
    fn prepared_function_param_shadowing_a_mapped_id() {
        // Regression: model B's function f2 has a *parameter* named like
        // another component that gets mapped (g → h). The raw path
        // renames the bare body (where the param is a free id), so the
        // prepared path must not treat the lambda-bound view's emptier
        // reference set as clean.
        use sbml_math::infix;
        use sbml_model::FunctionDefinition;

        let mut a = ModelBuilder::new("a").compartment("cell", 1.0).build();
        a.function_definitions.push(FunctionDefinition::new(
            "h",
            vec!["x".into()],
            infix::parse("x*2").unwrap(),
        ));
        let mut b = ModelBuilder::new("b").compartment("cell", 1.0).build();
        b.function_definitions.push(FunctionDefinition::new(
            "g",
            vec!["x".into()],
            infix::parse("x*2").unwrap(), // content-matches h ⇒ mapping g → h
        ));
        b.function_definitions.push(FunctionDefinition::new(
            "f2",
            vec!["g".into()], // param shadows the mapped id
            infix::parse("g+1").unwrap(),
        ));

        let options = ComposeOptions::default();
        let composer = crate::composer::Composer::new(options.clone());
        let raw = composer.compose(&a, &b);
        let prepared = composer.compose_prepared(&composer.prepare(&a), &composer.prepare(&b));
        assert_eq!(prepared.model, raw.model);
        assert_eq!(prepared.log.events, raw.log.events);
        assert_eq!(prepared.mappings, raw.mappings);
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn same_group_count_different_synonyms_rejected() {
        // Regression: two synonym tables with equal group counts but
        // different contents must not fingerprint equal.
        use bio_synonyms::SynonymTable;
        let mut table_a = SynonymTable::new();
        table_a.add_group(["glucose", "dextrose"]);
        let mut table_b = SynonymTable::new();
        table_b.add_group(["ATP", "adenosine triphosphate"]);
        let opts_a = ComposeOptions::default().with_synonyms(table_a);
        let opts_b = ComposeOptions::default().with_synonyms(table_b);
        let p = PreparedModel::new(&chain_model(0), &opts_a);
        let mut session = CompositionSession::new(&opts_b);
        session.push_prepared(&p);
    }

    #[test]
    #[should_panic(expected = "different options")]
    fn mismatched_preparation_is_rejected() {
        let heavy = ComposeOptions::default();
        let light = ComposeOptions::light();
        let p = PreparedModel::new(&chain_model(0), &light);
        let mut session = CompositionSession::new(&heavy);
        session.push_prepared(&p);
    }

    #[test]
    fn ablations_do_not_change_output() {
        let heavy = ComposeOptions::default();
        let no_key_cache = ComposeOptions::default().with_content_key_cache(false);
        let no_pattern_cache = ComposeOptions::default().with_pattern_cache(false);
        let btree = ComposeOptions::default().with_index(crate::IndexKind::BTree);
        let linear = ComposeOptions::default().with_index(crate::IndexKind::LinearScan);
        let recollect = ComposeOptions::default().with_incremental_initial_values(false);
        let always_parallel = ComposeOptions::default().with_parallel_push_threshold(0);
        let never_parallel = ComposeOptions::default().with_parallel_push_threshold(usize::MAX);
        let models: Vec<Model> = (0..5).map(chain_model).collect();

        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };

        let baseline = run(&heavy);
        for options in [
            &no_key_cache,
            &no_pattern_cache,
            &btree,
            &linear,
            &recollect,
            &always_parallel,
            &never_parallel,
        ] {
            let other = run(options);
            assert_eq!(other.model, baseline.model);
            assert_eq!(other.log.events, baseline.log.events);
            assert_eq!(other.mappings, baseline.mappings);
        }
    }

    #[test]
    fn incremental_values_track_collect_across_pushes() {
        // After every push, the session's value snapshot must equal a
        // fresh batch collect over the accumulator — with the store on,
        // off, and across prepared/raw interleavings.
        let incremental = ComposeOptions::default();
        let recollect = ComposeOptions::default().with_incremental_initial_values(false);
        for options in [&incremental, &recollect] {
            let mut session = CompositionSession::new(options);
            for (i, m) in (0..5).map(chain_model).enumerate() {
                if i % 2 == 0 {
                    session.push(&m);
                } else {
                    session.push_prepared(&PreparedModel::new(&m, options));
                }
                assert_eq!(
                    session.current_initial_values(),
                    crate::initial_values::collect(session.model()),
                    "push {i}"
                );
            }
        }
    }

    #[test]
    fn incremental_values_survive_prepared_base_adoption() {
        let options = ComposeOptions::default();
        let base = PreparedModel::new(&chain_model(0), &options);
        let mut session = CompositionSession::with_prepared_base(&options, &base);
        session.push(&chain_model(1));
        assert_eq!(
            session.current_initial_values(),
            crate::initial_values::collect(session.model())
        );
        session.push(&chain_model(2));
        assert_eq!(
            session.current_initial_values(),
            crate::initial_values::collect(session.model())
        );
    }

    #[test]
    fn parallel_push_threshold_does_not_change_output() {
        // Force the within-push parallel key path for every push (and the
        // one-shot compose entry points, which ride push_final) and
        // compare against the never-parallel path.
        let serial_opts = ComposeOptions::default().with_parallel_push_threshold(usize::MAX);
        let parallel_opts = ComposeOptions::default().with_parallel_push_threshold(0);
        let models: Vec<Model> = (0..6).map(chain_model).collect();

        let run = |options: &ComposeOptions| {
            let mut session = CompositionSession::new(options);
            for m in &models {
                session.push(m);
            }
            session.finish()
        };
        let serial = run(&serial_opts);
        let parallel = run(&parallel_opts);
        assert_eq!(parallel.model, serial.model);
        assert_eq!(parallel.log.events, serial.log.events);
        assert_eq!(parallel.mappings, serial.mappings);

        let pair_serial = Composer::new(serial_opts.clone()).compose(&models[0], &models[1]);
        let pair_parallel = Composer::new(parallel_opts.clone()).compose(&models[0], &models[1]);
        assert_eq!(pair_parallel.model, pair_serial.model);
        assert_eq!(pair_parallel.log.events, pair_serial.log.events);
        assert_eq!(pair_parallel.mappings, pair_serial.mappings);
    }
}
