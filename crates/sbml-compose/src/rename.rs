//! Whole-model identifier renaming.
//!
//! When the merge renames a component (id clash) or maps it onto a
//! component of the first model, every reference in the incoming model must
//! follow: species references in reactions, compartment references in
//! species, unit references, rule/event variables, and every identifier in
//! every math expression.

use std::collections::HashMap;

use sbml_math::rewrite;
use sbml_model::Model;

/// Rename a single identifier throughout a model (definition + references).
pub fn rename_id(model: &mut Model, old: &str, new: &str) {
    let mut map = HashMap::with_capacity(1);
    map.insert(old.to_owned(), new.to_owned());
    apply_renames(model, &map);
}

/// Apply a batch of renames (old → new) to definitions and references.
pub fn apply_renames(model: &mut Model, map: &HashMap<String, String>) {
    if map.is_empty() {
        return;
    }
    let rename = |s: &mut String| {
        if let Some(new) = map.get(s.as_str()) {
            *s = new.clone();
        }
    };
    let rename_opt = |s: &mut Option<String>| {
        if let Some(inner) = s {
            if let Some(new) = map.get(inner.as_str()) {
                *inner = new.clone();
            }
        }
    };

    for f in &mut model.function_definitions {
        rename(&mut f.id);
        // Parameters are bound names — not renamed; the body's free ids are.
        f.body = rewrite::rename(&f.body, map);
    }
    for u in &mut model.unit_definitions {
        rename(&mut u.id);
    }
    for ct in &mut model.compartment_types {
        rename(&mut ct.id);
    }
    for st in &mut model.species_types {
        rename(&mut st.id);
    }
    for c in &mut model.compartments {
        rename(&mut c.id);
        rename_opt(&mut c.compartment_type);
        rename_opt(&mut c.units);
        rename_opt(&mut c.outside);
    }
    for s in &mut model.species {
        rename(&mut s.id);
        rename(&mut s.compartment);
        rename_opt(&mut s.species_type);
        rename_opt(&mut s.substance_units);
    }
    for p in &mut model.parameters {
        rename(&mut p.id);
        rename_opt(&mut p.units);
    }
    for ia in &mut model.initial_assignments {
        rename(&mut ia.symbol);
        ia.math = rewrite::rename(&ia.math, map);
    }
    for rule in &mut model.rules {
        match rule {
            sbml_model::Rule::Algebraic { math } => *math = rewrite::rename(math, map),
            sbml_model::Rule::Assignment { variable, math }
            | sbml_model::Rule::Rate { variable, math } => {
                rename(variable);
                *math = rewrite::rename(math, map);
            }
        }
    }
    for c in &mut model.constraints {
        c.math = rewrite::rename(&c.math, map);
    }
    for r in &mut model.reactions {
        rename(&mut r.id);
        for sr in r.reactants.iter_mut().chain(&mut r.products).chain(&mut r.modifiers) {
            rename(&mut sr.species);
        }
        if let Some(kl) = &mut r.kinetic_law {
            // Local parameter ids shadow globals inside the law; a global
            // rename must not capture them.
            let locals: Vec<&String> = kl.parameters.iter().map(|p| &p.id).collect();
            let mut scoped = map.clone();
            for l in locals {
                scoped.remove(l.as_str());
            }
            kl.math = rewrite::rename(&kl.math, &scoped);
            for p in &mut kl.parameters {
                rename_opt(&mut p.units);
            }
        }
    }
    for ev in &mut model.events {
        if let Some(id) = &mut ev.id {
            if let Some(new) = map.get(id.as_str()) {
                *id = new.clone();
            }
        }
        ev.trigger = rewrite::rename(&ev.trigger, map);
        if let Some(d) = &mut ev.delay {
            *d = rewrite::rename(d, map);
        }
        for a in &mut ev.assignments {
            rename(&mut a.variable);
            a.math = rewrite::rename(&a.math, map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    fn sample() -> Model {
        ModelBuilder::new("m")
            .function("f", &["x"], "x * k1")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .species("B", 0.0)
            .parameter("k1", 0.5)
            .initial_assignment("A", "2 * k1")
            .assignment_rule("B", "A + k1")
            .constraint("A >= 0", None)
            .reaction("r1", &["A"], &["B"], "k1 * A")
            .event("e1", "A > k1", &[("B", "B + k1")])
            .build()
    }

    #[test]
    fn renames_definition_and_all_references() {
        let mut m = sample();
        rename_id(&mut m, "k1", "kf");
        assert!(m.parameter_by_id("kf").is_some());
        assert!(m.parameter_by_id("k1").is_none());
        let text = sbml_model::write_sbml(&m);
        assert!(!text.contains("k1"), "no reference to the old id may survive:\n{text}");
    }

    #[test]
    fn renames_species_references_in_reactions() {
        let mut m = sample();
        rename_id(&mut m, "A", "substrate");
        let r = m.reaction_by_id("r1").unwrap();
        assert_eq!(r.reactants[0].species, "substrate");
        let ia = &m.initial_assignments[0];
        assert_eq!(ia.symbol, "substrate");
        // kinetic law math rewritten
        let kl = r.kinetic_law.as_ref().unwrap();
        assert!(sbml_math::writer::to_infix(&kl.math).contains("substrate"));
    }

    #[test]
    fn renames_compartment_references() {
        let mut m = sample();
        rename_id(&mut m, "cell", "cytoplasm");
        assert!(m.compartment_by_id("cytoplasm").is_some());
        assert!(m.species.iter().all(|s| s.compartment == "cytoplasm"));
    }

    #[test]
    fn local_parameters_shadow_global_renames() {
        let mut m = ModelBuilder::new("m")
            .compartment("c", 1.0)
            .species("A", 1.0)
            .parameter("k", 1.0)
            .reaction("r", &["A"], &[], "k * A")
            .build();
        // Give the reaction a local parameter also named `k`.
        m.reactions[0]
            .kinetic_law
            .as_mut()
            .unwrap()
            .parameters
            .push(sbml_model::Parameter::new("k", 9.0));
        rename_id(&mut m, "k", "k_global");
        let kl = m.reactions[0].kinetic_law.as_ref().unwrap();
        // The law's `k` refers to the local parameter and must NOT change.
        assert_eq!(sbml_math::writer::to_infix(&kl.math), "k * A");
        assert_eq!(kl.parameters[0].id, "k");
        // The global parameter itself was renamed.
        assert!(m.parameter_by_id("k_global").is_some());
    }

    #[test]
    fn function_params_not_captured() {
        let mut m = ModelBuilder::new("m").function("f", &["k"], "k + other").build();
        rename_id(&mut m, "k", "zzz");
        let f = m.function_by_id("f").unwrap();
        assert_eq!(f.params, vec!["k".to_owned()], "bound parameter untouched");
        rename_id(&mut m, "other", "renamed");
        let f = m.function_by_id("f").unwrap();
        assert!(sbml_math::writer::to_infix(&f.body).contains("renamed"));
    }

    #[test]
    fn event_trigger_and_assignments_renamed() {
        let mut m = sample();
        rename_id(&mut m, "B", "product");
        let ev = &m.events[0];
        assert_eq!(ev.assignments[0].variable, "product");
        assert!(sbml_math::writer::to_infix(&ev.assignments[0].math).contains("product"));
    }

    #[test]
    fn batch_renames_applied_simultaneously() {
        let mut m = sample();
        let mut map = HashMap::new();
        // Swap A and B — must not cascade (A→B→A).
        map.insert("A".to_owned(), "B".to_owned());
        map.insert("B".to_owned(), "A".to_owned());
        apply_renames(&mut m, &map);
        let r = m.reaction_by_id("r1").unwrap();
        assert_eq!(r.reactants[0].species, "B");
        assert_eq!(r.products[0].species, "A");
    }

    #[test]
    fn empty_map_is_noop() {
        let mut m = sample();
        let before = m.clone();
        apply_renames(&mut m, &HashMap::new());
        assert_eq!(m, before);
    }
}
