//! The Fig. 4 merge passes as standalone functions over *split* state.
//!
//! Historically each pass was a method on [`crate::session::CompositionSession`],
//! reading and writing the session's fields directly — which pinned the
//! twelve-pass pipeline to strictly serial execution. This module is the
//! restructuring that unpins it: every pass is a function over
//!
//! * a [`PassEnv`] — the cross-cutting state a pass touches (options, the
//!   in-flight ID mappings, the taken-id registry, the merge log, the two
//!   sides' evaluated initial values), each behind an enum that is either
//!   the session's single shared instance (serial path) or a per-pass
//!   shard/view (pipelined path, see [`crate::pipeline`]);
//! * a per-kind `*Mut` view bundling exactly the component list, indexes,
//!   delta indexes and cached keys that pass owns;
//! * read-only views of the at-most-two other kinds a pass consults
//!   ([`UnitsRead`] for unit resolution in conflict checks,
//!   [`CompartmentsRead`] for the species amount/concentration bridge).
//!
//! The serial path wires every pass to the same underlying state the old
//! methods used, so behaviour is unchanged; the pipelined path hands each
//! pass its own shard and a view of completed upstream shards. Both paths
//! run *this* code — there is one implementation of the paper's merge.
//!
//! What each pass reads and writes (the contract the
//! [`crate::pipeline`] scheduler's dependency DAG is built from):
//!
//! | pass | mapping shards read | shard written | other state read |
//! |---|---|---|---|
//! | functions | own | functions | — |
//! | units | — | units | — |
//! | compartmentTypes | — | compartmentTypes | — |
//! | speciesTypes | — | speciesTypes | — |
//! | compartments | upstream* + own | compartments | units |
//! | species | upstream* + own | species | units, compartments |
//! | parameters | upstream* + own | parameters | units |
//! | initialAssignments | upstream* + own | — | — |
//! | rules | upstream* + own | — | — |
//! | constraints | upstream* + own | — | — |
//! | reactions | upstream* + own | reactions | units |
//! | events | upstream* + own | events | — |
//!
//! \* "upstream" is the *declared* superset; per push the scheduler narrows
//! it to the shards whose **sources** (incoming ids of that kind) intersect
//! the pass's **lookups** (ids it feeds to the mapping table), which is
//! what makes the DAG wide in practice.

use std::borrow::Cow;
use std::sync::Arc;

use sbml_math::rewrite::{self, Resolver};
use sbml_math::MathExpr;
use sbml_model::rule::Constraint;
use sbml_model::{
    Compartment, CompartmentType, Event, FunctionDefinition, InitialAssignment, Model, Parameter,
    Reaction, Rule, Species, SpeciesType,
};
use sbml_units::convert::{
    conversion_factor, deterministic_to_stochastic, stochastic_to_deterministic, ReactionOrder,
};
use sbml_units::UnitDefinition;

use crate::cow::{CowIndex, CowKeys, CowList};
use crate::equality::{self, MappingTable, NoMap};
use crate::index::{ComponentIndex, FastSet};
use crate::keyrename;
use crate::initial_values::{IncrementalValues, InitialValues};
use crate::log::{EventKind, MergeLog};
use crate::options::{ComposeOptions, SemanticsLevel};
use crate::prepared::{IncomingKeys, Indexes, PreparedModel};

// ---------------------------------------------------------------------
// The incoming side of one push
// ---------------------------------------------------------------------

/// The incoming side of one push: the model plus whatever precomputed
/// analysis is available for it. Raw pushes carry only the model; prepared
/// pushes also carry the [`PreparedModel`]'s incoming keys, per-kind
/// indexes and evaluated initial values.
pub(crate) struct Incoming<'m> {
    pub(crate) model: &'m Model,
    pub(crate) keys: Option<&'m IncomingKeys>,
    pub(crate) idx: Option<&'m Indexes>,
    pub(crate) ivs: Option<&'m Arc<InitialValues>>,
    /// Cached pipeline plan slot of a prepared model (the plan is a pure
    /// function of the incoming side, so it is computed at most once per
    /// preparation).
    pub(crate) plan: Option<&'m std::sync::OnceLock<crate::pipeline::Plan>>,
}

impl<'m> Incoming<'m> {
    /// A raw push: no prepared indexes or initial values, and content
    /// keys only when the within-push parallel path precomputed them — the
    /// merge passes then treat those exactly as prepared-model keys,
    /// cached while the referenced ids are unmapped and recomputed
    /// otherwise.
    pub(crate) fn raw_with_keys(model: &'m Model, keys: Option<&'m IncomingKeys>) -> Incoming<'m> {
        Incoming { model, keys, idx: None, ivs: None, plan: None }
    }

    pub(crate) fn prepared(p: &'m PreparedModel) -> Incoming<'m> {
        Incoming {
            model: p.model(),
            keys: Some(&p.incoming),
            idx: Some(&p.analysis().idx),
            ivs: Some(&p.initial_values),
            plan: Some(&p.plan),
        }
    }

    /// Species lookup through the prepared index when available (ROADMAP:
    /// conflict-check lookups stop being linear scans), else the model's
    /// own linear scan. First-wins index semantics match first-match scans.
    fn species_by_id(&self, id: &str) -> Option<&'m Species> {
        match self.idx {
            Some(ix) => ix.species_by_id.get(id).map(|pos| &self.model.species[pos]),
            None => self.model.species_by_id(id),
        }
    }

    /// Compartment lookup, index-backed when prepared.
    fn compartment_by_id(&self, id: &str) -> Option<&'m Compartment> {
        match self.idx {
            Some(ix) => ix.compartments_by_id.get(id).map(|pos| &self.model.compartments[pos]),
            None => self.model.compartment_by_id(id),
        }
    }

    /// Resolve a units reference against this model, index-backed when
    /// prepared, falling back to SBML builtins.
    fn resolve_units(&self, units: Option<&str>) -> Option<UnitDefinition> {
        let id = units?;
        match self.idx {
            Some(ix) => {
                ix.units_by_id.get(id).map(|pos| self.model.unit_definitions[pos].clone())
            }
            None => self.model.unit_definitions.iter().find(|u| u.id == id).cloned(),
        }
        .or_else(|| sbml_units::definition::builtin(id))
    }
}

// ---------------------------------------------------------------------
// Cross-cutting pass state: mappings, taken ids, initial values
// ---------------------------------------------------------------------

/// A 256-bit first-byte index over mapping-source ids. Mapping tables are
/// probed for *every* identifier of every formula a pass touches; most
/// probes miss, and most misses are decidable from the identifier's first
/// byte alone (a push's mapping sources cluster on a handful of prefixes).
/// One branch + bit test replaces a hash probe on those misses. The mask
/// is a superset filter: false positives fall through to the real lookup,
/// false negatives cannot happen (every insert sets its bit, nothing is
/// ever removed mid-push).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrefixMask([u64; 4]);

impl PrefixMask {
    pub(crate) fn insert(&mut self, id: &str) {
        if let Some(&b) = id.as_bytes().first() {
            self.0[(b >> 6) as usize] |= 1 << (b & 63);
        }
    }

    fn may_contain(&self, id: &str) -> bool {
        match id.as_bytes().first() {
            Some(&b) => self.0[(b >> 6) as usize] & (1 << (b & 63)) != 0,
            None => false,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.0 = [0; 4];
    }

    pub(crate) fn of_tables<'a>(tables: impl Iterator<Item = &'a MappingTable>) -> PrefixMask {
        let mut mask = PrefixMask::default();
        for t in tables {
            for key in t.keys() {
                mask.insert(key);
            }
        }
        mask
    }
}

/// The in-flight ID mapping state a pass runs over: the session's single
/// per-push table (serial), or this pass's own shard plus read-only views
/// of the upstream shards its dependencies produced (pipelined). Upstream
/// shards are ordered **latest pass first**, so a source id written by two
/// upstream passes resolves to the later write — exactly the overwrite the
/// single table would have seen at this pass's position in serial order.
/// Both variants carry a [`PrefixMask`] over their sources.
pub(crate) enum MapStore<'a> {
    Single { table: &'a mut MappingTable, mask: &'a mut PrefixMask },
    Sharded { own: &'a mut MappingTable, upstream: Vec<&'a MappingTable>, mask: PrefixMask },
}

impl MapStore<'_> {
    pub(crate) fn get(&self, id: &str) -> Option<&str> {
        match self {
            MapStore::Single { table, mask } => {
                if !mask.may_contain(id) {
                    return None;
                }
                table.get(id).map(String::as_str)
            }
            MapStore::Sharded { own, upstream, mask } => {
                if !mask.may_contain(id) {
                    return None;
                }
                // Empty-table guards: a pass whose kind writes no
                // mappings probes its own shard for every identifier of
                // every formula — skip the hash when there is nothing.
                if !own.is_empty() {
                    if let Some(hit) = own.get(id) {
                        return Some(hit);
                    }
                }
                upstream
                    .iter()
                    .filter(|s| !s.is_empty())
                    .find_map(|s| s.get(id).map(String::as_str))
            }
        }
    }

    pub(crate) fn contains(&self, id: &str) -> bool {
        self.get(id).is_some()
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            MapStore::Single { table, .. } => table.is_empty(),
            MapStore::Sharded { own, upstream, .. } => {
                own.is_empty() && upstream.iter().all(|s| s.is_empty())
            }
        }
    }

    fn add(&mut self, from: String, to: String) {
        if from == to {
            return;
        }
        match self {
            MapStore::Single { table, mask } => {
                mask.insert(&from);
                table.insert(from, to);
            }
            MapStore::Sharded { own, mask, .. } => {
                mask.insert(&from);
                own.insert(from, to);
            }
        }
    }
}

impl Resolver for MapStore<'_> {
    fn resolve(&self, id: &str) -> Option<&str> {
        self.get(id)
    }

    fn is_identity(&self) -> bool {
        self.is_empty()
    }
}

/// A mapping view with a set of ids hidden — kinetic-law local parameters
/// shadow the global mapping table inside their law. (The serial engine
/// used to remove/restore the entries; an overlay needs no mutation and
/// works over sharded views whose upstream entries cannot be removed.)
struct HideIds<'a, 'b> {
    inner: &'a MapStore<'b>,
    hidden: &'a [&'a str],
}

impl Resolver for HideIds<'_, '_> {
    fn resolve(&self, id: &str) -> Option<&str> {
        if self.hidden.contains(&id) {
            None
        } else {
            self.inner.get(id)
        }
    }

    fn is_identity(&self) -> bool {
        self.inner.is_empty()
    }
}

/// The taken-global-id registry: an immutable base set (shared by `Arc`
/// with a [`PreparedModel`] when one is adopted as the accumulator) plus
/// this session's own additions. Splitting the two makes adopting a
/// prepared base a refcount bump instead of a clone of every id string.
#[derive(Debug, Clone)]
pub(crate) struct IdRegistry {
    pub(crate) base: Arc<FastSet<String>>,
    pub(crate) added: FastSet<String>,
}

impl IdRegistry {
    pub(crate) fn new() -> IdRegistry {
        IdRegistry { base: Arc::new(FastSet::default()), added: FastSet::default() }
    }

    pub(crate) fn contains(&self, id: &str) -> bool {
        self.base.contains(id) || self.added.contains(id)
    }

    pub(crate) fn insert(&mut self, id: String) {
        self.added.insert(id);
    }

    /// Replace the whole registry with a new base set.
    pub(crate) fn reset(&mut self, base: Arc<FastSet<String>>) {
        self.base = base;
        self.added.clear();
    }

    /// Has any push registered an id beyond the shared base set? Used by
    /// the COW restore path to assert a stayed-shared push really touched
    /// nothing.
    pub(crate) fn has_additions(&self) -> bool {
        !self.added.is_empty()
    }
}

/// The taken-id state a pass probes and extends: the session registry
/// (serial), or the shared pre-push registry plus the additions of the
/// passes in this pass's dependency closure plus an own additions set
/// (pipelined). Passes outside the closure are guaranteed (by the
/// root-family analysis in [`crate::pipeline`]) never to add an id this
/// pass could probe, so hiding their additions cannot change an answer.
pub(crate) enum TakenStore<'a> {
    Single(&'a mut IdRegistry),
    Sharded {
        base: &'a IdRegistry,
        visible: Vec<&'a FastSet<String>>,
        own: &'a mut FastSet<String>,
    },
}

impl TakenStore<'_> {
    fn contains(&self, id: &str) -> bool {
        match self {
            TakenStore::Single(reg) => reg.contains(id),
            TakenStore::Sharded { base, visible, own } => {
                base.contains(id) || own.contains(id) || visible.iter().any(|s| s.contains(id))
            }
        }
    }

    fn insert(&mut self, id: String) {
        match self {
            TakenStore::Single(reg) => reg.insert(id),
            TakenStore::Sharded { own, .. } => {
                own.insert(id);
            }
        }
    }
}

/// Accumulator-side initial values as of the start of the push.
pub(crate) enum IvA<'a> {
    Store(&'a IncrementalValues),
    Snap(&'a InitialValues),
}

impl IvA<'_> {
    fn get(&self, id: &str) -> Option<f64> {
        match self {
            IvA::Store(store) => store.get(id),
            IvA::Snap(values) => values.get(id),
        }
    }
}

// ---------------------------------------------------------------------
// Read-only cross-kind views
// ---------------------------------------------------------------------

/// Merged-side unit definitions + by-id index: the only accumulator state
/// a non-units pass resolves units against (conflict checks).
pub(crate) struct UnitsRead<'a> {
    pub(crate) list: &'a [UnitDefinition],
    pub(crate) by_id: &'a ComponentIndex,
}

impl UnitsRead<'_> {
    /// Resolve a units reference against the accumulator through the
    /// persistent by-id index (ROADMAP: `resolve_units` was a linear scan
    /// inside conflict checks), falling back to SBML builtins.
    fn resolve(&self, units: Option<&str>) -> Option<UnitDefinition> {
        let id = units?;
        self.by_id
            .get(id)
            .map(|pos| self.list[pos].clone())
            .or_else(|| sbml_units::definition::builtin(id))
    }
}

/// Merged-side compartments + by-id index, for the species pass's
/// amount-vs-concentration reconciliation.
pub(crate) struct CompartmentsRead<'a> {
    pub(crate) list: &'a [Compartment],
    pub(crate) by_id: &'a ComponentIndex,
}

impl CompartmentsRead<'_> {
    fn by_id(&self, id: &str) -> Option<&Compartment> {
        self.by_id.get(id).map(|pos| &self.list[pos])
    }
}

// ---------------------------------------------------------------------
// Per-kind mutable state views
// ---------------------------------------------------------------------

// Accumulator-side lists, persistent indexes and key caches arrive as
// copy-on-write wrappers ([`crate::cow`]): reads go through `Deref` into
// the shared base, the first append/insert materialises that kind. The
// per-push delta indexes stay plain — they start empty every push.

pub(crate) struct FunctionsMut<'a> {
    pub(crate) list: &'a mut CowList<FunctionDefinition>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) delta_by_content: &'a mut ComponentIndex,
    pub(crate) keys: &'a mut CowKeys,
}

pub(crate) struct UnitsMut<'a> {
    pub(crate) list: &'a mut CowList<UnitDefinition>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) keys: &'a mut CowKeys,
}

pub(crate) struct CompartmentTypesMut<'a> {
    pub(crate) list: &'a mut CowList<CompartmentType>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_name: &'a mut CowIndex,
    pub(crate) delta_by_name: &'a mut ComponentIndex,
}

pub(crate) struct SpeciesTypesMut<'a> {
    pub(crate) list: &'a mut CowList<SpeciesType>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_name: &'a mut CowIndex,
    pub(crate) delta_by_name: &'a mut ComponentIndex,
}

pub(crate) struct CompartmentsMut<'a> {
    pub(crate) list: &'a mut CowList<Compartment>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_name: &'a mut CowIndex,
    pub(crate) delta_by_name: &'a mut ComponentIndex,
}

pub(crate) struct SpeciesMut<'a> {
    pub(crate) list: &'a mut CowList<Species>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_name: &'a mut CowIndex,
    pub(crate) delta_by_name: &'a mut ComponentIndex,
}

pub(crate) struct ParametersMut<'a> {
    pub(crate) list: &'a mut CowList<Parameter>,
    pub(crate) by_id: &'a mut CowIndex,
}

pub(crate) struct AssignmentsMut<'a> {
    pub(crate) list: &'a mut CowList<InitialAssignment>,
    pub(crate) by_symbol: &'a mut CowIndex,
}

pub(crate) struct RulesMut<'a> {
    pub(crate) list: &'a mut CowList<Rule>,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) by_variable: &'a mut CowIndex,
    pub(crate) delta_by_content: &'a mut ComponentIndex,
}

pub(crate) struct ConstraintsMut<'a> {
    pub(crate) list: &'a mut CowList<Constraint>,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) delta_by_content: &'a mut ComponentIndex,
}

pub(crate) struct ReactionsMut<'a> {
    pub(crate) list: &'a mut CowList<Reaction>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) delta_by_content: &'a mut ComponentIndex,
    pub(crate) keys: &'a mut CowKeys,
}

pub(crate) struct EventsMut<'a> {
    pub(crate) list: &'a mut CowList<Event>,
    pub(crate) by_id: &'a mut CowIndex,
    pub(crate) by_content: &'a mut CowIndex,
    pub(crate) delta_by_content: &'a mut ComponentIndex,
    pub(crate) keys: &'a mut CowKeys,
}

// ---------------------------------------------------------------------
// The pass environment
// ---------------------------------------------------------------------

/// Everything a merge pass touches besides its own kind's component state.
pub(crate) struct PassEnv<'a> {
    pub(crate) options: &'a ComposeOptions,
    pub(crate) maps: MapStore<'a>,
    pub(crate) taken: TakenStore<'a>,
    pub(crate) log: &'a mut MergeLog,
    pub(crate) iv_a: IvA<'a>,
    pub(crate) iv_b: &'a InitialValues,
}

impl PassEnv<'_> {
    fn add_mapping(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.maps.add(from.into(), to.into());
    }

    fn map_id<'x>(&'x self, id: &'x str) -> &'x str {
        self.maps.get(id).unwrap_or(id)
    }

    fn map_string(&self, s: &str) -> String {
        self.map_id(s).to_owned()
    }

    fn map_opt(&self, s: &Option<String>) -> Option<String> {
        s.as_ref().map(|v| self.map_string(v))
    }

    /// [`rewrite::rename_in_place`] under this pass's mapping view — for
    /// maths the pass already owns (a component cloned for insertion),
    /// where rebuilding a second tree would be pure waste.
    fn map_math_in_place(&self, math: &mut MathExpr) {
        if self.maps.is_empty() {
            return;
        }
        rewrite::rename_in_place(math, &self.maps);
    }

    /// Is a component with the given prepared reference set untouched by
    /// the current push's mappings (so every `map_*`/`map_math` over it is
    /// the identity)? Without prepared refs, only an empty mapping table
    /// guarantees that.
    fn refs_clean(&self, refs: Option<&[Arc<str>]>) -> bool {
        match refs {
            Some(refs) => {
                self.maps.is_empty() || refs.iter().all(|r| !self.maps.contains(r.as_ref()))
            }
            None => self.maps.is_empty(),
        }
    }

    /// Fresh id based on `base`, registering it as taken.
    fn fresh_id(&mut self, base: &str) -> String {
        if !self.taken.contains(base) {
            self.taken.insert(base.to_owned());
            return base.to_owned();
        }
        for n in 1.. {
            let candidate = format!("{base}_{n}");
            if !self.taken.contains(&candidate) {
                self.taken.insert(candidate.clone());
                return candidate;
            }
        }
        unreachable!("id space exhausted")
    }

    /// Register an id as taken when inserting a B component verbatim, or
    /// rename it if an unrelated component holds it. Returns the final id
    /// and logs the rename.
    fn claim_id(&mut self, kind: &'static str, id: &str) -> String {
        if self.taken.contains(id) {
            let fresh = self.fresh_id(id);
            self.add_mapping(id, fresh.clone());
            self.log.push(
                EventKind::Renamed,
                kind,
                id,
                fresh.clone(),
                "id already taken by an unrelated component",
            );
            fresh
        } else {
            self.taken.insert(id.to_owned());
            id.to_owned()
        }
    }

    /// Accumulator-side initial value of `id` as of the start of the
    /// current push. (The incremental store is only extended in
    /// `finish_push`, so mid-push reads always see the pre-push state,
    /// exactly like the batch snapshot.)
    fn iv_a_get(&self, id: &str) -> Option<f64> {
        self.iv_a.get(id)
    }

    /// Is the cached-key incremental-rename fast path available? Heavy
    /// semantics only: light/none math key sections are infix text, not
    /// canonical pattern text, so only the heavy form can be renamed in
    /// place. Keys produced through the fast path are byte-identical to a
    /// full recompute (property-tested at the `sbml-math` and key layers).
    fn key_rename_on(&self) -> bool {
        self.options.incremental_key_rename && self.options.semantics == SemanticsLevel::Heavy
    }

    fn values_agree(&self, a: Option<f64>, b: Option<f64>) -> bool {
        equality::values_agree(a, b)
    }

    // Canonical keys under this pass's mapping view (`mapped`) or none.

    fn name_key(&self, id: &str, name: Option<&str>) -> String {
        equality::name_key(self.options, id, name)
    }

    fn math_key(&self, math: &MathExpr, mapped: bool) -> String {
        if mapped {
            equality::math_key(self.options, math, &self.maps)
        } else {
            equality::math_key(self.options, math, &NoMap)
        }
    }

    fn unit_key(&self, def: &UnitDefinition) -> String {
        equality::unit_key(self.options, def)
    }

    fn function_key(&self, f: &FunctionDefinition, mapped: bool) -> String {
        if mapped {
            equality::function_key(self.options, f, &self.maps)
        } else {
            equality::function_key(self.options, f, &NoMap)
        }
    }

    fn rule_key(&self, rule: &Rule, mapped: bool) -> String {
        if mapped {
            equality::rule_key(self.options, rule, &self.maps)
        } else {
            equality::rule_key(self.options, rule, &NoMap)
        }
    }

    fn constraint_key(&self, math: &MathExpr, mapped: bool) -> String {
        if mapped {
            equality::constraint_key(self.options, math, &self.maps)
        } else {
            equality::constraint_key(self.options, math, &NoMap)
        }
    }

    fn reaction_key(&self, r: &Reaction, mapped: bool) -> String {
        if mapped {
            equality::reaction_key(self.options, r, &self.maps)
        } else {
            equality::reaction_key(self.options, r, &NoMap)
        }
    }

    fn event_key(&self, ev: &Event, mapped: bool) -> String {
        if mapped {
            equality::event_key(self.options, ev, &self.maps)
        } else {
            equality::event_key(self.options, ev, &NoMap)
        }
    }
}

// ---------------------------------------------------------------------
// Shared key helpers
// ---------------------------------------------------------------------

/// One incoming component's canonical key: a shared reference into the
/// [`PreparedModel`]'s key store, or a key computed on the spot. Cached
/// keys are only used where they are byte-identical to what the raw path
/// would compute (see [`crate::prepared`] module docs).
enum IncomingKey<'a> {
    Cached(&'a Arc<str>),
    Computed(String),
}

impl IncomingKey<'_> {
    fn as_str(&self) -> &str {
        match self {
            IncomingKey::Cached(k) => k,
            IncomingKey::Computed(s) => s,
        }
    }

    /// Intern as `Arc<str>`: refcount bump for cached keys, one allocation
    /// for computed ones.
    fn to_arc(&self) -> Arc<str> {
        match self {
            IncomingKey::Cached(k) => Arc::clone(k),
            IncomingKey::Computed(s) => Arc::from(s.as_str()),
        }
    }

    /// Insert into an index, sharing the `Arc` when cached.
    fn insert_into(&self, index: &mut ComponentIndex, pos: usize) -> bool {
        match self {
            IncomingKey::Cached(k) => index.insert_shared(k, pos),
            IncomingKey::Computed(s) => index.insert(s, pos),
        }
    }
}

/// The `K[...]` section of a canonical reaction key (see
/// [`crate::equality::reaction_key`]'s format
/// `rxn:R[..];P[..];M[..];K[math]:rev=bool`). The math section may
/// contain almost any character (light/none-semantics keys are infix
/// text with `=`, and patterns contain `[`/`]` for piecewise), so the
/// markers rely on position, not alphabet: participant items are
/// `id*stoich` (SBML ids are word characters, no `;` or `[`), making the
/// FIRST `;K[` the true section start, and nothing but the literal
/// `true`/`false` follows the terminator, making the LAST `]:rev=` the
/// true section end. Do not swap `find`/`rfind` here.
pub(crate) fn key_math_section(key: &str) -> Option<&str> {
    let start = key.find(";K[")? + 3;
    let end = key.rfind("]:rev=")?;
    key.get(start..end)
}

// ---------------------------------------------------------------------
// Fig. 4 line 1: function definitions
// ---------------------------------------------------------------------

fn function_key_matches(env: &PassEnv<'_>, st: &FunctionsMut<'_>, pos: usize, key: &str) -> bool {
    if let Some(cached) = st.keys.get(pos) {
        cached.as_ref() == key
    } else {
        env.function_key(&st.list[pos], false) == key
    }
}

pub(crate) fn functions(env: &mut PassEnv<'_>, st: &mut FunctionsMut<'_>, inc: &Incoming<'_>) {
    for (i, f) in inc.model.function_definitions.iter().enumerate() {
        let content_key = match inc.keys {
            Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).functions[i])) => {
                IncomingKey::Cached(&keys.functions[i])
            }
            Some(keys) if env.key_rename_on() => IncomingKey::Computed(
                keyrename::function_key(&keys.functions[i], &env.maps)
                    .unwrap_or_else(|| env.function_key(f, true)),
            ),
            _ => IncomingKey::Computed(env.function_key(f, true)),
        };
        let content_key_str = content_key.as_str();
        if let Some(pos) = st.by_id.get(&f.id) {
            if function_key_matches(env, st, pos, content_key_str) {
                env.log.push(
                    EventKind::Duplicate,
                    "functionDefinition",
                    &f.id,
                    &f.id,
                    "identical definition",
                );
            } else {
                env.log.push(
                    EventKind::Conflict,
                    "functionDefinition",
                    &f.id,
                    &f.id,
                    "same id, different body; first model wins",
                );
            }
            continue;
        }
        let content_pos = st
            .by_content
            .get(content_key_str)
            .or_else(|| st.delta_by_content.get(content_key_str));
        if let Some(pos) = content_pos {
            let target = st.list[pos].id.clone();
            env.add_mapping(&f.id, &target);
            env.log.push(
                EventKind::Mapped,
                "functionDefinition",
                &f.id,
                target,
                "equivalent body (α-renaming/commutativity)",
            );
            continue;
        }
        let final_id = env.claim_id("functionDefinition", &f.id);
        let mut nf = f.clone();
        nf.id = final_id.clone();
        if !env.refs_clean(inc.keys.map(|k| k.refs(inc.model).functions[i].as_ref())) {
            env.map_math_in_place(&mut nf.body);
        }
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        content_key.insert_into(st.delta_by_content, pos);
        st.list.push(nf);
        env.log.push(EventKind::Added, "functionDefinition", &f.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 2: unit definitions
// ---------------------------------------------------------------------

fn unit_key_matches(env: &PassEnv<'_>, st: &UnitsMut<'_>, pos: usize, key: &str) -> bool {
    if let Some(cached) = st.keys.get(pos) {
        cached.as_ref() == key
    } else {
        env.unit_key(&st.list[pos]) == key
    }
}

pub(crate) fn units(env: &mut PassEnv<'_>, st: &mut UnitsMut<'_>, inc: &Incoming<'_>) {
    for (i, u) in inc.model.unit_definitions.iter().enumerate() {
        // Unit keys never depend on ID mappings — always reusable.
        let content_key = match inc.keys {
            Some(keys) => IncomingKey::Cached(&keys.units[i]),
            None => IncomingKey::Computed(env.unit_key(u)),
        };
        let content_key_str = content_key.as_str();
        if let Some(pos) = st.by_id.get(&u.id) {
            if unit_key_matches(env, st, pos, content_key_str) {
                env.log.push(EventKind::Duplicate, "unitDefinition", &u.id, &u.id, "same units");
            } else {
                let ours = &st.list[pos];
                env.log.push(
                    EventKind::Conflict,
                    "unitDefinition",
                    &u.id,
                    &u.id,
                    format!(
                        "same id, different units ({} vs {}); first model wins",
                        ours.signature(),
                        u.signature()
                    ),
                );
            }
            continue;
        }
        if let Some(pos) = st.by_content.get(content_key_str) {
            let target = st.list[pos].id.clone();
            env.add_mapping(&u.id, &target);
            env.log.push(
                EventKind::Mapped,
                "unitDefinition",
                &u.id,
                target,
                "equivalent unit signature",
            );
            continue;
        }
        let final_id = env.claim_id("unitDefinition", &u.id);
        let mut nu = u.clone();
        nu.id = final_id.clone();
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        // A unit's content key is invariant under renaming and
        // mappings, so it can enter the persistent index immediately.
        let key = content_key.to_arc();
        st.by_content.insert_shared(&key, pos);
        if env.options.cache_content_keys {
            st.keys.push(key);
        }
        st.list.push(nu);
        env.log.push(EventKind::Added, "unitDefinition", &u.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 lines 3–4: compartment types, species types
// ---------------------------------------------------------------------

pub(crate) fn compartment_types(
    env: &mut PassEnv<'_>,
    st: &mut CompartmentTypesMut<'_>,
    inc: &Incoming<'_>,
) {
    for (i, t) in inc.model.compartment_types.iter().enumerate() {
        // Name keys never depend on ID mappings — always reusable.
        let name_key = match inc.keys {
            Some(keys) => IncomingKey::Cached(&keys.compartment_types[i]),
            None => IncomingKey::Computed(env.name_key(&t.id, t.name.as_deref())),
        };
        if st.by_id.get(&t.id).is_some() {
            env.log.push(EventKind::Duplicate, "compartmentType", &t.id, &t.id, "same id");
            continue;
        }
        let name_pos = st
            .by_name
            .get(name_key.as_str())
            .or_else(|| st.delta_by_name.get(name_key.as_str()));
        if let Some(pos) = name_pos {
            let target = st.list[pos].id.clone();
            env.add_mapping(&t.id, &target);
            env.log.push(EventKind::Mapped, "compartmentType", &t.id, target, "synonymous name");
            continue;
        }
        let final_id = env.claim_id("compartmentType", &t.id);
        let mut nt = t.clone();
        nt.id = final_id.clone();
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        name_key.insert_into(st.delta_by_name, pos);
        st.list.push(nt);
        env.log.push(EventKind::Added, "compartmentType", &t.id, final_id, "new");
    }
}

pub(crate) fn species_types(
    env: &mut PassEnv<'_>,
    st: &mut SpeciesTypesMut<'_>,
    inc: &Incoming<'_>,
) {
    for (i, t) in inc.model.species_types.iter().enumerate() {
        let name_key = match inc.keys {
            Some(keys) => IncomingKey::Cached(&keys.species_types[i]),
            None => IncomingKey::Computed(env.name_key(&t.id, t.name.as_deref())),
        };
        if st.by_id.get(&t.id).is_some() {
            env.log.push(EventKind::Duplicate, "speciesType", &t.id, &t.id, "same id");
            continue;
        }
        let name_pos = st
            .by_name
            .get(name_key.as_str())
            .or_else(|| st.delta_by_name.get(name_key.as_str()));
        if let Some(pos) = name_pos {
            let target = st.list[pos].id.clone();
            env.add_mapping(&t.id, &target);
            env.log.push(EventKind::Mapped, "speciesType", &t.id, target, "synonymous name");
            continue;
        }
        let final_id = env.claim_id("speciesType", &t.id);
        let mut nt = t.clone();
        nt.id = final_id.clone();
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        name_key.insert_into(st.delta_by_name, pos);
        st.list.push(nt);
        env.log.push(EventKind::Added, "speciesType", &t.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 5: compartments
// ---------------------------------------------------------------------

fn compartment_sizes_agree(
    env: &PassEnv<'_>,
    units: &UnitsRead<'_>,
    ours: &Compartment,
    theirs: &Compartment,
    inc: &Incoming<'_>,
) -> bool {
    let va = ours.size.or_else(|| env.iv_a_get(&ours.id));
    let vb = theirs.size.or_else(|| env.iv_b.get(&theirs.id));
    if env.values_agree(va, vb) {
        return true;
    }
    if env.options.semantics != SemanticsLevel::Heavy {
        return false;
    }
    // Try unit conversion (e.g. litres vs millilitres).
    let (Some(va), Some(vb)) = (va, vb) else { return false };
    let (Some(ua), Some(ub)) =
        (units.resolve(ours.units.as_deref()), inc.resolve_units(theirs.units.as_deref()))
    else {
        return false;
    };
    match conversion_factor(&ub, &ua) {
        Some(factor) => env.values_agree(Some(va), Some(vb * factor)),
        None => false,
    }
}

pub(crate) fn compartments(
    env: &mut PassEnv<'_>,
    st: &mut CompartmentsMut<'_>,
    units: &UnitsRead<'_>,
    inc: &Incoming<'_>,
) {
    for (i, c) in inc.model.compartments.iter().enumerate() {
        let name_key = match inc.keys {
            Some(keys) => IncomingKey::Cached(&keys.compartments[i]),
            None => IncomingKey::Computed(env.name_key(&c.id, c.name.as_deref())),
        };
        let matched = st.by_id.get(&c.id).map(|pos| (pos, true)).or_else(|| {
            st.by_name
                .get(name_key.as_str())
                .or_else(|| st.delta_by_name.get(name_key.as_str()))
                .map(|pos| (pos, false))
        });
        if let Some((pos, by_identifier)) = matched {
            let ours = &st.list[pos];
            let target = ours.id.clone();
            let sizes_agree = compartment_sizes_agree(env, units, ours, c, inc);
            if !by_identifier {
                env.add_mapping(&c.id, &target);
            }
            if sizes_agree && st.list[pos].spatial_dimensions == c.spatial_dimensions {
                env.log.push(
                    if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                    "compartment",
                    &c.id,
                    target,
                    "same compartment",
                );
            } else {
                env.log.push(
                    EventKind::Conflict,
                    "compartment",
                    &c.id,
                    target,
                    format!(
                        "attributes differ (size {:?} vs {:?}); first model wins",
                        st.list[pos].size, c.size
                    ),
                );
            }
            continue;
        }
        let final_id = env.claim_id("compartment", &c.id);
        let mut nc = c.clone();
        nc.id = final_id.clone();
        nc.compartment_type = env.map_opt(&c.compartment_type);
        nc.units = env.map_opt(&c.units);
        nc.outside = env.map_opt(&c.outside);
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        name_key.insert_into(st.delta_by_name, pos);
        st.list.push(nc);
        env.log.push(EventKind::Added, "compartment", &c.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 6: species
// ---------------------------------------------------------------------

/// Initial-value agreement with Fig. 6 unit awareness:
/// direct comparison → substance-unit conversion → amount vs
/// concentration reconciliation through the compartment volume.
fn species_values_agree(
    env: &PassEnv<'_>,
    units: &UnitsRead<'_>,
    comps: &CompartmentsRead<'_>,
    ours: &Species,
    theirs: &Species,
    inc: &Incoming<'_>,
) -> bool {
    let va = ours.initial_value().or_else(|| env.iv_a_get(&ours.id));
    let vb = theirs.initial_value().or_else(|| env.iv_b.get(&theirs.id));
    if env.values_agree(va, vb) {
        return true;
    }
    if env.options.semantics != SemanticsLevel::Heavy {
        return false;
    }
    let (Some(va), Some(vb)) = (va, vb) else { return false };

    // Substance-unit conversion (e.g. mole vs millimole).
    if let (Some(ua), Some(ub)) = (
        units.resolve(ours.substance_units.as_deref()),
        inc.resolve_units(theirs.substance_units.as_deref()),
    ) {
        if let Some(factor) = conversion_factor(&ub, &ua) {
            if env.values_agree(Some(va), Some(vb * factor)) {
                return true;
            }
        }
    }

    // Amount vs concentration: amount = concentration × volume.
    let vol_a = comps
        .by_id(&ours.compartment)
        .and_then(|c| c.size)
        .or_else(|| env.iv_a_get(&ours.compartment));
    let vol_b = inc
        .compartment_by_id(&theirs.compartment)
        .and_then(|c| c.size)
        .or_else(|| env.iv_b.get(&theirs.compartment));
    if let (Some(amount), Some(conc), Some(vol)) =
        (ours.initial_amount, theirs.initial_concentration, vol_b)
    {
        if env.values_agree(Some(amount), Some(conc * vol)) {
            return true;
        }
    }
    match (ours.initial_concentration, theirs.initial_amount, vol_a) {
        (Some(conc), Some(amount), Some(vol))
            if vol != 0.0 && env.values_agree(Some(conc), Some(amount / vol)) =>
        {
            return true;
        }
        _ => {}
    }
    false
}

pub(crate) fn species(
    env: &mut PassEnv<'_>,
    st: &mut SpeciesMut<'_>,
    units: &UnitsRead<'_>,
    comps: &CompartmentsRead<'_>,
    inc: &Incoming<'_>,
) {
    for (i, s) in inc.model.species.iter().enumerate() {
        let name_key = match inc.keys {
            Some(keys) => IncomingKey::Cached(&keys.species[i]),
            None => IncomingKey::Computed(env.name_key(&s.id, s.name.as_deref())),
        };
        let matched = st.by_id.get(&s.id).map(|pos| (pos, true)).or_else(|| {
            st.by_name
                .get(name_key.as_str())
                .or_else(|| st.delta_by_name.get(name_key.as_str()))
                .map(|pos| (pos, false))
        });
        if let Some((pos, by_identifier)) = matched {
            let ours = &st.list[pos];
            let target = ours.id.clone();
            let compartments_match = ours.compartment == env.map_id(&s.compartment);
            let values_ok = species_values_agree(env, units, comps, ours, s, inc);
            if !by_identifier {
                env.add_mapping(&s.id, &target);
            }
            if compartments_match && values_ok {
                env.log.push(
                    if by_identifier { EventKind::Duplicate } else { EventKind::Mapped },
                    "species",
                    &s.id,
                    target,
                    "same species",
                );
            } else {
                let reason = if !compartments_match {
                    "compartments differ; first model wins"
                } else {
                    "initial values differ; first model wins"
                };
                env.log.push(EventKind::Conflict, "species", &s.id, target, reason);
            }
            continue;
        }
        let final_id = env.claim_id("species", &s.id);
        let mut ns = s.clone();
        ns.id = final_id.clone();
        ns.compartment = env.map_string(&s.compartment);
        ns.species_type = env.map_opt(&s.species_type);
        ns.substance_units = env.map_opt(&s.substance_units);
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        name_key.insert_into(st.delta_by_name, pos);
        st.list.push(ns);
        env.log.push(EventKind::Added, "species", &s.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 7: parameters (always kept; renamed on clash — §3)
// ---------------------------------------------------------------------

fn parameter_values_agree(
    env: &PassEnv<'_>,
    units: &UnitsRead<'_>,
    ours: &Parameter,
    theirs: &Parameter,
    inc: &Incoming<'_>,
) -> bool {
    let va = ours.value.or_else(|| env.iv_a_get(&ours.id));
    let vb = theirs.value.or_else(|| env.iv_b.get(&theirs.id));
    if env.values_agree(va, vb) {
        return true;
    }
    if env.options.semantics != SemanticsLevel::Heavy {
        return false;
    }
    let (Some(va), Some(vb)) = (va, vb) else { return false };
    if let (Some(ua), Some(ub)) =
        (units.resolve(ours.units.as_deref()), inc.resolve_units(theirs.units.as_deref()))
    {
        if let Some(factor) = conversion_factor(&ub, &ua) {
            return env.values_agree(Some(va), Some(vb * factor));
        }
    }
    false
}

pub(crate) fn parameters(
    env: &mut PassEnv<'_>,
    st: &mut ParametersMut<'_>,
    units: &UnitsRead<'_>,
    inc: &Incoming<'_>,
) {
    for p in &inc.model.parameters {
        if let Some(pos) = st.by_id.get(&p.id) {
            let ours_value = st.list[pos].value;
            if parameter_values_agree(env, units, &st.list[pos], p, inc) {
                env.log.push(EventKind::Duplicate, "parameter", &p.id, &p.id, "same id and value");
            } else {
                // Keep both: rename the incoming one (paper §3). The
                // renamed parameter stays out of the by-id index until
                // the push ends, as in the per-pass rebuild.
                let fresh = env.fresh_id(&p.id);
                env.add_mapping(&p.id, &fresh);
                let mut np = p.clone();
                np.id = fresh.clone();
                np.units = env.map_opt(&p.units);
                st.list.push(np);
                env.log.push(
                    EventKind::Conflict,
                    "parameter",
                    &p.id,
                    fresh.clone(),
                    format!(
                        "values differ ({:?} vs {:?}); both kept, incoming renamed",
                        ours_value, p.value
                    ),
                );
                env.log.push(
                    EventKind::Renamed,
                    "parameter",
                    &p.id,
                    fresh,
                    "renamed to avoid conflict",
                );
            }
            continue;
        }
        // Different id: always include (no content matching for
        // parameters — the paper: "there is no way of confirming
        // whether they are intended to be equal or not").
        let final_id = env.claim_id("parameter", &p.id);
        let mut np = p.clone();
        np.id = final_id.clone();
        np.units = env.map_opt(&p.units);
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        st.list.push(np);
        env.log.push(EventKind::Added, "parameter", &p.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Initial assignments (collected before merge; conflict-checked here)
// ---------------------------------------------------------------------

pub(crate) fn initial_assignments(
    env: &mut PassEnv<'_>,
    st: &mut AssignmentsMut<'_>,
    inc: &Incoming<'_>,
) {
    for ia in &inc.model.initial_assignments {
        let symbol = env.map_string(&ia.symbol);
        if let Some(pos) = st.by_symbol.get(&symbol) {
            let ours = &st.list[pos];
            let math_equal = env.math_key(&ours.math, false) == env.math_key(&ia.math, true);
            // The paper's improvement over semanticSBML: evaluate the
            // maths and compare values when structure differs.
            let values_equal = env.options.collect_initial_values
                && env.values_agree(env.iv_a_get(&ours.symbol), env.iv_b.get(&ia.symbol));
            if math_equal || values_equal {
                env.log.push(
                    EventKind::Duplicate,
                    "initialAssignment",
                    &ia.symbol,
                    symbol,
                    if math_equal { "same maths" } else { "same evaluated value" },
                );
            } else {
                env.log.push(
                    EventKind::Conflict,
                    "initialAssignment",
                    &ia.symbol,
                    symbol,
                    "different initial maths for one symbol; first model wins",
                );
            }
            continue;
        }
        let mut nia = ia.clone();
        nia.symbol = symbol.clone();
        env.map_math_in_place(&mut nia.math);
        st.by_symbol.insert(&symbol, st.list.len());
        st.list.push(nia);
        env.log.push(EventKind::Added, "initialAssignment", &ia.symbol, symbol, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 8: rules
// ---------------------------------------------------------------------

pub(crate) fn rules(env: &mut PassEnv<'_>, st: &mut RulesMut<'_>, inc: &Incoming<'_>) {
    for (i, r) in inc.model.rules.iter().enumerate() {
        let content_key = match inc.keys {
            Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).rules[i])) => {
                IncomingKey::Cached(&keys.rules[i])
            }
            Some(keys) if env.key_rename_on() => IncomingKey::Computed(
                keyrename::rule_key(&keys.rules[i], &env.maps)
                    .unwrap_or_else(|| env.rule_key(r, true)),
            ),
            _ => IncomingKey::Computed(env.rule_key(r, true)),
        };
        let label = r.variable().unwrap_or("<algebraic>").to_owned();
        if st
            .by_content
            .get(content_key.as_str())
            .or_else(|| st.delta_by_content.get(content_key.as_str()))
            .is_some()
        {
            env.log.push(EventKind::Duplicate, "rule", &label, &label, "identical rule");
            continue;
        }
        if let Some(v) = r.variable() {
            let mapped_v = env.map_string(v);
            if st.by_variable.get(&mapped_v).is_some() {
                env.log.push(
                    EventKind::Conflict,
                    "rule",
                    &label,
                    mapped_v,
                    "variable already ruled with different maths; first model wins",
                );
                continue;
            }
        }
        let mut nr = r.clone();
        if !env.refs_clean(inc.keys.map(|k| k.refs(inc.model).rules[i].as_ref())) {
            match &mut nr {
                Rule::Algebraic { math } => env.map_math_in_place(math),
                Rule::Assignment { variable, math } | Rule::Rate { variable, math } => {
                    *variable = env.map_string(variable);
                    env.map_math_in_place(math);
                }
            }
        }
        let pos = st.list.len();
        content_key.insert_into(st.delta_by_content, pos);
        if let Some(v) = nr.variable() {
            st.by_variable.insert(v, pos);
        }
        st.list.push(nr);
        env.log.push(EventKind::Added, "rule", &label, &label, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 9: constraints
// ---------------------------------------------------------------------

pub(crate) fn constraints(env: &mut PassEnv<'_>, st: &mut ConstraintsMut<'_>, inc: &Incoming<'_>) {
    for (idx, c) in inc.model.constraints.iter().enumerate() {
        let key = match inc.keys {
            Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).constraints[idx])) => {
                IncomingKey::Cached(&keys.constraints[idx])
            }
            Some(keys) if env.key_rename_on() => IncomingKey::Computed(
                keyrename::constraint_key(&keys.constraints[idx], &env.maps)
                    .unwrap_or_else(|| env.constraint_key(&c.math, true)),
            ),
            _ => IncomingKey::Computed(env.constraint_key(&c.math, true)),
        };
        let label = format!("#{idx}");
        if st
            .by_content
            .get(key.as_str())
            .or_else(|| st.delta_by_content.get(key.as_str()))
            .is_some()
        {
            env.log.push(EventKind::Duplicate, "constraint", &label, &label, "identical");
            continue;
        }
        let mut nc = c.clone();
        if !env.refs_clean(inc.keys.map(|k| k.refs(inc.model).constraints[idx].as_ref())) {
            env.map_math_in_place(&mut nc.math);
        }
        key.insert_into(st.delta_by_content, st.list.len());
        st.list.push(nc);
        env.log.push(EventKind::Added, "constraint", &label, &label, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 10: reactions (the most involved kind)
// ---------------------------------------------------------------------

/// Participant-list equality as the canonical key would decide it
/// (sorted `id*stoich` multisets, incoming ids mapped), without
/// building the canonical string.
fn participants_match(
    env: &PassEnv<'_>,
    ours: &[sbml_model::SpeciesReference],
    theirs: &[sbml_model::SpeciesReference],
) -> bool {
    if ours.len() != theirs.len() {
        return false;
    }
    // Stoichiometries compare as their canonical-key text would:
    // `Display` for f64 is injective up to bit pattern for non-NaN
    // values (all NaNs print "NaN"), so compare bits with NaN folded.
    let stoich_key = |v: f64| if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
    let mut a: Vec<(&str, u64)> =
        ours.iter().map(|sr| (sr.species.as_str(), stoich_key(sr.stoichiometry))).collect();
    let mut b: Vec<(&str, u64)> = theirs
        .iter()
        .map(|sr| (env.map_id(&sr.species), stoich_key(sr.stoichiometry)))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// Id-hit comparison for reactions: exactly equivalent to comparing
/// the merged reaction's canonical key with the incoming mapped key,
/// but ordered cheapest-first — reversibility, then participant
/// multisets (no string building), then the kinetic-law pattern, for
/// which both sides' cached key sections are reused while valid.
fn reaction_matches(
    env: &PassEnv<'_>,
    st: &ReactionsMut<'_>,
    pos: usize,
    theirs: &Reaction,
    inc: &Incoming<'_>,
    i: usize,
) -> bool {
    let ours = &st.list[pos];
    if ours.reversible != theirs.reversible {
        return false;
    }
    if !participants_match(env, &ours.reactants, &theirs.reactants)
        || !participants_match(env, &ours.products, &theirs.products)
        || !participants_match(env, &ours.modifiers, &theirs.modifiers)
    {
        return false;
    }
    let ours_math: Cow<'_, str> = match st.keys.get(pos).and_then(|k| key_math_section(k)) {
        Some(section) => Cow::Borrowed(section),
        None => Cow::Owned(match &ours.kinetic_law {
            Some(kl) => env.math_key(&kl.math, false),
            None => "-".to_owned(),
        }),
    };
    let cached_theirs = match inc.keys {
        Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).reaction_math[i])) => {
            key_math_section(&keys.reactions[i])
        }
        _ => None,
    };
    let theirs_math: Cow<'_, str> = match cached_theirs {
        Some(section) => Cow::Borrowed(section),
        None => {
            // Mapped refs: derive the mapped section from the cached one
            // by incremental rename when available, else re-canonicalise.
            let fast = match inc.keys {
                Some(keys) if env.key_rename_on() => {
                    keyrename::reaction_math_section(&keys.reactions[i], &env.maps)
                }
                _ => None,
            };
            Cow::Owned(fast.unwrap_or_else(|| match &theirs.kinetic_law {
                Some(kl) => env.math_key(&kl.math, true),
                None => "-".to_owned(),
            }))
        }
    };
    ours_math == theirs_math
}

/// The volume relevant to a reaction of the second model: the size of
/// the compartment of its first reactant (or product).
fn reaction_volume(env: &PassEnv<'_>, r: &Reaction, inc: &Incoming<'_>) -> Option<f64> {
    let species_id =
        r.reactants.first().or_else(|| r.products.first()).map(|sr| sr.species.as_str())?;
    let species = inc.species_by_id(species_id)?;
    inc.compartment_by_id(&species.compartment)
        .and_then(|c| c.size)
        .or_else(|| env.iv_b.get(&species.compartment))
}

/// Matched reactions may still disagree on local rate-constant values;
/// the paper resolves "conflicts in rate constants and stoichiometry
/// within reactions" via Fig. 6 conversions before declaring a conflict.
fn reconcile_reaction_locals(
    env: &mut PassEnv<'_>,
    st: &ReactionsMut<'_>,
    units: &UnitsRead<'_>,
    merged_pos: usize,
    theirs: &Reaction,
    inc: &Incoming<'_>,
) {
    let volume = reaction_volume(env, theirs, inc).unwrap_or(1.0);
    let order = ReactionOrder::from_reactant_count(theirs.reactant_molecule_count());
    let ours_law = &st.list[merged_pos].kinetic_law;
    let (Some(ours_kl), Some(theirs_kl)) = (ours_law, &theirs.kinetic_law) else {
        env.log.push(
            EventKind::Duplicate,
            "reaction",
            &theirs.id,
            st.list[merged_pos].id.clone(),
            "same reaction",
        );
        return;
    };
    let mut all_ok = true;
    for tp in &theirs_kl.parameters {
        let Some(op) = ours_kl.parameters.iter().find(|p| p.id == tp.id) else {
            continue;
        };
        if env.values_agree(op.value, tp.value) {
            continue;
        }
        // Try plain unit conversion between the declared units.
        let mut reconciled = false;
        if env.options.semantics == SemanticsLevel::Heavy {
            if let (Some(ua), Some(ub), Some(va), Some(vb)) = (
                units.resolve(op.units.as_deref()),
                inc.resolve_units(tp.units.as_deref()),
                op.value,
                tp.value,
            ) {
                if let Some(factor) = conversion_factor(&ub, &ua) {
                    reconciled = env.values_agree(Some(va), Some(vb * factor));
                }
            }
            // Fig. 6 deterministic ↔ stochastic rate constant bridge.
            if !reconciled {
                if let (Some(order), Some(va), Some(vb)) = (order, op.value, tp.value) {
                    let as_stoch = deterministic_to_stochastic(vb, order, volume);
                    let as_det = stochastic_to_deterministic(vb, order, volume);
                    reconciled = env.values_agree(Some(va), Some(as_stoch))
                        || env.values_agree(Some(va), Some(as_det));
                }
            }
        }
        let final_id = st.list[merged_pos].id.clone();
        if reconciled {
            env.log.push(
                EventKind::Warning,
                "reaction",
                &theirs.id,
                final_id,
                format!(
                    "rate constant '{}' agrees after unit conversion (paper Fig. 6)",
                    tp.id
                ),
            );
        } else {
            all_ok = false;
            env.log.push(
                EventKind::Conflict,
                "reaction",
                &theirs.id,
                final_id,
                format!(
                    "local parameter '{}' differs ({:?} vs {:?}); first model wins",
                    tp.id, op.value, tp.value
                ),
            );
        }
    }
    if all_ok {
        env.log.push(
            EventKind::Duplicate,
            "reaction",
            &theirs.id,
            st.list[merged_pos].id.clone(),
            "same reaction",
        );
    }
}

pub(crate) fn reactions(
    env: &mut PassEnv<'_>,
    st: &mut ReactionsMut<'_>,
    units: &UnitsRead<'_>,
    inc: &Incoming<'_>,
) {
    // Pattern cache ablation: when disabled, keys are recomputed per
    // lookup through a linear rescan instead of being stored.
    let cache = env.options.cache_patterns;
    for (i, r) in inc.model.reactions.iter().enumerate() {
        if let Some(pos) = st.by_id.get(&r.id) {
            if reaction_matches(env, st, pos, r, inc, i) {
                reconcile_reaction_locals(env, st, units, pos, r, inc);
            } else {
                env.log.push(
                    EventKind::Conflict,
                    "reaction",
                    &r.id,
                    &r.id,
                    "same id, different reaction; first model wins",
                );
            }
            continue;
        }
        let content_key = match inc.keys {
            Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).reactions[i])) => {
                IncomingKey::Cached(&keys.reactions[i])
            }
            Some(keys) if env.key_rename_on() => IncomingKey::Computed(
                keyrename::reaction_key(&keys.reactions[i], &env.maps)
                    .unwrap_or_else(|| env.reaction_key(r, true)),
            ),
            _ => IncomingKey::Computed(env.reaction_key(r, true)),
        };
        let content_key_str = content_key.as_str();
        let content_pos = if cache {
            st.by_content
                .get(content_key_str)
                .or_else(|| st.delta_by_content.get(content_key_str))
        } else {
            // no cache: rescan and recompute every time
            st.list.iter().position(|ours| env.reaction_key(ours, false) == content_key_str)
        };
        if let Some(pos) = content_pos {
            let target = st.list[pos].id.clone();
            env.add_mapping(&r.id, &target);
            env.log.push(
                EventKind::Mapped,
                "reaction",
                &r.id,
                target,
                "same participants and kinetics",
            );
            reconcile_reaction_locals(env, st, units, pos, r, inc);
            continue;
        }
        let final_id = env.claim_id("reaction", &r.id);
        let mut nr = r.clone();
        nr.id = final_id.clone();
        if !env.refs_clean(inc.keys.map(|k| k.refs(inc.model).reactions[i].as_ref())) {
            for sr in nr.reactants.iter_mut().chain(&mut nr.products).chain(&mut nr.modifiers) {
                sr.species = env.map_string(&sr.species);
            }
            if let Some(kl) = &mut nr.kinetic_law {
                // The law's local parameters shadow the mapping table:
                // rename through an overlay that hides them (the serial
                // engine used to remove/restore table entries, which a
                // sharded view cannot do — the overlay is equivalent).
                if !env.maps.is_empty() {
                    let locals: Vec<&str> =
                        kl.parameters.iter().map(|p| p.id.as_str()).collect();
                    rewrite::rename_in_place(
                        &mut kl.math,
                        &HideIds { inner: &env.maps, hidden: &locals },
                    );
                }
            }
        }
        let pos = st.list.len();
        st.by_id.insert(&final_id, pos);
        if cache {
            content_key.insert_into(st.delta_by_content, pos);
        }
        st.list.push(nr);
        env.log.push(EventKind::Added, "reaction", &r.id, final_id, "new");
    }
}

// ---------------------------------------------------------------------
// Fig. 4 line 11: events
// ---------------------------------------------------------------------

fn event_key_matches(env: &PassEnv<'_>, st: &EventsMut<'_>, pos: usize, key: &str) -> bool {
    if let Some(cached) = st.keys.get(pos) {
        cached.as_ref() == key
    } else {
        env.event_key(&st.list[pos], false) == key
    }
}

pub(crate) fn events(env: &mut PassEnv<'_>, st: &mut EventsMut<'_>, inc: &Incoming<'_>) {
    for (idx, ev) in inc.model.events.iter().enumerate() {
        let label = ev.id.clone().unwrap_or_else(|| format!("#{idx}"));
        let content_key = match inc.keys {
            Some(keys) if env.refs_clean(Some(&keys.refs(inc.model).events[idx])) => {
                IncomingKey::Cached(&keys.events[idx])
            }
            Some(keys) if env.key_rename_on() => IncomingKey::Computed(
                keyrename::event_key(&keys.events[idx], &env.maps)
                    .unwrap_or_else(|| env.event_key(ev, true)),
            ),
            _ => IncomingKey::Computed(env.event_key(ev, true)),
        };
        if let Some(id) = &ev.id {
            if let Some(pos) = st.by_id.get(id) {
                if event_key_matches(env, st, pos, content_key.as_str()) {
                    env.log.push(EventKind::Duplicate, "event", &label, id, "identical");
                } else {
                    env.log.push(
                        EventKind::Conflict,
                        "event",
                        &label,
                        id,
                        "same id, different event; first model wins",
                    );
                }
                continue;
            }
        }
        let content_pos = st
            .by_content
            .get(content_key.as_str())
            .or_else(|| st.delta_by_content.get(content_key.as_str()));
        if let Some(pos) = content_pos {
            let target = st.list[pos].id.clone().unwrap_or_else(|| format!("@{pos}"));
            if let Some(id) = &ev.id {
                if target != format!("@{pos}") {
                    env.add_mapping(id, &target);
                }
            }
            env.log.push(EventKind::Mapped, "event", &label, target, "identical behaviour");
            continue;
        }
        let mut nev = ev.clone();
        if let Some(id) = &ev.id {
            nev.id = Some(env.claim_id("event", id));
        }
        if !env.refs_clean(inc.keys.map(|k| k.refs(inc.model).events[idx].as_ref())) {
            env.map_math_in_place(&mut nev.trigger);
            if let Some(d) = &mut nev.delay {
                env.map_math_in_place(d);
            }
            for a in &mut nev.assignments {
                a.variable = env.map_string(&a.variable);
                env.map_math_in_place(&mut a.math);
            }
        }
        let pos = st.list.len();
        if let Some(id) = &nev.id {
            st.by_id.insert(id, pos);
        }
        content_key.insert_into(st.delta_by_content, pos);
        let final_label = nev.id.clone().unwrap_or_else(|| label.clone());
        st.list.push(nev);
        env.log.push(EventKind::Added, "event", &label, final_label, "new");
    }
}
