//! Initial-value collection (the paper's last pre-composition step).
//!
//! "The initial values of all component attributes are collected before
//! composition begins. If a component has an initial assignment, it is
//! extracted and evaluated and the value is saved. ... The initial values
//! are then used in the check for conflicts during model composition."

use sbml_math::{evaluate, Env};
use sbml_model::Model;

use crate::index::FastMap;

/// Evaluated initial values for every symbol that has one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InitialValues {
    /// symbol id → value at time zero (fast-hashed: probed on every
    /// conflict check of every composition).
    pub values: FastMap<String, f64>,
}

impl InitialValues {
    /// Value of a symbol, if known.
    pub fn get(&self, id: &str) -> Option<f64> {
        self.values.get(id).copied()
    }
}

/// Number of fixed-point passes over initial assignments. Assignments may
/// reference each other; SBML requires the dependency graph to be acyclic,
/// so `k` passes settle chains up to length `k`.
const MAX_PASSES: usize = 8;

/// Collect and evaluate initial values from direct attributes and initial
/// assignments. Unevaluable assignments (unknown symbols, cyclic chains)
/// are skipped — the conflict checker then falls back to math comparison.
pub fn collect(model: &Model) -> InitialValues {
    let mut env = Env::new();
    for f in &model.function_definitions {
        env.set_function(f.id.clone(), f.as_lambda());
    }
    for c in &model.compartments {
        if let Some(size) = c.size {
            env.set_var(c.id.clone(), size);
        }
    }
    for s in &model.species {
        if let Some(v) = s.initial_value() {
            env.set_var(s.id.clone(), v);
        }
    }
    for p in &model.parameters {
        if let Some(v) = p.value {
            env.set_var(p.id.clone(), v);
        }
    }

    // Initial assignments override raw attributes and may chain.
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for ia in &model.initial_assignments {
            if let Ok(v) = evaluate(&ia.math, &env) {
                if env.vars.get(&ia.symbol) != Some(&v) {
                    env.set_var(ia.symbol.clone(), v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    InitialValues { values: env.vars.into_iter().collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    #[test]
    fn direct_attributes_collected() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 2.5)
            .species("A", 10.0)
            .parameter("k", 0.5)
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("cell"), Some(2.5));
        assert_eq!(iv.get("A"), Some(10.0));
        assert_eq!(iv.get("k"), Some(0.5));
        assert_eq!(iv.get("nothing"), None);
    }

    #[test]
    fn initial_assignments_evaluated() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .parameter("k", 3.0)
            .initial_assignment("A", "2 * k + 1")
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("A"), Some(7.0), "assignment overrides the attribute");
    }

    #[test]
    fn chained_assignments_settle() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .species("B", 0.0)
            .parameter("k", 2.0)
            .initial_assignment("B", "A + 1") // depends on A's assignment
            .initial_assignment("A", "k * 5")
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("A"), Some(10.0));
        assert_eq!(iv.get("B"), Some(11.0));
    }

    #[test]
    fn function_definitions_usable() {
        let m = ModelBuilder::new("m")
            .function("dbl", &["x"], "2*x")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .parameter("k", 4.0)
            .initial_assignment("A", "dbl(k)")
            .build();
        assert_eq!(collect(&m).get("A"), Some(8.0));
    }

    #[test]
    fn unevaluable_assignment_skipped() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 5.0)
            .initial_assignment("A", "mystery_symbol * 2")
            .build();
        let iv = collect(&m);
        // falls back to the attribute value
        assert_eq!(iv.get("A"), Some(5.0));
    }

    #[test]
    fn empty_model() {
        assert!(collect(&Model::new("empty")).values.is_empty());
    }
}
