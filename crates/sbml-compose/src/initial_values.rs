//! Initial-value collection (the paper's last pre-composition step) and
//! its incremental, dependency-tracked maintenance across session pushes.
//!
//! "The initial values of all component attributes are collected before
//! composition begins. If a component has an initial assignment, it is
//! extracted and evaluated and the value is saved. ... The initial values
//! are then used in the check for conflicts during model composition."
//!
//! Two implementations of that step live here:
//!
//! * [`collect`] — the batch form: one O(n) sweep over a model's direct
//!   attributes followed by a bounded fixed-point over its initial
//!   assignments. This is what [`crate::Composer::compose`] needs (each
//!   side analysed once) and what [`crate::PreparedModel`] hoists out of
//!   the per-pair path.
//! * [`IncrementalValues`] — the chain form: a
//!   [`crate::session::CompositionSession`] used to re-run [`collect`]
//!   over its *whole accumulator* before every push (the last O(n)
//!   per-push cost on long chains). The incremental store is seeded once
//!   (or adopted from a prepared base), then each push feeds it only the
//!   components the push actually appended; a dependency graph over the
//!   initial assignments re-evaluates exactly the affected region, so a
//!   push touching k components costs O(k), not O(accumulator).
//!
//! The store is bit-for-bit faithful to [`collect`]: after every update,
//! its values equal a fresh `collect` over the same model (including the
//! `MAX_PASSES` truncation behaviour on cyclic assignment chains) — the
//! session's property tests assert this after every push. The equivalence
//! argument: re-evaluation always restarts the *weakly-connected*
//! dependency closure of the changed assignments from the same
//! direct-attribute baselines `collect` starts from, in the same model
//! order, so the replayed region reproduces the batch trajectory
//! pass-for-pass, while untouched regions — which by closure share no
//! read or written symbol with the replayed one — keep their previous
//! (already-converged) values.

use std::collections::BTreeSet;

use sbml_math::{evaluate, Env, MathExpr};
use sbml_model::Model;

use crate::index::{FastMap, FastSet};

/// Evaluated initial values for every symbol that has one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InitialValues {
    /// symbol id → value at time zero (fast-hashed: probed on every
    /// conflict check of every composition).
    pub values: FastMap<String, f64>,
}

impl InitialValues {
    /// Value of a symbol, if known.
    pub fn get(&self, id: &str) -> Option<f64> {
        self.values.get(id).copied()
    }
}

/// Number of fixed-point passes over initial assignments. Assignments may
/// reference each other; SBML requires the dependency graph to be acyclic,
/// so `k` passes settle chains up to length `k`.
const MAX_PASSES: usize = 8;

/// Collect and evaluate initial values from direct attributes and initial
/// assignments. Unevaluable assignments (unknown symbols, cyclic chains)
/// are skipped — the conflict checker then falls back to math comparison.
pub fn collect(model: &Model) -> InitialValues {
    let mut env = Env::new();
    for f in &model.function_definitions {
        env.set_function(f.id.clone(), f.as_lambda());
    }
    for c in &model.compartments {
        if let Some(size) = c.size {
            env.set_var(c.id.clone(), size);
        }
    }
    for s in &model.species {
        if let Some(v) = s.initial_value() {
            env.set_var(s.id.clone(), v);
        }
    }
    for p in &model.parameters {
        if let Some(v) = p.value {
            env.set_var(p.id.clone(), v);
        }
    }

    // Initial assignments override raw attributes and may chain.
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for ia in &model.initial_assignments {
            if let Ok(v) = evaluate(&ia.math, &env) {
                if env.vars.get(&ia.symbol) != Some(&v) {
                    env.set_var(ia.symbol.clone(), v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    InitialValues { values: env.vars.into_iter().collect() }
}

/// Positions in a model's component lists where a push's additions begin;
/// everything at or past these indices is new to the store. Built by the
/// session from its pre-push list lengths.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueDelta {
    /// First new entry in `model.function_definitions`.
    pub functions: usize,
    /// First new entry in `model.compartments`.
    pub compartments: usize,
    /// First new entry in `model.species`.
    pub species: usize,
    /// First new entry in `model.parameters`.
    pub parameters: usize,
    /// First new entry in `model.initial_assignments`.
    pub initial_assignments: usize,
}

/// One tracked initial assignment: its target symbol, its maths, and the
/// set of symbols its evaluation may read (see [`eval_refs`]).
#[derive(Debug, Clone)]
struct TrackedAssignment {
    symbol: String,
    math: MathExpr,
    /// Expanded read set: identifiers of the maths plus, transitively, the
    /// identifiers of every function body the maths can call. Deliberately
    /// an over-approximation — extra entries only widen the replayed
    /// region, never change its result.
    refs: BTreeSet<String>,
}

/// Every identifier [`evaluate`] may look up in the environment while
/// evaluating `expr`: `Ci` names *including lambda-bound ones* (a bare
/// lambda's parameters fall through to global lookup during point
/// evaluation) and function-call targets.
fn eval_refs(expr: &MathExpr, out: &mut BTreeSet<String>) {
    match expr {
        MathExpr::Ci(name) => {
            out.insert(name.clone());
        }
        MathExpr::Apply { args, .. } => {
            for a in args {
                eval_refs(a, out);
            }
        }
        MathExpr::Call { function, args } => {
            out.insert(function.clone());
            for a in args {
                eval_refs(a, out);
            }
        }
        MathExpr::Piecewise { pieces, otherwise } => {
            for (v, c) in pieces {
                eval_refs(v, out);
                eval_refs(c, out);
            }
            if let Some(other) = otherwise {
                eval_refs(other, out);
            }
        }
        MathExpr::Lambda { body, .. } => eval_refs(body, out),
        MathExpr::Num(_) | MathExpr::Csymbol { .. } | MathExpr::Const(_) => {}
    }
}

/// The accumulator-side initial values of a composition session,
/// maintained incrementally; see the [module docs](self).
///
/// The store mirrors what [`collect`] computes — direct attributes
/// overridden by a bounded fixed-point over initial assignments — but
/// keeps the supporting structures alive between pushes:
///
/// * the settled value environment (also holding the model's function
///   definitions, which assignment evaluation may call),
/// * the direct-attribute baseline every re-evaluation restarts from,
/// * the assignments in model order with their expanded read sets, and
/// * reader/writer adjacency from symbols to assignment positions, from
///   which the affected closure of a delta is computed.
#[derive(Debug, Clone, Default)]
pub struct IncrementalValues {
    /// Settled variable values plus function definitions — the evaluation
    /// environment and the store's public face at once.
    env: Env,
    /// Direct-attribute baseline per symbol (compartment sizes, species
    /// initial amounts/concentrations, parameter values).
    direct: FastMap<String, f64>,
    /// Initial assignments in model order.
    assignments: Vec<TrackedAssignment>,
    /// symbol → positions of assignments whose read set contains it.
    readers: FastMap<String, Vec<usize>>,
    /// symbol → positions of assignments that write it.
    writers: FastMap<String, Vec<usize>>,
}

impl IncrementalValues {
    /// Build the store for `model`, evaluating the fixed point from
    /// scratch — one O(n) pass, after which updates are O(delta).
    pub fn seed(model: &Model) -> IncrementalValues {
        IncrementalValues::seed_inner(model, None)
    }

    /// As [`IncrementalValues::seed`], but adopt `known` (a prior
    /// [`collect`] result for exactly this model, e.g. from a
    /// [`crate::PreparedModel`]) instead of re-running the fixed point.
    pub fn seed_with_known(model: &Model, known: &InitialValues) -> IncrementalValues {
        IncrementalValues::seed_inner(model, Some(known))
    }

    fn seed_inner(model: &Model, known: Option<&InitialValues>) -> IncrementalValues {
        let mut store = IncrementalValues::default();
        store.register_components(model, &ValueDelta::default());
        match known {
            Some(iv) => {
                // Trust the caller's settled values; structures above are
                // still needed for later deltas.
                store.env.vars =
                    iv.values.iter().map(|(k, v)| (k.clone(), *v)).collect();
            }
            None => {
                let all: Vec<usize> = (0..store.assignments.len()).collect();
                store.replay(&all);
            }
        }
        store
    }

    /// Value of a symbol, if known — the incremental equivalent of
    /// [`InitialValues::get`] over `collect(accumulator)`.
    pub fn get(&self, id: &str) -> Option<f64> {
        self.env.vars.get(id).copied()
    }

    /// Materialise the store as a plain [`InitialValues`] (used by
    /// equivalence tests and the session's public snapshot accessor).
    pub fn snapshot(&self) -> InitialValues {
        InitialValues {
            values: self.env.vars.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Absorb one push's additions: register the components `model`
    /// gained at/past the `delta` positions, then re-evaluate only the
    /// dependency closure they disturb. Cost is O(delta + affected
    /// closure), independent of the accumulator size.
    pub fn absorb(&mut self, model: &Model, delta: &ValueDelta) {
        let seeds = self.register_components(model, delta);
        if seeds.is_empty() {
            return;
        }
        let region = self.closure(seeds);
        self.replay(&region);
    }

    /// Register new functions, direct attributes and assignments, seeding
    /// the set of assignment positions whose evaluation may have changed.
    fn register_components(&mut self, model: &Model, delta: &ValueDelta) -> FastSet<usize> {
        let mut seeds: FastSet<usize> = FastSet::default();

        // New function definitions: a previously-unevaluable assignment
        // calling this name may now evaluate, and callers' read sets must
        // be re-expanded through the new body.
        for f in &model.function_definitions[delta.functions..] {
            self.env.set_function(f.id.clone(), f.as_lambda());
            for idx in self.readers.get(&f.id).cloned().unwrap_or_default() {
                seeds.insert(idx);
                self.reexpand_refs(idx);
            }
        }

        // New direct attributes: the symbol gains a baseline (and, absent
        // an evaluable writer, its value). Existing assignments that read
        // or write the symbol are disturbed.
        let new_symbol = |store: &mut IncrementalValues,
                              seeds: &mut FastSet<usize>,
                              id: &str,
                              value: f64| {
            store.direct.insert(id.to_owned(), value);
            store.env.set_var(id.to_owned(), value);
            for map in [&store.readers, &store.writers] {
                if let Some(hits) = map.get(id) {
                    seeds.extend(hits.iter().copied());
                }
            }
        };
        for c in &model.compartments[delta.compartments..] {
            if let Some(size) = c.size {
                new_symbol(self, &mut seeds, &c.id, size);
            }
        }
        for s in &model.species[delta.species..] {
            if let Some(v) = s.initial_value() {
                new_symbol(self, &mut seeds, &s.id, v);
            }
        }
        for p in &model.parameters[delta.parameters..] {
            if let Some(v) = p.value {
                new_symbol(self, &mut seeds, &p.id, v);
            }
        }

        // New assignments, in model order.
        for ia in &model.initial_assignments[delta.initial_assignments..] {
            let idx = self.assignments.len();
            let mut refs = BTreeSet::new();
            eval_refs(&ia.math, &mut refs);
            self.expand_through_functions(&mut refs);
            for r in &refs {
                self.readers.entry(r.clone()).or_default().push(idx);
            }
            self.writers.entry(ia.symbol.clone()).or_default().push(idx);
            self.assignments.push(TrackedAssignment {
                symbol: ia.symbol.clone(),
                math: ia.math.clone(),
                refs,
            });
            seeds.insert(idx);
        }
        seeds
    }

    /// Close `refs` over function bodies: a call to `f` reads whatever
    /// `f`'s body reads (function parameters are *not* subtracted — they
    /// can fall through to global lookup in bare-lambda evaluation, and an
    /// over-approximation is harmless).
    fn expand_through_functions(&self, refs: &mut BTreeSet<String>) {
        let mut queue: Vec<String> = refs.iter().cloned().collect();
        while let Some(name) = queue.pop() {
            let Some((_, body)) = self.env.functions.get(&name) else { continue };
            let mut body_refs = BTreeSet::new();
            eval_refs(body, &mut body_refs);
            for r in body_refs {
                if refs.insert(r.clone()) {
                    queue.push(r);
                }
            }
        }
    }

    /// Re-expand one assignment's read set after a function definition it
    /// references arrived, registering any newly reachable symbols.
    fn reexpand_refs(&mut self, idx: usize) {
        let mut expanded = self.assignments[idx].refs.clone();
        self.expand_through_functions(&mut expanded);
        for r in &expanded {
            if !self.assignments[idx].refs.contains(r) {
                self.readers.entry(r.clone()).or_default().push(idx);
            }
        }
        self.assignments[idx].refs = expanded;
    }

    /// The weakly-connected dependency closure of the seed assignments:
    /// grow until every symbol a member reads is written only by members
    /// (so the replay reproduces the transients the member observes) and
    /// every reader/co-writer of a symbol a member writes is a member (so
    /// everything the member can disturb is replayed). Returned sorted,
    /// i.e. in model order.
    fn closure(&self, seeds: FastSet<usize>) -> Vec<usize> {
        let mut region = seeds;
        let mut stack: Vec<usize> = region.iter().copied().collect();
        while let Some(idx) = stack.pop() {
            let grow = |hits: Option<&Vec<usize>>, stack: &mut Vec<usize>, region: &mut FastSet<usize>| {
                for &n in hits.into_iter().flatten() {
                    if region.insert(n) {
                        stack.push(n);
                    }
                }
            };
            let a = &self.assignments[idx];
            for r in &a.refs {
                grow(self.writers.get(r), &mut stack, &mut region);
            }
            grow(self.writers.get(&a.symbol), &mut stack, &mut region);
            grow(self.readers.get(&a.symbol), &mut stack, &mut region);
        }
        let mut order: Vec<usize> = region.into_iter().collect();
        order.sort_unstable();
        order
    }

    /// Re-run [`collect`]'s fixed point over one closed region: reset
    /// every written symbol to its direct-attribute baseline, then iterate
    /// the region's assignments in model order for at most [`MAX_PASSES`]
    /// passes with the same change-detection `collect` uses. Symbols
    /// outside the region are, by closure, neither read through a changed
    /// transient nor written, so they stay at their settled values.
    fn replay(&mut self, region: &[usize]) {
        for &idx in region {
            let symbol = &self.assignments[idx].symbol;
            match self.direct.get(symbol) {
                Some(v) => {
                    self.env.vars.insert(symbol.clone(), *v);
                }
                None => {
                    self.env.vars.remove(symbol);
                }
            }
        }
        for _ in 0..MAX_PASSES {
            let mut changed = false;
            for &idx in region {
                let a = &self.assignments[idx];
                if let Ok(v) = evaluate(&a.math, &self.env) {
                    if self.env.vars.get(&a.symbol) != Some(&v) {
                        self.env.vars.insert(a.symbol.clone(), v);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbml_model::builder::ModelBuilder;

    #[test]
    fn direct_attributes_collected() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 2.5)
            .species("A", 10.0)
            .parameter("k", 0.5)
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("cell"), Some(2.5));
        assert_eq!(iv.get("A"), Some(10.0));
        assert_eq!(iv.get("k"), Some(0.5));
        assert_eq!(iv.get("nothing"), None);
    }

    #[test]
    fn initial_assignments_evaluated() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .parameter("k", 3.0)
            .initial_assignment("A", "2 * k + 1")
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("A"), Some(7.0), "assignment overrides the attribute");
    }

    #[test]
    fn chained_assignments_settle() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .species("B", 0.0)
            .parameter("k", 2.0)
            .initial_assignment("B", "A + 1") // depends on A's assignment
            .initial_assignment("A", "k * 5")
            .build();
        let iv = collect(&m);
        assert_eq!(iv.get("A"), Some(10.0));
        assert_eq!(iv.get("B"), Some(11.0));
    }

    #[test]
    fn function_definitions_usable() {
        let m = ModelBuilder::new("m")
            .function("dbl", &["x"], "2*x")
            .compartment("cell", 1.0)
            .species("A", 0.0)
            .parameter("k", 4.0)
            .initial_assignment("A", "dbl(k)")
            .build();
        assert_eq!(collect(&m).get("A"), Some(8.0));
    }

    #[test]
    fn unevaluable_assignment_skipped() {
        let m = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 5.0)
            .initial_assignment("A", "mystery_symbol * 2")
            .build();
        let iv = collect(&m);
        // falls back to the attribute value
        assert_eq!(iv.get("A"), Some(5.0));
    }

    #[test]
    fn empty_model() {
        assert!(collect(&Model::new("empty")).values.is_empty());
    }

    /// `base` must be a list-prefix of `extended` (what a session push
    /// guarantees). Seeds a store on `base`, absorbs the delta, and checks
    /// it stays bit-for-bit equal to a fresh batch [`collect`].
    fn check_absorb(base: &Model, extended: &Model) {
        let mut store = IncrementalValues::seed(base);
        assert_eq!(store.snapshot(), collect(base), "seed must equal collect");
        let delta = ValueDelta {
            functions: base.function_definitions.len(),
            compartments: base.compartments.len(),
            species: base.species.len(),
            parameters: base.parameters.len(),
            initial_assignments: base.initial_assignments.len(),
        };
        store.absorb(extended, &delta);
        assert_eq!(store.snapshot(), collect(extended), "absorb must equal collect");
        // Adopting known values instead of evaluating must not change
        // anything either.
        let mut adopted = IncrementalValues::seed_with_known(base, &collect(base));
        adopted.absorb(extended, &delta);
        assert_eq!(adopted.snapshot(), collect(extended));
    }

    fn ia(symbol: &str, math: &str) -> sbml_model::InitialAssignment {
        sbml_model::InitialAssignment {
            symbol: symbol.to_owned(),
            math: sbml_math::infix::parse(math).unwrap(),
        }
    }

    #[test]
    fn absorb_new_direct_attributes_and_assignments() {
        let base = ModelBuilder::new("m")
            .compartment("cell", 2.0)
            .species("A", 1.0)
            .parameter("k", 3.0)
            .initial_assignment("A", "k + 1")
            .build();
        let mut extended = base.clone();
        extended.parameters.push(sbml_model::Parameter::new("k2", 9.0));
        extended.initial_assignments.push(ia("B", "k2 * k"));
        check_absorb(&base, &extended);
    }

    #[test]
    fn absorb_makes_old_assignment_evaluable() {
        // `A := missing * 2` is unevaluable until a later push adds the
        // `missing` parameter.
        let base = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 5.0)
            .initial_assignment("A", "missing * 2")
            .build();
        assert_eq!(collect(&base).get("A"), Some(5.0));
        let mut extended = base.clone();
        extended.parameters.push(sbml_model::Parameter::new("missing", 4.0));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(8.0));
    }

    #[test]
    fn absorb_upstream_transients_are_replayed() {
        // The batch fixed point starts EVERY symbol from its direct
        // attribute, so `A`'s first pass observes `U = 10` (the attribute)
        // even though `U`'s own assignment later settles it to -5 — and
        // `A` latches 100 off that transient. An incremental update that
        // re-ran only `A` against the settled `U` would get 0; the
        // weakly-connected closure pulls `U`'s writer into the replay so
        // the transient is reproduced.
        let mut base = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .parameter("A", 0.0)
            .parameter("U", 10.0)
            .build();
        base.initial_assignments.push(ia("A", "piecewise(100, A < U + 0*newp, A)"));
        base.initial_assignments.push(ia("U", "0 - 5"));
        let mut extended = base.clone();
        extended.parameters.push(sbml_model::Parameter::new("newp", 0.0));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(100.0));
    }

    #[test]
    fn absorb_resets_self_referential_chains_to_their_baseline() {
        // `D := piecewise(D+1, D < S, D)` is a counter that climbs from
        // its direct attribute to the current bound. When a push lowers
        // the bound (assignment `S := 2`), the batch fixed point restarts
        // `D` from 0 and stops at 2; replaying from the previously settled
        // D = 3 would incorrectly stay at 3.
        let mut base = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .parameter("D", 0.0)
            .parameter("S", 3.0)
            .build();
        base.initial_assignments.push(ia("D", "piecewise(D+1, D < S, D)"));
        assert_eq!(collect(&base).get("D"), Some(3.0));
        let mut extended = base.clone();
        extended.initial_assignments.push(ia("S", "2"));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("D"), Some(2.0));
    }

    #[test]
    fn absorb_matches_max_passes_truncation_on_cycles() {
        // `A := A + B` never settles once `B` exists; collect truncates
        // at MAX_PASSES and the incremental replay must land on the same
        // truncated value.
        let base = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .parameter("A", 0.0)
            .initial_assignment("A", "A + B")
            .build();
        let mut extended = base.clone();
        extended.parameters.push(sbml_model::Parameter::new("B", 1.0));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(MAX_PASSES as f64));
    }

    #[test]
    fn absorb_function_definition_arriving_later() {
        // `A := dbl(k)` waits for the `dbl` definition; absorbing the
        // function must re-evaluate its callers.
        let base = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .parameter("k", 4.0)
            .initial_assignment("A", "dbl(k)")
            .build();
        assert_eq!(collect(&base).get("A"), Some(1.0));
        let with_fn = ModelBuilder::new("m").function("dbl", &["x"], "2*x").build();
        let mut extended = base.clone();
        extended.function_definitions.extend(with_fn.function_definitions);
        // The session appends pushed components after existing ones; a
        // function landing *after* the base's lists is delta position 0
        // of... the function list itself, so rebuild the extended model
        // with the function appended.
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(8.0));
    }

    #[test]
    fn absorb_function_body_reads_global_through_call() {
        // `f`'s body reads global `g`; an assignment calling `f` must be
        // re-evaluated when `g` appears, which requires the read set to be
        // expanded through the function body.
        let mut base = ModelBuilder::new("m")
            .function("f", &["x"], "x + g")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .build();
        base.initial_assignments.push(ia("A", "f(1)"));
        assert_eq!(collect(&base).get("A"), Some(1.0), "g missing, unevaluable");
        let mut extended = base.clone();
        extended.parameters.push(sbml_model::Parameter::new("g", 100.0));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(101.0));
    }

    #[test]
    fn absorb_assignment_for_existing_symbol() {
        let base = ModelBuilder::new("m").compartment("cell", 1.0).species("A", 5.0).build();
        let mut extended = base.clone();
        extended.initial_assignments.push(ia("A", "7"));
        check_absorb(&base, &extended);
        assert_eq!(collect(&extended).get("A"), Some(7.0));
    }

    #[test]
    fn absorb_chain_of_pushes() {
        // Three successive deltas, store checked against collect at each.
        let mut model = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("S0", 0.0)
            .parameter("k0", 1.0)
            .initial_assignment("S0", "k0 * 2")
            .build();
        let mut store = IncrementalValues::seed(&model);
        for step in 1..4usize {
            let delta = ValueDelta {
                functions: model.function_definitions.len(),
                compartments: model.compartments.len(),
                species: model.species.len(),
                parameters: model.parameters.len(),
                initial_assignments: model.initial_assignments.len(),
            };
            model.species.push(sbml_model::Species::new(
                format!("S{step}"),
                "cell",
                step as f64,
            ));
            model.parameters.push(sbml_model::Parameter::new(format!("k{step}"), 0.5));
            model
                .initial_assignments
                .push(ia(&format!("S{step}"), &format!("S{} + k{step}", step - 1)));
            store.absorb(&model, &delta);
            assert_eq!(store.snapshot(), collect(&model), "after push {step}");
        }
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let model = ModelBuilder::new("m")
            .compartment("cell", 1.0)
            .species("A", 1.0)
            .initial_assignment("A", "2")
            .build();
        let mut store = IncrementalValues::seed(&model);
        let before = store.snapshot();
        let delta = ValueDelta {
            functions: model.function_definitions.len(),
            compartments: model.compartments.len(),
            species: model.species.len(),
            parameters: model.parameters.len(),
            initial_assignments: model.initial_assignments.len(),
        };
        store.absorb(&model, &delta);
        assert_eq!(store.snapshot(), before);
    }
}
