//! Copy-on-write accumulator state for zero-copy base adoption.
//!
//! A [`crate::session::CompositionSession`] that adopts an
//! `Arc<PreparedModel>` base starts with **no owned copy of anything**:
//! the accumulator is [`Accum::Shared`], and for the duration of each push
//! the per-kind component lists, persistent indexes and interned key
//! caches are wrapped in [`CowList`] / [`CowIndex`] / [`CowKeys`] values
//! that `Deref` into the shared base for reads and clone the underlying
//! kind lazily on first mutation. A push that matches every incoming
//! component against the base (a MATCH miss probe or a Duplicate-only
//! composition) therefore never copies the base at all — the session's
//! fixed cost is a handful of `Arc` refcount bumps.
//!
//! The at-rest invariant is deliberately binary: between pushes the
//! accumulator is either *fully shared* ([`Accum::Shared`], nothing
//! cloned) or *fully owned* ([`Accum::Owned`], a plain [`Model`] exactly
//! as a clone-based session would hold). The first push that materialises
//! **any** kind consolidates the remaining kinds at the end of that push
//! (each untouched kind is cloned from the base once, at restore time),
//! so `CompositionSession::model` can keep returning `&Model` without
//! stitching per-kind fragments back together. Laziness is per-kind
//! *within* a push — a push that only appends species clones only the
//! species list and indexes while the passes run — and all-or-nothing
//! *across* pushes.

use std::ops::Deref;
use std::sync::Arc;

use sbml_model::rule::Constraint;
use sbml_model::{
    Compartment, CompartmentType, Event, FunctionDefinition, InitialAssignment, Model, Parameter,
    Reaction, Rule, Species, SpeciesType,
};
use sbml_units::UnitDefinition;

use crate::index::ComponentIndex;
use crate::prepared::{Indexes, KeyCache, PreparedModel};
use crate::session::DeltaIndexes;

/// The session accumulator: the shared base (zero-copy) or an owned
/// model (exactly what a clone-based session holds). Never mixed at rest.
#[derive(Debug, Clone)]
pub(crate) enum Accum {
    /// Still bit-identical to the adopted base; nothing has been cloned.
    Shared(Arc<PreparedModel>),
    /// Materialised (or never base-adopted): a plain owned model.
    Owned(Model),
}

impl Accum {
    pub(crate) fn model(&self) -> &Model {
        match self {
            Accum::Shared(base) => base.model(),
            Accum::Owned(m) => m,
        }
    }

    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, Accum::Shared(_))
    }

    /// The owned model, materialising (one full clone) if still shared.
    pub(crate) fn into_model(self) -> Model {
        match self {
            Accum::Shared(base) => base.model().clone(),
            Accum::Owned(m) => m,
        }
    }
}

/// One component-kind list, shared with the base until first append.
pub(crate) enum CowList<T: Clone + 'static> {
    Shared { base: Arc<PreparedModel>, proj: fn(&Model) -> &Vec<T> },
    Owned(Vec<T>),
}

impl<T: Clone> Default for CowList<T> {
    fn default() -> Self {
        CowList::Owned(Vec::new())
    }
}

impl<T: Clone> Deref for CowList<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match self {
            CowList::Shared { base, proj } => proj(base.model()),
            CowList::Owned(v) => v,
        }
    }
}

impl<T: Clone> CowList<T> {
    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, CowList::Shared { .. })
    }

    /// Mutable access, cloning the base list on first call.
    pub(crate) fn make_mut(&mut self) -> &mut Vec<T> {
        if let CowList::Shared { base, proj } = self {
            *self = CowList::Owned(proj(base.model()).clone());
        }
        match self {
            CowList::Owned(v) => v,
            CowList::Shared { .. } => unreachable!("materialised above"),
        }
    }

    /// Append, materialising on first use (the only mutation the merge
    /// passes perform on accumulator lists — existing entries are never
    /// edited in place, so sharing stays sound).
    pub(crate) fn push(&mut self, value: T) {
        self.make_mut().push(value);
    }

    /// The owned list, cloning from the base if still shared.
    pub(crate) fn into_owned(self) -> Vec<T> {
        match self {
            CowList::Shared { base, proj } => proj(base.model()).clone(),
            CowList::Owned(v) => v,
        }
    }
}

/// One persistent per-kind index, shared with the base analysis until
/// first insert.
pub(crate) enum CowIndex {
    Shared { base: Arc<PreparedModel>, proj: fn(&Indexes) -> &ComponentIndex },
    Owned(ComponentIndex),
}

impl Default for CowIndex {
    fn default() -> Self {
        CowIndex::Owned(ComponentIndex::Linear(Vec::new()))
    }
}

impl Deref for CowIndex {
    type Target = ComponentIndex;

    fn deref(&self) -> &ComponentIndex {
        match self {
            CowIndex::Shared { base, proj } => proj(&base.analysis().idx),
            CowIndex::Owned(ix) => ix,
        }
    }
}

impl CowIndex {
    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, CowIndex::Shared { .. })
    }

    fn make_mut(&mut self) -> &mut ComponentIndex {
        if let CowIndex::Shared { base, proj } = self {
            *self = CowIndex::Owned(proj(&base.analysis().idx).clone());
        }
        match self {
            CowIndex::Owned(ix) => ix,
            CowIndex::Shared { .. } => unreachable!("materialised above"),
        }
    }

    /// [`ComponentIndex::insert`], materialising on first use.
    pub(crate) fn insert(&mut self, key: &str, position: usize) -> bool {
        // First-wins: a key already present in the shared base can never
        // be inserted, so probe through the shared view before cloning.
        if self.contains(key) {
            return false;
        }
        self.make_mut().insert(key, position)
    }

    /// [`ComponentIndex::insert_shared`], materialising on first use.
    pub(crate) fn insert_shared(&mut self, key: &Arc<str>, position: usize) -> bool {
        if self.contains(key) {
            return false;
        }
        self.make_mut().insert_shared(key, position)
    }

    /// The owned index, cloning from the base if still shared.
    pub(crate) fn into_owned(self) -> ComponentIndex {
        match self {
            CowIndex::Shared { base, proj } => proj(&base.analysis().idx).clone(),
            CowIndex::Owned(ix) => ix,
        }
    }
}

/// One interned content-key cache column, shared with the base until
/// first append.
pub(crate) enum CowKeys {
    Shared { base: Arc<PreparedModel>, proj: fn(&KeyCache) -> &Vec<Arc<str>> },
    Owned(Vec<Arc<str>>),
}

impl Default for CowKeys {
    fn default() -> Self {
        CowKeys::Owned(Vec::new())
    }
}

impl Deref for CowKeys {
    type Target = [Arc<str>];

    fn deref(&self) -> &[Arc<str>] {
        match self {
            CowKeys::Shared { base, proj } => proj(&base.analysis().keys),
            CowKeys::Owned(v) => v,
        }
    }
}

impl CowKeys {
    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, CowKeys::Shared { .. })
    }

    /// Append, materialising on first use.
    pub(crate) fn push(&mut self, key: Arc<str>) {
        if let CowKeys::Shared { base, proj } = self {
            *self = CowKeys::Owned(proj(&base.analysis().keys).clone());
        }
        match self {
            CowKeys::Owned(v) => v.push(key),
            CowKeys::Shared { .. } => unreachable!("materialised above"),
        }
    }

    /// The owned key column, cloning from the base if still shared.
    pub(crate) fn into_owned(self) -> Vec<Arc<str>> {
        match self {
            CowKeys::Shared { base, proj } => proj(&base.analysis().keys).clone(),
            CowKeys::Owned(v) => v,
        }
    }
}

/// Everything one push's merge passes mutate, taken out of the session
/// for the duration of the push (both the serial pass order and the
/// pipelined DAG executor run over this) and restored afterwards by
/// `CompositionSession::restore_cow_state`. The per-push delta indexes
/// stay plain [`ComponentIndex`] — they start empty every push and are
/// never shared with a base.
pub(crate) struct CowState {
    pub(crate) functions: CowList<FunctionDefinition>,
    pub(crate) functions_by_id: CowIndex,
    pub(crate) functions_by_content: CowIndex,
    pub(crate) functions_delta: ComponentIndex,
    pub(crate) functions_keys: CowKeys,
    pub(crate) units: CowList<UnitDefinition>,
    pub(crate) units_by_id: CowIndex,
    pub(crate) units_by_content: CowIndex,
    pub(crate) units_keys: CowKeys,
    pub(crate) compartment_types: CowList<CompartmentType>,
    pub(crate) compartment_types_by_id: CowIndex,
    pub(crate) compartment_types_by_name: CowIndex,
    pub(crate) compartment_types_delta: ComponentIndex,
    pub(crate) species_types: CowList<SpeciesType>,
    pub(crate) species_types_by_id: CowIndex,
    pub(crate) species_types_by_name: CowIndex,
    pub(crate) species_types_delta: ComponentIndex,
    pub(crate) compartments: CowList<Compartment>,
    pub(crate) compartments_by_id: CowIndex,
    pub(crate) compartments_by_name: CowIndex,
    pub(crate) compartments_delta: ComponentIndex,
    pub(crate) species: CowList<Species>,
    pub(crate) species_by_id: CowIndex,
    pub(crate) species_by_name: CowIndex,
    pub(crate) species_delta: ComponentIndex,
    pub(crate) parameters: CowList<Parameter>,
    pub(crate) parameters_by_id: CowIndex,
    pub(crate) assignments: CowList<InitialAssignment>,
    pub(crate) assignments_by_symbol: CowIndex,
    pub(crate) rules: CowList<Rule>,
    pub(crate) rules_by_content: CowIndex,
    pub(crate) rules_by_variable: CowIndex,
    pub(crate) rules_delta: ComponentIndex,
    pub(crate) constraints: CowList<Constraint>,
    pub(crate) constraints_by_content: CowIndex,
    pub(crate) constraints_delta: ComponentIndex,
    pub(crate) reactions: CowList<Reaction>,
    pub(crate) reactions_by_id: CowIndex,
    pub(crate) reactions_by_content: CowIndex,
    pub(crate) reactions_delta: ComponentIndex,
    pub(crate) reactions_keys: CowKeys,
    pub(crate) events: CowList<Event>,
    pub(crate) events_by_id: CowIndex,
    pub(crate) events_by_content: CowIndex,
    pub(crate) events_delta: ComponentIndex,
    pub(crate) events_keys: CowKeys,
}

impl CowState {
    /// Share every kind with the adopted base; only the per-push delta
    /// indexes are (empty) owned values.
    pub(crate) fn from_shared(base: &Arc<PreparedModel>, delta: &mut DeltaIndexes) -> CowState {
        let b = || Arc::clone(base);
        CowState {
            functions: CowList::Shared { base: b(), proj: |m| &m.function_definitions },
            functions_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.functions_by_id },
            functions_by_content: CowIndex::Shared { base: b(), proj: |ix| &ix.functions_by_content },
            functions_delta: take_idx(&mut delta.functions_by_content),
            functions_keys: CowKeys::Shared { base: b(), proj: |k| &k.functions },
            units: CowList::Shared { base: b(), proj: |m| &m.unit_definitions },
            units_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.units_by_id },
            units_by_content: CowIndex::Shared { base: b(), proj: |ix| &ix.units_by_content },
            units_keys: CowKeys::Shared { base: b(), proj: |k| &k.units },
            compartment_types: CowList::Shared { base: b(), proj: |m| &m.compartment_types },
            compartment_types_by_id: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.compartment_types_by_id,
            },
            compartment_types_by_name: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.compartment_types_by_name,
            },
            compartment_types_delta: take_idx(&mut delta.compartment_types_by_name),
            species_types: CowList::Shared { base: b(), proj: |m| &m.species_types },
            species_types_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.species_types_by_id },
            species_types_by_name: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.species_types_by_name,
            },
            species_types_delta: take_idx(&mut delta.species_types_by_name),
            compartments: CowList::Shared { base: b(), proj: |m| &m.compartments },
            compartments_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.compartments_by_id },
            compartments_by_name: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.compartments_by_name,
            },
            compartments_delta: take_idx(&mut delta.compartments_by_name),
            species: CowList::Shared { base: b(), proj: |m| &m.species },
            species_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.species_by_id },
            species_by_name: CowIndex::Shared { base: b(), proj: |ix| &ix.species_by_name },
            species_delta: take_idx(&mut delta.species_by_name),
            parameters: CowList::Shared { base: b(), proj: |m| &m.parameters },
            parameters_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.parameters_by_id },
            assignments: CowList::Shared { base: b(), proj: |m| &m.initial_assignments },
            assignments_by_symbol: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.assignments_by_symbol,
            },
            rules: CowList::Shared { base: b(), proj: |m| &m.rules },
            rules_by_content: CowIndex::Shared { base: b(), proj: |ix| &ix.rules_by_content },
            rules_by_variable: CowIndex::Shared { base: b(), proj: |ix| &ix.rules_by_variable },
            rules_delta: take_idx(&mut delta.rules_by_content),
            constraints: CowList::Shared { base: b(), proj: |m| &m.constraints },
            constraints_by_content: CowIndex::Shared {
                base: b(),
                proj: |ix| &ix.constraints_by_content,
            },
            constraints_delta: take_idx(&mut delta.constraints_by_content),
            reactions: CowList::Shared { base: b(), proj: |m| &m.reactions },
            reactions_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.reactions_by_id },
            reactions_by_content: CowIndex::Shared { base: b(), proj: |ix| &ix.reactions_by_content },
            reactions_delta: take_idx(&mut delta.reactions_by_content),
            reactions_keys: CowKeys::Shared { base: b(), proj: |k| &k.reactions },
            events: CowList::Shared { base: b(), proj: |m| &m.events },
            events_by_id: CowIndex::Shared { base: b(), proj: |ix| &ix.events_by_id },
            events_by_content: CowIndex::Shared { base: b(), proj: |ix| &ix.events_by_content },
            events_delta: take_idx(&mut delta.events_by_content),
            events_keys: CowKeys::Shared { base: b(), proj: |k| &k.events },
        }
    }

    /// Wrap an owned accumulator's state (the non-COW — or already
    /// materialised — session): every kind is moved in as `Owned` and
    /// moved back out verbatim at restore.
    pub(crate) fn from_owned(
        model: &mut Model,
        idx: &mut Indexes,
        keys: &mut KeyCache,
        delta: &mut DeltaIndexes,
    ) -> CowState {
        use std::mem::take;
        CowState {
            functions: CowList::Owned(take(&mut model.function_definitions)),
            functions_by_id: CowIndex::Owned(take_idx(&mut idx.functions_by_id)),
            functions_by_content: CowIndex::Owned(take_idx(&mut idx.functions_by_content)),
            functions_delta: take_idx(&mut delta.functions_by_content),
            functions_keys: CowKeys::Owned(take(&mut keys.functions)),
            units: CowList::Owned(take(&mut model.unit_definitions)),
            units_by_id: CowIndex::Owned(take_idx(&mut idx.units_by_id)),
            units_by_content: CowIndex::Owned(take_idx(&mut idx.units_by_content)),
            units_keys: CowKeys::Owned(take(&mut keys.units)),
            compartment_types: CowList::Owned(take(&mut model.compartment_types)),
            compartment_types_by_id: CowIndex::Owned(take_idx(&mut idx.compartment_types_by_id)),
            compartment_types_by_name: CowIndex::Owned(take_idx(&mut idx.compartment_types_by_name)),
            compartment_types_delta: take_idx(&mut delta.compartment_types_by_name),
            species_types: CowList::Owned(take(&mut model.species_types)),
            species_types_by_id: CowIndex::Owned(take_idx(&mut idx.species_types_by_id)),
            species_types_by_name: CowIndex::Owned(take_idx(&mut idx.species_types_by_name)),
            species_types_delta: take_idx(&mut delta.species_types_by_name),
            compartments: CowList::Owned(take(&mut model.compartments)),
            compartments_by_id: CowIndex::Owned(take_idx(&mut idx.compartments_by_id)),
            compartments_by_name: CowIndex::Owned(take_idx(&mut idx.compartments_by_name)),
            compartments_delta: take_idx(&mut delta.compartments_by_name),
            species: CowList::Owned(take(&mut model.species)),
            species_by_id: CowIndex::Owned(take_idx(&mut idx.species_by_id)),
            species_by_name: CowIndex::Owned(take_idx(&mut idx.species_by_name)),
            species_delta: take_idx(&mut delta.species_by_name),
            parameters: CowList::Owned(take(&mut model.parameters)),
            parameters_by_id: CowIndex::Owned(take_idx(&mut idx.parameters_by_id)),
            assignments: CowList::Owned(take(&mut model.initial_assignments)),
            assignments_by_symbol: CowIndex::Owned(take_idx(&mut idx.assignments_by_symbol)),
            rules: CowList::Owned(take(&mut model.rules)),
            rules_by_content: CowIndex::Owned(take_idx(&mut idx.rules_by_content)),
            rules_by_variable: CowIndex::Owned(take_idx(&mut idx.rules_by_variable)),
            rules_delta: take_idx(&mut delta.rules_by_content),
            constraints: CowList::Owned(take(&mut model.constraints)),
            constraints_by_content: CowIndex::Owned(take_idx(&mut idx.constraints_by_content)),
            constraints_delta: take_idx(&mut delta.constraints_by_content),
            reactions: CowList::Owned(take(&mut model.reactions)),
            reactions_by_id: CowIndex::Owned(take_idx(&mut idx.reactions_by_id)),
            reactions_by_content: CowIndex::Owned(take_idx(&mut idx.reactions_by_content)),
            reactions_delta: take_idx(&mut delta.reactions_by_content),
            reactions_keys: CowKeys::Owned(take(&mut keys.reactions)),
            events: CowList::Owned(take(&mut model.events)),
            events_by_id: CowIndex::Owned(take_idx(&mut idx.events_by_id)),
            events_by_content: CowIndex::Owned(take_idx(&mut idx.events_by_content)),
            events_delta: take_idx(&mut delta.events_by_content),
            events_keys: CowKeys::Owned(take(&mut keys.events)),
        }
    }

    /// Did any pass materialise any kind? `false` means the whole push was
    /// absorbed without touching the accumulator — the session stays
    /// [`Accum::Shared`] and nothing was cloned.
    pub(crate) fn any_materialised(&self) -> bool {
        !(self.functions.is_shared()
            && self.functions_by_id.is_shared()
            && self.functions_by_content.is_shared()
            && self.functions_keys.is_shared()
            && self.units.is_shared()
            && self.units_by_id.is_shared()
            && self.units_by_content.is_shared()
            && self.units_keys.is_shared()
            && self.compartment_types.is_shared()
            && self.compartment_types_by_id.is_shared()
            && self.compartment_types_by_name.is_shared()
            && self.species_types.is_shared()
            && self.species_types_by_id.is_shared()
            && self.species_types_by_name.is_shared()
            && self.compartments.is_shared()
            && self.compartments_by_id.is_shared()
            && self.compartments_by_name.is_shared()
            && self.species.is_shared()
            && self.species_by_id.is_shared()
            && self.species_by_name.is_shared()
            && self.parameters.is_shared()
            && self.parameters_by_id.is_shared()
            && self.assignments.is_shared()
            && self.assignments_by_symbol.is_shared()
            && self.rules.is_shared()
            && self.rules_by_content.is_shared()
            && self.rules_by_variable.is_shared()
            && self.constraints.is_shared()
            && self.constraints_by_content.is_shared()
            && self.reactions.is_shared()
            && self.reactions_by_id.is_shared()
            && self.reactions_by_content.is_shared()
            && self.reactions_keys.is_shared()
            && self.events.is_shared()
            && self.events_by_id.is_shared()
            && self.events_by_content.is_shared()
            && self.events_keys.is_shared())
    }

    /// Consolidate into plain owned session state. Kinds no pass touched
    /// are cloned from the base here, once; `skeleton` supplies the model
    /// id and name.
    pub(crate) fn into_owned_parts(
        self,
        skeleton: &Model,
        delta: &mut DeltaIndexes,
    ) -> (Model, Indexes, KeyCache) {
        let model = Model {
            id: skeleton.id.clone(),
            name: skeleton.name.clone(),
            function_definitions: self.functions.into_owned(),
            unit_definitions: self.units.into_owned(),
            compartment_types: self.compartment_types.into_owned(),
            species_types: self.species_types.into_owned(),
            compartments: self.compartments.into_owned(),
            species: self.species.into_owned(),
            parameters: self.parameters.into_owned(),
            initial_assignments: self.assignments.into_owned(),
            rules: self.rules.into_owned(),
            constraints: self.constraints.into_owned(),
            reactions: self.reactions.into_owned(),
            events: self.events.into_owned(),
        };
        let idx = Indexes {
            functions_by_id: self.functions_by_id.into_owned(),
            functions_by_content: self.functions_by_content.into_owned(),
            units_by_id: self.units_by_id.into_owned(),
            units_by_content: self.units_by_content.into_owned(),
            compartment_types_by_id: self.compartment_types_by_id.into_owned(),
            compartment_types_by_name: self.compartment_types_by_name.into_owned(),
            species_types_by_id: self.species_types_by_id.into_owned(),
            species_types_by_name: self.species_types_by_name.into_owned(),
            compartments_by_id: self.compartments_by_id.into_owned(),
            compartments_by_name: self.compartments_by_name.into_owned(),
            species_by_id: self.species_by_id.into_owned(),
            species_by_name: self.species_by_name.into_owned(),
            parameters_by_id: self.parameters_by_id.into_owned(),
            assignments_by_symbol: self.assignments_by_symbol.into_owned(),
            rules_by_content: self.rules_by_content.into_owned(),
            rules_by_variable: self.rules_by_variable.into_owned(),
            constraints_by_content: self.constraints_by_content.into_owned(),
            reactions_by_id: self.reactions_by_id.into_owned(),
            reactions_by_content: self.reactions_by_content.into_owned(),
            events_by_id: self.events_by_id.into_owned(),
            events_by_content: self.events_by_content.into_owned(),
        };
        let keys = KeyCache {
            functions: self.functions_keys.into_owned(),
            units: self.units_keys.into_owned(),
            reactions: self.reactions_keys.into_owned(),
            events: self.events_keys.into_owned(),
        };
        delta.functions_by_content = self.functions_delta;
        delta.compartment_types_by_name = self.compartment_types_delta;
        delta.species_types_by_name = self.species_types_delta;
        delta.compartments_by_name = self.compartments_delta;
        delta.species_by_name = self.species_delta;
        delta.rules_by_content = self.rules_delta;
        delta.constraints_by_content = self.constraints_delta;
        delta.reactions_by_content = self.reactions_delta;
        delta.events_by_content = self.events_delta;
        (model, idx, keys)
    }

    /// Give back only the per-push delta indexes, dropping the (all still
    /// shared) COW wrappers — the stayed-fully-shared restore path.
    pub(crate) fn restore_delta(self, delta: &mut DeltaIndexes) {
        delta.functions_by_content = self.functions_delta;
        delta.compartment_types_by_name = self.compartment_types_delta;
        delta.species_types_by_name = self.species_types_delta;
        delta.compartments_by_name = self.compartments_delta;
        delta.species_by_name = self.species_delta;
        delta.rules_by_content = self.rules_delta;
        delta.constraints_by_content = self.constraints_delta;
        delta.reactions_by_content = self.reactions_delta;
        delta.events_by_content = self.events_delta;
    }
}

fn take_idx(slot: &mut ComponentIndex) -> ComponentIndex {
    std::mem::replace(slot, ComponentIndex::Linear(Vec::new()))
}
