//! A session-/batch-lifetime worker pool for the compose fan-outs.
//!
//! Every parallel stage in the engine — the merge-pass pipeline's DAG
//! workers (the `pipeline` module), within-push content-key computation
//! ([`crate::prepared`]), and the corpus stripes of
//! [`crate::BatchComposer`] — used to spawn fresh scoped threads per
//! call. That is fine for one composition and ruinous for the Fig. 8
//! serving shape (thousands of small pushes against one hot base), where
//! thread spawn/join dominates the per-pair fixed cost. [`WorkerPool`]
//! replaces those per-call spawns with threads parked once per session
//! (or per batch, or per daemon) and a per-call job **batch**: each
//! [`WorkerPool::run_scoped`] call enqueues its closures, runs the
//! caller's own share inline, drains whatever the workers have not
//! picked up, and returns only when every closure of *this* call has
//! finished — the same structured-concurrency contract as
//! [`std::thread::scope`], including panic propagation.
//!
//! Nesting is deadlock-free by construction: a closure running on a pool
//! worker may itself call [`WorkerPool::run_scoped`] on the same pool —
//! the inner call's caller thread can always drain the inner batch
//! itself, so no call ever waits on a thread that is waiting on it.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// One `run_scoped` call's job set. Workers and the calling thread both
/// pull from `tasks`; `remaining` counts tasks not yet *finished* (a task
/// is popped, run, then counted), so waiting on `remaining == 0` is
/// waiting for full completion, not just an empty queue.
struct Batch {
    tasks: Mutex<VecDeque<Task>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn run_one(&self, task: Task) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolShared {
    /// One entry per outstanding task (an `Arc` clone of its batch), so
    /// any number of workers can pick work from any number of concurrent
    /// `run_scoped` calls without a per-batch registry.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A pool of parked worker threads shared by every parallel stage of a
/// composition session, batch run, or serving daemon. See the module
/// docs; construct one per long-lived scope and pass it around in an
/// [`Arc`].
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("parked_workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool sized for `threads` total lanes of parallelism. The calling
    /// thread of every [`WorkerPool::run_scoped`] is always one lane, so
    /// `threads - 1` background workers are spawned; `threads <= 1` parks
    /// nothing and every task runs inline on the caller (the serial
    /// ablation, still structurally identical).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("compose-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers, threads }
    }

    /// A pool sized to the host's available parallelism.
    pub fn for_host() -> WorkerPool {
        let host =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        WorkerPool::new(host)
    }

    /// Total parallelism lanes (background workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `caller` inline and `tasks` on the pool, returning when **all**
    /// of them have finished — the drop-in replacement for a
    /// [`std::thread::scope`] that spawns `tasks` and runs `caller` on the
    /// scope thread. Closures may borrow from the caller's stack: none of
    /// them outlives this call. If the pool's workers are busy (or the
    /// pool is smaller than the task count) the caller drains the
    /// leftovers itself after finishing its own share. Panics from any
    /// closure are re-raised here, caller's first.
    pub fn run_scoped<'env>(
        &self,
        caller: impl FnOnce() + 'env,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) {
        let count = tasks.len();
        if count == 0 {
            return caller();
        }
        // SAFETY: every task is executed (by a worker or by the caller's
        // drain loop below) strictly before this function returns — the
        // `remaining == 0` wait is unconditional, including on panic — so
        // no borrow in a task outlives its true 'env lifetime.
        let tasks: VecDeque<Task> = tasks
            .into_iter()
            .map(|t| unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(t)
            })
            .collect();
        let batch = Arc::new(Batch {
            tasks: Mutex::new(tasks),
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let advertised = count.min(self.workers.len());
        if advertised > 0 {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..advertised {
                queue.push_back(Arc::clone(&batch));
            }
            drop(queue);
            if advertised == 1 {
                self.shared.available.notify_one();
            } else {
                self.shared.available.notify_all();
            }
        }

        let caller_panic = catch_unwind(AssertUnwindSafe(caller)).err();

        // Drain whatever the workers have not claimed, then wait for the
        // in-flight remainder.
        loop {
            let task = {
                let mut tasks = batch.tasks.lock().unwrap_or_else(|e| e.into_inner());
                tasks.pop_front()
            };
            match task {
                Some(task) => batch.run_one(task),
                None => break,
            }
        }
        let mut remaining = batch.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
        drop(remaining);

        if let Some(payload) = caller_panic {
            resume_unwind(payload);
        }
        let task_panic = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = task_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(batch) = queue.pop_front() {
                    break batch;
                }
                queue = shared.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A queue entry is a license for at most one task of its batch;
        // the caller's drain loop may have emptied it already.
        let task = {
            let mut tasks = batch.tasks.lock().unwrap_or_else(|e| e.into_inner());
            tasks.pop_front()
        };
        if let Some(task) = task {
            batch.run_one(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_and_the_caller() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(
            || {
                hits.fetch_add(100, Ordering::SeqCst);
            },
            tasks,
        );
        assert_eq!(hits.load(Ordering::SeqCst), 116);
    }

    #[test]
    fn borrows_from_the_caller_stack() {
        let pool = WorkerPool::new(3);
        let mut partials = vec![0u64; 4];
        {
            let mut chunks: Vec<&mut u64> = partials.iter_mut().collect();
            let last = chunks.pop().expect("non-empty");
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .into_iter()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = (i as u64 + 1) * 10;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(
                || {
                    *last = 999;
                },
                tasks,
            );
        }
        assert_eq!(partials, vec![10, 20, 30, 999]);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(|| {}, tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn task_panic_propagates_after_completion() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| panic!("injected task failure")),
                Box::new(|| {
                    finished.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            pool.run_scoped(|| {}, tasks);
        }));
        assert!(result.is_err(), "panic must cross run_scoped");
        assert_eq!(finished.load(Ordering::SeqCst), 1, "other tasks still ran");
    }

    #[test]
    fn caller_panic_wins_and_tasks_still_finish() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
                finished.fetch_add(1, Ordering::SeqCst);
            })];
            pool.run_scoped(|| panic!("caller failure"), tasks);
        }));
        let payload = result.expect_err("caller panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "caller failure");
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_run_scoped_on_the_same_pool_completes() {
        let pool = Arc::new(WorkerPool::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                        .map(|_| {
                            let hits = Arc::clone(&hits);
                            Box::new(move || {
                                hits.fetch_add(1, Ordering::SeqCst);
                            })
                                as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_scoped(
                        || {
                            hits.fetch_add(10, Ordering::SeqCst);
                        },
                        inner,
                    );
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(|| {}, outer);
        assert_eq!(hits.load(Ordering::SeqCst), 39);
    }

    #[test]
    fn reuse_across_many_batches_spawns_nothing_new() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(|| {}, tasks);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }
}
