//! The merge-pass pipeline: Fig. 4 as a dependency DAG, not a list.
//!
//! A push's twelve per-kind merge passes (see [`crate::passes`]) are not a
//! chain — unit definitions can never interact with compartment or species
//! types, and a rule never writes a mapping any other pass reads. This
//! module executes the passes on a small scoped-thread scheduler:
//!
//! 1. **Plan** ([`plan`]): compute, for this push, which passes must wait
//!    on which. Three edge families:
//!    * *mapping edges* — pass `P` reads the mapping table for a set of
//!      ids (its **lookups**: component attributes plus the free
//!      identifiers of its maths, straight from the prepared reference
//!      sets); pass `Q` can only ever write mappings whose source is an
//!      incoming id of its kind (its **sources**). `Q → P` exactly when
//!      `lookups(P) ∩ sources(Q) ≠ ∅` and `Q` precedes `P` in Fig. 4
//!      order. The declared read/write sets are per-kind; this narrows
//!      them with the push's actual ids, which is what makes the DAG wide
//!      on real models.
//!    * *taken-id edges* — `claim_id`/`fresh_id` probe the global id
//!      registry. A fresh id minted from base `b` is always `b` or
//!      `b_<n>…`, so two passes can only observe each other's additions
//!      when their ids share a **root** (the id with trailing `_<digits>`
//!      groups stripped). Passes with intersecting root families are
//!      ordered; all others keep disjoint probe spaces and run free.
//!    * *data edges* — the fixed cross-kind reads: conflict checks resolve
//!      units (compartments, species, parameters, reactions ← units) and
//!      the species amount/concentration bridge reads compartments
//!      (species ← compartments).
//! 2. **Execute**: per-kind state is moved out of the session into
//!    [`std::sync::RwLock`]ed slots; each worker claims a ready pass
//!    (most expensive first), write-locks its own slot and aux (mapping
//!    shard, taken additions, log buffer), read-locks the slots of its
//!    completed dependencies, and runs the pass function. Writers never
//!    contend: every lock acquisition is a `try_*` that panics if the
//!    dependency analysis ever admitted a conflict.
//! 3. **Fold**: logs concatenate in Fig. 4 pass order, shards fold into
//!    the session's per-push mapping table in pass order (later passes
//!    overwrite, as the single serial table would), taken additions merge
//!    into the registry — after which `finish_push` proceeds exactly as
//!    on the serial path.
//!
//! Output is bit-for-bit identical to the serial pass order: a pass's
//! mapping view contains exactly the entries the serial table would hold
//! for every id it can ask about (upstream shards are consulted
//! latest-pass-first, reproducing serial overwrite order), probe-visible
//! taken additions are exactly those its probes can distinguish, and logs
//! and per-kind state are pass-local. The property tests sweep worker
//! counts 1..8 across semantics levels and ablations to enforce this.

use std::sync::{Condvar, Mutex, RwLock, RwLockReadGuard};

use sbml_math::rewrite::collect_identifiers;

use crate::cow::{CowIndex, CowKeys, CowList, CowState};
use crate::index::{ComponentIndex, FastMap, FastSet};
use crate::passes::{
    AssignmentsMut, CompartmentTypesMut, CompartmentsMut, CompartmentsRead, ConstraintsMut,
    EventsMut, FunctionsMut, IdRegistry, Incoming, IvA, MapStore, ParametersMut, PassEnv,
    ReactionsMut, RulesMut, SpeciesMut, SpeciesTypesMut, TakenStore, UnitsMut, UnitsRead,
};
use crate::equality::MappingTable;
use crate::guard::{self, ExecError, Meter, Site};
use crate::initial_values::{IncrementalValues, InitialValues};
use crate::log::MergeLog;
use crate::options::ComposeOptions;
use crate::pool::WorkerPool;
use crate::session::CompositionSession;
use crate::{passes, prepared::IncomingKeys};

/// Pass indices in Fig. 4 order. Kept as plain `usize`s (not an enum) so
/// they double as bit positions in the dependency masks.
const FUNCTIONS: usize = 0;
const UNITS: usize = 1;
const COMPARTMENT_TYPES: usize = 2;
const SPECIES_TYPES: usize = 3;
const COMPARTMENTS: usize = 4;
const SPECIES: usize = 5;
const PARAMETERS: usize = 6;
const INITIAL_ASSIGNMENTS: usize = 7;
const RULES: usize = 8;
const CONSTRAINTS: usize = 9;
const REACTIONS: usize = 10;
const EVENTS: usize = 11;
/// Number of passes.
const N: usize = 12;
const ALL_DONE: u16 = (1 << N) - 1;

/// The per-push execution plan: dependency bitmasks and cost estimates.
/// A pure function of the *incoming* side (its ids and free-reference
/// sets), independent of the accumulator and of every option knob — so a
/// [`crate::PreparedModel`] caches it and pays the analysis once across
/// all of its pushes.
#[derive(Debug)]
pub(crate) struct Plan {
    /// All passes `p` waits on (mapping ∪ taken ∪ data edges).
    deps: [u16; N],
    /// Passes whose mapping shards `p`'s view must include.
    shard_deps: [u16; N],
    /// Passes whose taken-id additions `p`'s probes must see.
    taken_deps: [u16; N],
    /// Rough work estimate per pass, for largest-first scheduling.
    cost: [u64; N],
}

/// The root of an id's rename family: trailing `_<digits>` groups
/// stripped. `fresh_id` only ever mints `base` or `base_<n>`, and
/// `root(base_<n>) == root(base)`, so two passes can observe each other
/// through the taken registry only when id roots collide.
fn family_root(id: &str) -> &str {
    let mut root = id;
    loop {
        let Some(pos) = root.rfind('_') else { return root };
        let tail = &root[pos + 1..];
        if tail.is_empty() || !tail.bytes().all(|b| b.is_ascii_digit()) {
            return root;
        }
        root = &root[..pos];
    }
}

/// Estimated size of a math expression for scheduling cost (not output).
fn math_cost(m: &sbml_math::MathExpr) -> u64 {
    m.size() as u64
}

/// Bitmask of passes whose incoming component list is empty (they would
/// run zero loop iterations — pre-completed by the scheduler).
fn empty_passes(model: &sbml_model::Model) -> u16 {
    let mut mask = 0u16;
    let counts = [
        model.function_definitions.len(),
        model.unit_definitions.len(),
        model.compartment_types.len(),
        model.species_types.len(),
        model.compartments.len(),
        model.species.len(),
        model.parameters.len(),
        model.initial_assignments.len(),
        model.rules.len(),
        model.constraints.len(),
        model.reactions.len(),
        model.events.len(),
    ];
    for (p, count) in counts.into_iter().enumerate() {
        if count == 0 {
            mask |= 1 << p;
        }
    }
    mask
}

/// The ids each pass can claim (and thus mint mappings/taken entries for),
/// paired with the pass index — one iteration shape for both the source
/// map and the family-probe edges.
fn claimable_ids(
    model: &sbml_model::Model,
) -> impl Iterator<Item = (usize, Box<dyn Iterator<Item = &str> + '_>)> {
    let per_pass: [(usize, Box<dyn Iterator<Item = &str> + '_>); 9] = [
        (FUNCTIONS, Box::new(model.function_definitions.iter().map(|f| f.id.as_str()))),
        (UNITS, Box::new(model.unit_definitions.iter().map(|u| u.id.as_str()))),
        (COMPARTMENT_TYPES, Box::new(model.compartment_types.iter().map(|t| t.id.as_str()))),
        (SPECIES_TYPES, Box::new(model.species_types.iter().map(|t| t.id.as_str()))),
        (COMPARTMENTS, Box::new(model.compartments.iter().map(|c| c.id.as_str()))),
        (SPECIES, Box::new(model.species.iter().map(|s| s.id.as_str()))),
        (PARAMETERS, Box::new(model.parameters.iter().map(|p| p.id.as_str()))),
        (REACTIONS, Box::new(model.reactions.iter().map(|r| r.id.as_str()))),
        (EVENTS, Box::new(model.events.iter().filter_map(|ev| ev.id.as_deref()))),
    ];
    per_pass.into_iter()
}

/// Build the per-push plan. Requires precomputed incoming keys (the
/// engagement gate in the session guarantees them): their free-reference
/// sets are the lookups of the math-bearing passes.
fn build_plan(inc: &Incoming<'_>) -> Plan {
    let model = inc.model;
    let keys: &IncomingKeys = inc.keys.expect("pipelined push always has incoming keys");
    let krefs = keys.refs(model);

    // sources[id] = kinds for which `id` is an incoming component id (a
    // candidate mapping source and taken-registry claim).
    fn add<'m>(
        sources: &mut FastMap<&'m str, u16>,
        roots: &mut FastMap<&'m str, u16>,
        id: &'m str,
        pass: usize,
    ) {
        *sources.entry(id).or_default() |= 1 << pass;
        *roots.entry(family_root(id)).or_default() |= 1 << pass;
    }
    let mut sources: FastMap<&str, u16> = FastMap::default();
    let mut roots: FastMap<&str, u16> = FastMap::default();
    for (pass, ids) in claimable_ids(model) {
        for id in ids {
            add(&mut sources, &mut roots, id, pass);
        }
    }

    let mut shard_deps = [0u16; N];
    let mut taken_deps = [0u16; N];
    {
        let mut lookup = |pass: usize, id: &str| {
            if let Some(mask) = sources.get(id) {
                shard_deps[pass] |= mask;
            }
        };
        for refs in &krefs.functions {
            for r in refs.iter() {
                lookup(FUNCTIONS, r);
            }
        }
        for c in &model.compartments {
            for attr in [&c.compartment_type, &c.units, &c.outside].into_iter().flatten() {
                lookup(COMPARTMENTS, attr);
            }
        }
        for s in &model.species {
            lookup(SPECIES, &s.compartment);
            for attr in [&s.species_type, &s.substance_units].into_iter().flatten() {
                lookup(SPECIES, attr);
            }
        }
        for p in &model.parameters {
            if let Some(units) = &p.units {
                lookup(PARAMETERS, units);
            }
        }
        for ia in &model.initial_assignments {
            lookup(INITIAL_ASSIGNMENTS, &ia.symbol);
            for id in collect_identifiers(&ia.math) {
                lookup(INITIAL_ASSIGNMENTS, &id);
            }
        }
        for refs in &krefs.rules {
            for r in refs.iter() {
                lookup(RULES, r);
            }
        }
        for refs in &krefs.constraints {
            for r in refs.iter() {
                lookup(CONSTRAINTS, r);
            }
        }
        for refs in &krefs.reactions {
            for r in refs.iter() {
                lookup(REACTIONS, r);
            }
        }
        for refs in &krefs.events {
            for r in refs.iter() {
                lookup(EVENTS, r);
            }
        }
    }
    // Taken-id family edges: this pass's claimable roots vs earlier
    // passes' claimable roots.
    for (pass, ids) in claimable_ids(model) {
        for id in ids {
            if let Some(mask) = roots.get(family_root(id)) {
                taken_deps[pass] |= mask;
            }
        }
    }

    let mut deps = [0u16; N];
    let mut cost = [0u64; N];
    for p in 0..N {
        let earlier = (1u16 << p) - 1;
        shard_deps[p] &= earlier;
        taken_deps[p] &= earlier;
        deps[p] = shard_deps[p] | taken_deps[p];
    }
    // Fixed cross-kind data reads (conflict checks).
    deps[COMPARTMENTS] |= 1 << UNITS;
    deps[SPECIES] |= (1 << UNITS) | (1 << COMPARTMENTS);
    deps[PARAMETERS] |= 1 << UNITS;
    deps[REACTIONS] |= 1 << UNITS;

    // Cost estimates: math-bearing kinds by expression size, the rest by
    // count. Only affects scheduling order, never output.
    cost[FUNCTIONS] = model.function_definitions.iter().map(|f| math_cost(&f.body)).sum();
    cost[UNITS] = model.unit_definitions.len() as u64;
    cost[COMPARTMENT_TYPES] = model.compartment_types.len() as u64;
    cost[SPECIES_TYPES] = model.species_types.len() as u64;
    cost[COMPARTMENTS] = model.compartments.len() as u64;
    cost[SPECIES] = model.species.len() as u64 * 2;
    cost[PARAMETERS] = model.parameters.len() as u64;
    cost[INITIAL_ASSIGNMENTS] =
        model.initial_assignments.iter().map(|ia| math_cost(&ia.math)).sum();
    cost[RULES] = model.rules.iter().map(|r| math_cost(r.math())).sum();
    cost[CONSTRAINTS] = model.constraints.iter().map(|c| math_cost(&c.math)).sum();
    cost[REACTIONS] = model
        .reactions
        .iter()
        .map(|r| {
            let math = r.kinetic_law.as_ref().map(|kl| math_cost(&kl.math)).unwrap_or(0);
            math + (r.reactants.len() + r.products.len() + r.modifiers.len()) as u64
        })
        .sum();
    cost[EVENTS] = model
        .events
        .iter()
        .map(|ev| {
            math_cost(&ev.trigger)
                + ev.delay.as_ref().map(math_cost).unwrap_or(0)
                + ev.assignments.iter().map(|a| math_cost(&a.math)).sum::<u64>()
        })
        .sum();

    Plan { deps, shard_deps, taken_deps, cost }
}

/// Per-pass auxiliary state: its mapping shard, its taken-id additions and
/// its log buffer.
#[derive(Default)]
struct PassAux {
    shard: MappingTable,
    added: FastSet<String>,
    log: MergeLog,
}

/// Per-kind component state, taken out of the session (as copy-on-write
/// wrappers — see [`crate::cow`]) for the duration of the pipelined
/// passes. Tuple order per slot: list, persistent indexes (Fig. 4
/// declaration order), per-push delta index (where the kind has one),
/// key-cache column (where the kind has one).
struct KindSlots {
    functions: RwLock<(
        CowList<sbml_model::FunctionDefinition>,
        CowIndex,
        CowIndex,
        ComponentIndex,
        CowKeys,
    )>,
    units: RwLock<(CowList<sbml_units::UnitDefinition>, CowIndex, CowIndex, CowKeys)>,
    compartment_types:
        RwLock<(CowList<sbml_model::CompartmentType>, CowIndex, CowIndex, ComponentIndex)>,
    species_types: RwLock<(CowList<sbml_model::SpeciesType>, CowIndex, CowIndex, ComponentIndex)>,
    compartments: RwLock<(CowList<sbml_model::Compartment>, CowIndex, CowIndex, ComponentIndex)>,
    species: RwLock<(CowList<sbml_model::Species>, CowIndex, CowIndex, ComponentIndex)>,
    parameters: RwLock<(CowList<sbml_model::Parameter>, CowIndex)>,
    assignments: RwLock<(CowList<sbml_model::InitialAssignment>, CowIndex)>,
    rules: RwLock<(CowList<sbml_model::Rule>, CowIndex, CowIndex, ComponentIndex)>,
    constraints: RwLock<(CowList<sbml_model::rule::Constraint>, CowIndex, ComponentIndex)>,
    reactions:
        RwLock<(CowList<sbml_model::Reaction>, CowIndex, CowIndex, ComponentIndex, CowKeys)>,
    events: RwLock<(CowList<sbml_model::Event>, CowIndex, CowIndex, ComponentIndex, CowKeys)>,
}

/// Everything the workers share.
struct Shared<'a> {
    options: &'a ComposeOptions,
    slots: KindSlots,
    aux: [RwLock<PassAux>; N],
    taken: &'a IdRegistry,
    iv_store: Option<&'a IncrementalValues>,
    iv_snap: &'a InitialValues,
    iv_b: &'a InitialValues,
    /// Budget meter of a guarded push; checked before each pass runs.
    meter: Option<&'a Meter>,
}

impl Shared<'_> {
    fn iv_a(&self) -> IvA<'_> {
        match self.iv_store {
            Some(store) => IvA::Store(store),
            None => IvA::Snap(self.iv_snap),
        }
    }
}

/// Scheduler bookkeeping behind one mutex.
struct SchedState {
    ready: Vec<usize>,
    deps_left: [usize; N],
    dependents: [u16; N],
    done: u16,
    /// First fault observed (contained pass panic or budget overrun);
    /// once set, workers drain and the push unwinds via rollback.
    fault: Option<ExecError>,
}

/// Recover the inner value of a lock whether or not a contained pass
/// panic poisoned it — on the fault path the state is discarded by the
/// session rollback, and on the success path no pass panicked.
fn unpoison<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run one push's merge passes on `workers` lanes of the session's
/// [`WorkerPool`] (the calling thread is lane zero; parked pool threads
/// take the rest — no per-push spawns). On success the session is in
/// exactly the state the serial pass order would leave — see the module
/// docs for the argument.
///
/// Worker panics are contained: a pass that panics (or a `meter` that
/// runs out between passes) stops the schedule, the per-kind state is
/// restored into the session (poison-tolerantly — the caller rolls the
/// push back), the per-pass aux fold is skipped, and the fault comes back
/// as a structured [`ExecError`].
pub(crate) fn run(
    sess: &mut CompositionSession<'_>,
    inc: &Incoming<'_>,
    workers: usize,
    pool: &WorkerPool,
    meter: Option<&Meter>,
) -> Result<(), ExecError> {
    // Prepared pushes cache the plan (it is a pure function of the
    // incoming side); raw pushes build it on the spot.
    let local_plan;
    let plan: &Plan = match inc.plan {
        Some(cell) => cell.get_or_init(|| build_plan(inc)),
        None => {
            local_plan = build_plan(inc);
            &local_plan
        }
    };

    // Take per-kind state out of the session — COW wrappers over the
    // shared base for an adopted session, moved-out owned state otherwise
    // — and distribute it into the per-pass slots.
    let st = sess.take_cow_state();
    let slots = KindSlots {
        functions: RwLock::new((
            st.functions,
            st.functions_by_id,
            st.functions_by_content,
            st.functions_delta,
            st.functions_keys,
        )),
        units: RwLock::new((st.units, st.units_by_id, st.units_by_content, st.units_keys)),
        compartment_types: RwLock::new((
            st.compartment_types,
            st.compartment_types_by_id,
            st.compartment_types_by_name,
            st.compartment_types_delta,
        )),
        species_types: RwLock::new((
            st.species_types,
            st.species_types_by_id,
            st.species_types_by_name,
            st.species_types_delta,
        )),
        compartments: RwLock::new((
            st.compartments,
            st.compartments_by_id,
            st.compartments_by_name,
            st.compartments_delta,
        )),
        species: RwLock::new((st.species, st.species_by_id, st.species_by_name, st.species_delta)),
        parameters: RwLock::new((st.parameters, st.parameters_by_id)),
        assignments: RwLock::new((st.assignments, st.assignments_by_symbol)),
        rules: RwLock::new((st.rules, st.rules_by_content, st.rules_by_variable, st.rules_delta)),
        constraints: RwLock::new((st.constraints, st.constraints_by_content, st.constraints_delta)),
        reactions: RwLock::new((
            st.reactions,
            st.reactions_by_id,
            st.reactions_by_content,
            st.reactions_delta,
            st.reactions_keys,
        )),
        events: RwLock::new((
            st.events,
            st.events_by_id,
            st.events_by_content,
            st.events_delta,
            st.events_keys,
        )),
    };
    let taken = std::mem::replace(&mut sess.taken, IdRegistry::new());

    let shared = Shared {
        options: sess.options,
        slots,
        aux: std::array::from_fn(|_| RwLock::new(PassAux::default())),
        taken: &taken,
        iv_store: sess.incremental.as_ref(),
        iv_snap: &sess.iv_a,
        iv_b: &sess.iv_b,
        meter,
    };

    // Dependents and initial ready set. A pass with no incoming
    // components does nothing — pre-mark it done instead of bouncing it
    // through a worker (its dependents' edges resolve immediately).
    let empty = empty_passes(inc.model);
    let mut deps_left = [0usize; N];
    let mut dependents = [0u16; N];
    let mut ready = Vec::with_capacity(N);
    for p in 0..N {
        deps_left[p] = (plan.deps[p] & !empty).count_ones() as usize;
        if deps_left[p] == 0 && empty & (1 << p) == 0 {
            ready.push(p);
        }
        for q in 0..p {
            if plan.deps[p] & (1 << q) != 0 && empty & (1 << q) == 0 {
                dependents[q] |= 1 << p;
            }
        }
    }
    let sched =
        Mutex::new(SchedState { ready, deps_left, dependents, done: empty, fault: None });
    let cv = Condvar::new();

    // The calling thread is worker zero; `workers - 1` parked pool
    // threads pick up the remaining lanes through the per-push injector —
    // no thread is spawned on this path, ever.
    let workers = workers.min(N).max(1);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (1..workers)
        .map(|_| {
            Box::new(|| worker(&sched, &cv, &shared, inc, plan)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run_scoped(|| worker(&sched, &cv, &shared, inc, plan), tasks);
    let fault = unpoison(sched.into_inner()).fault;

    // Move state back into the session. Poison-tolerant throughout: after
    // a contained pass panic the locks may be poisoned, and on that path
    // the caller discards the push via rollback anyway.
    let Shared { slots, aux, .. } = shared;
    let (functions, functions_by_id, functions_by_content, functions_delta, functions_keys) =
        unpoison(slots.functions.into_inner());
    let (units, units_by_id, units_by_content, units_keys) = unpoison(slots.units.into_inner());
    let (
        compartment_types,
        compartment_types_by_id,
        compartment_types_by_name,
        compartment_types_delta,
    ) = unpoison(slots.compartment_types.into_inner());
    let (species_types, species_types_by_id, species_types_by_name, species_types_delta) =
        unpoison(slots.species_types.into_inner());
    let (compartments, compartments_by_id, compartments_by_name, compartments_delta) =
        unpoison(slots.compartments.into_inner());
    let (species, species_by_id, species_by_name, species_delta) =
        unpoison(slots.species.into_inner());
    let (parameters, parameters_by_id) = unpoison(slots.parameters.into_inner());
    let (assignments, assignments_by_symbol) = unpoison(slots.assignments.into_inner());
    let (rules, rules_by_content, rules_by_variable, rules_delta) =
        unpoison(slots.rules.into_inner());
    let (constraints, constraints_by_content, constraints_delta) =
        unpoison(slots.constraints.into_inner());
    let (reactions, reactions_by_id, reactions_by_content, reactions_delta, reactions_keys) =
        unpoison(slots.reactions.into_inner());
    let (events, events_by_id, events_by_content, events_delta, events_keys) =
        unpoison(slots.events.into_inner());
    sess.restore_cow_state(CowState {
        functions,
        functions_by_id,
        functions_by_content,
        functions_delta,
        functions_keys,
        units,
        units_by_id,
        units_by_content,
        units_keys,
        compartment_types,
        compartment_types_by_id,
        compartment_types_by_name,
        compartment_types_delta,
        species_types,
        species_types_by_id,
        species_types_by_name,
        species_types_delta,
        compartments,
        compartments_by_id,
        compartments_by_name,
        compartments_delta,
        species,
        species_by_id,
        species_by_name,
        species_delta,
        parameters,
        parameters_by_id,
        assignments,
        assignments_by_symbol,
        rules,
        rules_by_content,
        rules_by_variable,
        rules_delta,
        constraints,
        constraints_by_content,
        constraints_delta,
        reactions,
        reactions_by_id,
        reactions_by_content,
        reactions_delta,
        reactions_keys,
        events,
        events_by_id,
        events_by_content,
        events_delta,
        events_keys,
    });

    // ...and fold the per-pass aux state in Fig. 4 order: logs
    // concatenate, shards overwrite like the single serial table, taken
    // additions merge into the registry. A faulted push skips the fold:
    // partial shards/logs must not leak, and the rollback rebuilds the
    // registry from scratch.
    sess.taken = taken;
    if let Some(fault) = fault {
        return Err(fault);
    }
    for slot in aux {
        let PassAux { shard, added, log } = unpoison(slot.into_inner());
        for (from, to) in shard {
            sess.push_maps.insert(from, to);
        }
        sess.taken.added.extend(added);
        sess.log.events.extend(log.events);
    }
    Ok(())
}

fn worker(sched: &Mutex<SchedState>, cv: &Condvar, shared: &Shared<'_>, inc: &Incoming<'_>, plan: &Plan) {
    let mut state = unpoison(sched.lock());
    loop {
        if state.fault.is_some() || state.done == ALL_DONE {
            cv.notify_all();
            return;
        }
        // Most expensive ready pass first.
        let next = state
            .ready
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| plan.cost[p])
            .map(|(i, _)| i);
        let Some(slot) = next else {
            state = unpoison(cv.wait(state));
            continue;
        };
        let pass = state.ready.swap_remove(slot);
        drop(state);

        // Budget check at pass granularity, then the pass itself with its
        // panics contained at this boundary (the pass functions only
        // borrow state that the fault path discards).
        let outcome = match shared.meter.map_or(Ok(()), |m| m.check_deadline(Site::Pass(pass))) {
            Err(overrun) => Err(overrun),
            Ok(()) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_pass(pass, shared, inc, plan);
            }))
            .map_err(|payload| ExecError::Panicked {
                site: Site::Pass(pass),
                detail: guard::panic_detail(payload.as_ref()),
            }),
        };

        state = unpoison(sched.lock());
        match outcome {
            Ok(()) => {
                state.done |= 1 << pass;
                let dependents = state.dependents[pass];
                for q in 0..N {
                    if dependents & (1 << q) != 0 {
                        state.deps_left[q] -= 1;
                        if state.deps_left[q] == 0 {
                            state.ready.push(q);
                        }
                    }
                }
                if state.done == ALL_DONE {
                    cv.notify_all();
                } else {
                    // This worker grabs one ready pass itself on the next
                    // loop; wake exactly one sleeper per *additional*
                    // ready pass. Broadcasting here stampedes every
                    // sleeper through the mutex on each of the twelve
                    // completions — pure context-switch churn on busy
                    // hosts.
                    for _ in 1..state.ready.len() {
                        cv.notify_one();
                    }
                }
            }
            Err(fault) => {
                // Record the first fault and drain: in-flight passes on
                // other workers finish their bookkeeping, every sleeper
                // wakes, and run() surfaces the error after restoring the
                // session state.
                if state.fault.is_none() {
                    state.fault = Some(fault);
                }
                cv.notify_all();
            }
        }
    }
}

/// Descending pass indices selected by `mask` — latest pass first, the
/// precedence order for upstream shard views.
fn desc(mask: u16) -> impl Iterator<Item = usize> {
    (0..N).rev().filter(move |p| mask & (1 << p) != 0)
}

fn run_pass(pass: usize, sh: &Shared<'_>, inc: &Incoming<'_>, plan: &Plan) {
    guard::fail_point(Site::Pass(pass));
    // Lock the aux of every pass whose shard or taken additions this pass
    // reads. They are complete (the scheduler ordered them before us) and
    // will never be written again this push, so try_read cannot fail.
    let read_mask = plan.shard_deps[pass] | plan.taken_deps[pass];
    let guards: Vec<(usize, RwLockReadGuard<'_, PassAux>)> = desc(read_mask)
        .map(|q| (q, sh.aux[q].try_read().expect("dependency aux is complete")))
        .collect();
    let upstream: Vec<&MappingTable> = guards
        .iter()
        .filter(|(q, _)| plan.shard_deps[pass] & (1 << *q) != 0)
        .map(|(_, g)| &g.shard)
        .collect();
    let visible: Vec<&FastSet<String>> = guards
        .iter()
        .filter(|(q, _)| plan.taken_deps[pass] & (1 << *q) != 0)
        .map(|(_, g)| &g.added)
        .collect();

    let mut aux = sh.aux[pass].try_write().expect("own aux is uncontended");
    let PassAux { shard, added, log } = &mut *aux;
    let mask = crate::passes::PrefixMask::of_tables(upstream.iter().copied());
    let mut env = PassEnv {
        options: sh.options,
        maps: MapStore::Sharded { own: shard, upstream, mask },
        taken: TakenStore::Sharded { base: sh.taken, visible, own: added },
        log,
        iv_a: sh.iv_a(),
        iv_b: sh.iv_b,
    };

    match pass {
        FUNCTIONS => {
            let mut st = sh.slots.functions.try_write().expect("functions slot");
            let (list, by_id, by_content, delta, keys) = &mut *st;
            passes::functions(
                &mut env,
                &mut FunctionsMut { list, by_id, by_content, delta_by_content: delta, keys },
                inc,
            );
        }
        UNITS => {
            let mut st = sh.slots.units.try_write().expect("units slot");
            let (list, by_id, by_content, keys) = &mut *st;
            passes::units(&mut env, &mut UnitsMut { list, by_id, by_content, keys }, inc);
        }
        COMPARTMENT_TYPES => {
            let mut st = sh.slots.compartment_types.try_write().expect("compartment types slot");
            let (list, by_id, by_name, delta) = &mut *st;
            passes::compartment_types(
                &mut env,
                &mut CompartmentTypesMut { list, by_id, by_name, delta_by_name: delta },
                inc,
            );
        }
        SPECIES_TYPES => {
            let mut st = sh.slots.species_types.try_write().expect("species types slot");
            let (list, by_id, by_name, delta) = &mut *st;
            passes::species_types(
                &mut env,
                &mut SpeciesTypesMut { list, by_id, by_name, delta_by_name: delta },
                inc,
            );
        }
        COMPARTMENTS => {
            let units = sh.slots.units.try_read().expect("units complete");
            let mut st = sh.slots.compartments.try_write().expect("compartments slot");
            let (list, by_id, by_name, delta) = &mut *st;
            passes::compartments(
                &mut env,
                &mut CompartmentsMut { list, by_id, by_name, delta_by_name: delta },
                &UnitsRead { list: &units.0, by_id: &units.1 },
                inc,
            );
        }
        SPECIES => {
            let units = sh.slots.units.try_read().expect("units complete");
            let comps = sh.slots.compartments.try_read().expect("compartments complete");
            let mut st = sh.slots.species.try_write().expect("species slot");
            let (list, by_id, by_name, delta) = &mut *st;
            passes::species(
                &mut env,
                &mut SpeciesMut { list, by_id, by_name, delta_by_name: delta },
                &UnitsRead { list: &units.0, by_id: &units.1 },
                &CompartmentsRead { list: &comps.0, by_id: &comps.1 },
                inc,
            );
        }
        PARAMETERS => {
            let units = sh.slots.units.try_read().expect("units complete");
            let mut st = sh.slots.parameters.try_write().expect("parameters slot");
            let (list, by_id) = &mut *st;
            passes::parameters(
                &mut env,
                &mut ParametersMut { list, by_id },
                &UnitsRead { list: &units.0, by_id: &units.1 },
                inc,
            );
        }
        INITIAL_ASSIGNMENTS => {
            let mut st = sh.slots.assignments.try_write().expect("assignments slot");
            let (list, by_symbol) = &mut *st;
            passes::initial_assignments(&mut env, &mut AssignmentsMut { list, by_symbol }, inc);
        }
        RULES => {
            let mut st = sh.slots.rules.try_write().expect("rules slot");
            let (list, by_content, by_variable, delta) = &mut *st;
            passes::rules(
                &mut env,
                &mut RulesMut { list, by_content, by_variable, delta_by_content: delta },
                inc,
            );
        }
        CONSTRAINTS => {
            let mut st = sh.slots.constraints.try_write().expect("constraints slot");
            let (list, by_content, delta) = &mut *st;
            passes::constraints(
                &mut env,
                &mut ConstraintsMut { list, by_content, delta_by_content: delta },
                inc,
            );
        }
        REACTIONS => {
            let units = sh.slots.units.try_read().expect("units complete");
            let mut st = sh.slots.reactions.try_write().expect("reactions slot");
            let (list, by_id, by_content, delta, keys) = &mut *st;
            passes::reactions(
                &mut env,
                &mut ReactionsMut { list, by_id, by_content, delta_by_content: delta, keys },
                &UnitsRead { list: &units.0, by_id: &units.1 },
                inc,
            );
        }
        EVENTS => {
            let mut st = sh.slots.events.try_write().expect("events slot");
            let (list, by_id, by_content, delta, keys) = &mut *st;
            passes::events(
                &mut env,
                &mut EventsMut { list, by_id, by_content, delta_by_content: delta, keys },
                inc,
            );
        }
        _ => unreachable!("twelve passes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_roots() {
        assert_eq!(family_root("k1"), "k1");
        assert_eq!(family_root("k_1"), "k");
        assert_eq!(family_root("k_1_2"), "k");
        assert_eq!(family_root("sp_001"), "sp");
        assert_eq!(family_root("x_"), "x_");
        assert_eq!(family_root("x__1"), "x_");
        assert_eq!(family_root("_1"), "");
        assert_eq!(family_root("glucose"), "glucose");
    }

    #[test]
    fn descending_mask_iteration() {
        let picked: Vec<usize> = desc(0b1000_0000_0101).collect();
        assert_eq!(picked, vec![11, 2, 0]);
    }
}
