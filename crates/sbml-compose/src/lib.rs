//! **SBMLCompose** — automated, unsupervised composition of SBML
//! biochemical network models.
//!
//! This crate is the primary contribution of the EDBT 2010 paper
//! *"Biochemical network matching and composition"* (Goodfellow, Wilson,
//! Hunt). It merges two models into one, matching components that denote the
//! same biological entity even when they differ in id, operand order or
//! units, with no user interaction and no database lookups:
//!
//! * the **Fig. 4 pipeline** ([`Composer::compose`]): function definitions →
//!   unit definitions → compartment types → species types → compartments →
//!   species → parameters → (initial assignments) → rules → constraints →
//!   reactions → events;
//! * the **Fig. 5 generic merge** per component kind: look up in the first
//!   model's index → duplicate (conflict-check, first wins, warning logged)
//!   / equal-under-matching (record ID mapping, "rename") / new (insert,
//!   renaming bare id clashes);
//! * **Fig. 7 math patterns** (via [`sbml_math::pattern`]) with the
//!   accumulated ID mappings applied, so `k1*A*B` in one model matches
//!   `B*kf*A` in the other once `k1 → kf` is established;
//! * **synonym tables** ([`bio_synonyms`]) for name matching;
//! * **Fig. 6 unit conversion** ([`sbml_units::convert`]) during conflict
//!   checking of rate constants and initial values;
//! * **initial-value collection** before merging (initial assignments are
//!   evaluated once, and the values consulted during conflict checks).
//!
//! # Quick start
//!
//! ```
//! use sbml_compose::{Composer, ComposeOptions};
//! use sbml_model::builder::ModelBuilder;
//!
//! let a = ModelBuilder::new("a")
//!     .compartment("cell", 1.0)
//!     .species("A", 10.0)
//!     .species("B", 0.0)
//!     .parameter("k1", 0.1)
//!     .reaction("r1", &["A"], &["B"], "k1*A")
//!     .build();
//! let b = ModelBuilder::new("b")
//!     .compartment("cell", 1.0)
//!     .species("B", 0.0)
//!     .species("C", 0.0)
//!     .parameter("k2", 0.05)
//!     .reaction("r2", &["B"], &["C"], "k2*B")
//!     .build();
//!
//! let result = Composer::new(ComposeOptions::default()).compose(&a, &b);
//! assert_eq!(result.model.species.len(), 3); // A, B, C — B shared
//! assert_eq!(result.model.reactions.len(), 2);
//! ```

pub mod composer;
pub mod decompose;
pub mod equality;
pub mod index;
pub mod initial_values;
pub mod log;
pub mod options;
pub mod rename;

pub use composer::{compose_many, ComposeResult, Composer};
pub use decompose::{extract_submodel, split_components};
pub use index::IndexKind;
pub use log::{EventKind, MergeEvent, MergeLog, MergeStats};
pub use options::{ComposeOptions, SemanticsLevel};
