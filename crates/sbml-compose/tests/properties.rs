//! Algebraic properties of composition, checked over randomly generated
//! models: idempotence (`a + a ≡ a`), identity (`a + ∅ ≡ a`), size
//! monotonicity, mapping soundness and output validity.

use proptest::prelude::*;
use sbml_compose::{ComposeOptions, Composer};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

/// A random small model: a chain/branch network over a shared species
/// alphabet so that pairs of generated models overlap.
fn model_strategy() -> impl Strategy<Value = Model> {
    (
        0usize..8,                                   // species count
        proptest::collection::vec((0usize..8, 0usize..8, 1u32..100), 0..8), // reactions
        0u64..1_000_000,                             // id salt
    )
        .prop_map(|(n_species, reactions, salt)| {
            let mut b = ModelBuilder::new(format!("gen_{salt}")).compartment("cell", 1.0);
            for i in 0..n_species {
                b = b.species(&format!("S{i}"), i as f64);
            }
            let mut used = std::collections::BTreeSet::new();
            for (idx, (from, to, k)) in reactions.into_iter().enumerate() {
                if n_species == 0 {
                    break;
                }
                let (from, to) = (from % n_species, to % n_species);
                if from == to || !used.insert((from, to)) {
                    continue;
                }
                let k_id = format!("k{from}_{to}");
                let (s_from, s_to) = (format!("S{from}"), format!("S{to}"));
                b = b
                    .parameter(&k_id, k as f64 / 100.0)
                    .reaction(
                        &format!("r{idx}_{from}_{to}"),
                        &[s_from.as_str()],
                        &[s_to.as_str()],
                        &format!("{k_id}*{s_from}"),
                    );
            }
            b.build()
        })
}

fn composer() -> Composer {
    Composer::new(ComposeOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn idempotence(a in model_strategy()) {
        // a + a has exactly a's components (paper Fig. 1).
        let r = composer().compose(&a, &a);
        prop_assert_eq!(r.model.species.len(), a.species.len());
        prop_assert_eq!(r.model.reactions.len(), a.reactions.len());
        prop_assert_eq!(r.model.parameters.len(), a.parameters.len());
        prop_assert_eq!(r.log.conflict_count(), 0, "self-merge can never conflict");
    }

    #[test]
    fn identity(a in model_strategy()) {
        let empty = Model::new("empty");
        let right = composer().compose(&a, &empty);
        prop_assert_eq!(&right.model, &a);
        let left = composer().compose(&empty, &a);
        prop_assert_eq!(&left.model, &a);
    }

    #[test]
    fn union_bounds(a in model_strategy(), b in model_strategy()) {
        // The composed model is at least as big as each input and at most
        // the sum (plus nothing: merging never invents components).
        let r = composer().compose(&a, &b);
        let n = r.model.species.len();
        prop_assert!(n >= a.species.len().max(b.species.len()) || b.species.is_empty() || a.is_empty());
        prop_assert!(n <= a.species.len() + b.species.len());
        let e = r.model.reactions.len();
        prop_assert!(e <= a.reactions.len() + b.reactions.len());
    }

    #[test]
    fn composed_model_is_valid(a in model_strategy(), b in model_strategy()) {
        let r = composer().compose(&a, &b);
        let issues = sbml_model::validate(&r.model);
        let errors: Vec<_> = issues
            .iter()
            .filter(|i| i.severity == sbml_model::Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "merge produced invalid SBML: {:?}\nlog:\n{}", errors, r.log.to_text());
    }

    #[test]
    fn mappings_point_into_the_composed_model(a in model_strategy(), b in model_strategy()) {
        let r = composer().compose(&a, &b);
        let ids = r.model.global_ids();
        for (from, to) in &r.mappings {
            prop_assert!(ids.contains(to), "mapping {from} -> {to} dangles");
        }
    }

    #[test]
    fn composition_is_associative_in_size(
        a in model_strategy(),
        b in model_strategy(),
        c in model_strategy()
    ) {
        // (a+b)+c and a+(b+c) need not be identical models (ids may differ),
        // but they must agree on network size.
        let cmp = composer();
        let ab_c = cmp.compose(&cmp.compose(&a, &b).model, &c).model;
        let a_bc = cmp.compose(&a, &cmp.compose(&b, &c).model).model;
        prop_assert_eq!(ab_c.species.len(), a_bc.species.len());
        prop_assert_eq!(ab_c.reactions.len(), a_bc.reactions.len());
    }

    #[test]
    fn round_trip_through_sbml_preserves_composition(a in model_strategy(), b in model_strategy()) {
        // compose(parse(write(a)), parse(write(b))) == compose(a, b)
        let direct = composer().compose(&a, &b).model;
        let a2 = sbml_model::parse_sbml(&sbml_model::write_sbml(&a)).unwrap();
        let b2 = sbml_model::parse_sbml(&sbml_model::write_sbml(&b)).unwrap();
        let via_xml = composer().compose(&a2, &b2).model;
        prop_assert_eq!(direct, via_xml);
    }
}

mod decompose_props {
    use super::*;
    
    use sbml_compose::{compose_many, split_components};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn split_partitions_species_and_reactions(m in model_strategy()) {
            let parts = split_components(&m);
            let total_species: usize = parts.iter().map(|p| p.species.len()).sum();
            let total_reactions: usize = parts.iter().map(|p| p.reactions.len()).sum();
            if m.species.is_empty() {
                prop_assert_eq!(parts.len(), 1);
            } else {
                prop_assert_eq!(total_species, m.species.len(), "species partitioned exactly");
                prop_assert_eq!(total_reactions, m.reactions.len(), "reactions partitioned exactly");
            }
        }

        #[test]
        fn split_parts_are_valid(m in model_strategy()) {
            for part in split_components(&m) {
                let errors: Vec<_> = sbml_model::validate(&part)
                    .into_iter()
                    .filter(|i| i.severity == sbml_model::Severity::Error)
                    .collect();
                prop_assert!(errors.is_empty(), "{}: {:?}", part.id, errors);
            }
        }

        #[test]
        fn compose_of_split_restores_network(m in model_strategy()) {
            // Round-trip law: species and reactions all come back.
            let parts = split_components(&m);
            let rebuilt = compose_many(&composer(), &parts);
            prop_assert_eq!(rebuilt.model.species.len(), m.species.len());
            prop_assert_eq!(rebuilt.model.reactions.len(), m.reactions.len());
        }

        #[test]
        fn zoom_is_monotone_in_radius(m in model_strategy(), radius in 0usize..4) {
            if let Some(seed) = m.species.first().map(|s| s.id.clone()) {
                let smaller = sbml_compose::extract_submodel(&m, &[&seed], radius);
                let larger = sbml_compose::extract_submodel(&m, &[&seed], radius + 1);
                prop_assert!(larger.species.len() >= smaller.species.len());
                prop_assert!(larger.reactions.len() >= smaller.reactions.len());
                // zoom never exceeds the whole model
                prop_assert!(larger.species.len() <= m.species.len());
            }
        }
    }
}
