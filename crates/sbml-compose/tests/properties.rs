//! Algebraic properties of composition, checked over randomly generated
//! models: idempotence (`a + a ≡ a`), identity (`a + ∅ ≡ a`), size
//! monotonicity, mapping soundness and output validity.

use proptest::prelude::*;
use sbml_compose::{ComposeOptions, Composer};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

/// A random small model: a chain/branch network over a shared species
/// alphabet so that pairs of generated models overlap.
fn model_strategy() -> impl Strategy<Value = Model> {
    (
        0usize..8,                                   // species count
        proptest::collection::vec((0usize..8, 0usize..8, 1u32..100), 0..8), // reactions
        0u64..1_000_000,                             // id salt
    )
        .prop_map(|(n_species, reactions, salt)| {
            let mut b = ModelBuilder::new(format!("gen_{salt}")).compartment("cell", 1.0);
            for i in 0..n_species {
                b = b.species(&format!("S{i}"), i as f64);
            }
            let mut used = std::collections::BTreeSet::new();
            for (idx, (from, to, k)) in reactions.into_iter().enumerate() {
                if n_species == 0 {
                    break;
                }
                let (from, to) = (from % n_species, to % n_species);
                if from == to || !used.insert((from, to)) {
                    continue;
                }
                let k_id = format!("k{from}_{to}");
                let (s_from, s_to) = (format!("S{from}"), format!("S{to}"));
                b = b
                    .parameter(&k_id, k as f64 / 100.0)
                    .reaction(
                        &format!("r{idx}_{from}_{to}"),
                        &[s_from.as_str()],
                        &[s_to.as_str()],
                        &format!("{k_id}*{s_from}"),
                    );
            }
            b.build()
        })
}

fn composer() -> Composer {
    Composer::new(ComposeOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn idempotence(a in model_strategy()) {
        // a + a has exactly a's components (paper Fig. 1).
        let r = composer().compose(&a, &a);
        prop_assert_eq!(r.model.species.len(), a.species.len());
        prop_assert_eq!(r.model.reactions.len(), a.reactions.len());
        prop_assert_eq!(r.model.parameters.len(), a.parameters.len());
        prop_assert_eq!(r.log.conflict_count(), 0, "self-merge can never conflict");
    }

    #[test]
    fn identity(a in model_strategy()) {
        let empty = Model::new("empty");
        let right = composer().compose(&a, &empty);
        prop_assert_eq!(&right.model, &a);
        let left = composer().compose(&empty, &a);
        prop_assert_eq!(&left.model, &a);
    }

    #[test]
    fn union_bounds(a in model_strategy(), b in model_strategy()) {
        // The composed model is at least as big as each input and at most
        // the sum (plus nothing: merging never invents components).
        let r = composer().compose(&a, &b);
        let n = r.model.species.len();
        prop_assert!(n >= a.species.len().max(b.species.len()) || b.species.is_empty() || a.is_empty());
        prop_assert!(n <= a.species.len() + b.species.len());
        let e = r.model.reactions.len();
        prop_assert!(e <= a.reactions.len() + b.reactions.len());
    }

    #[test]
    fn composed_model_is_valid(a in model_strategy(), b in model_strategy()) {
        let r = composer().compose(&a, &b);
        let issues = sbml_model::validate(&r.model);
        let errors: Vec<_> = issues
            .iter()
            .filter(|i| i.severity == sbml_model::Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "merge produced invalid SBML: {:?}\nlog:\n{}", errors, r.log.to_text());
    }

    #[test]
    fn mappings_point_into_the_composed_model(a in model_strategy(), b in model_strategy()) {
        let r = composer().compose(&a, &b);
        let ids = r.model.global_ids();
        for (from, to) in &r.mappings {
            prop_assert!(ids.contains(to), "mapping {from} -> {to} dangles");
        }
    }

    #[test]
    fn composition_is_associative_in_size(
        a in model_strategy(),
        b in model_strategy(),
        c in model_strategy()
    ) {
        // (a+b)+c and a+(b+c) need not be identical models (ids may differ),
        // but they must agree on network size.
        let cmp = composer();
        let ab_c = cmp.compose(&cmp.compose(&a, &b).model, &c).model;
        let a_bc = cmp.compose(&a, &cmp.compose(&b, &c).model).model;
        prop_assert_eq!(ab_c.species.len(), a_bc.species.len());
        prop_assert_eq!(ab_c.reactions.len(), a_bc.reactions.len());
    }

    #[test]
    fn round_trip_through_sbml_preserves_composition(a in model_strategy(), b in model_strategy()) {
        // compose(parse(write(a)), parse(write(b))) == compose(a, b)
        let direct = composer().compose(&a, &b).model;
        let a2 = sbml_model::parse_sbml(&sbml_model::write_sbml(&a)).unwrap();
        let b2 = sbml_model::parse_sbml(&sbml_model::write_sbml(&b)).unwrap();
        let via_xml = composer().compose(&a2, &b2).model;
        prop_assert_eq!(direct, via_xml);
    }
}

mod decompose_props {
    use super::*;
    
    use sbml_compose::{compose_many, split_components};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn split_partitions_species_and_reactions(m in model_strategy()) {
            let parts = split_components(&m);
            let total_species: usize = parts.iter().map(|p| p.species.len()).sum();
            let total_reactions: usize = parts.iter().map(|p| p.reactions.len()).sum();
            if m.species.is_empty() {
                prop_assert_eq!(parts.len(), 1);
            } else {
                prop_assert_eq!(total_species, m.species.len(), "species partitioned exactly");
                prop_assert_eq!(total_reactions, m.reactions.len(), "reactions partitioned exactly");
            }
        }

        #[test]
        fn split_parts_are_valid(m in model_strategy()) {
            for part in split_components(&m) {
                let errors: Vec<_> = sbml_model::validate(&part)
                    .into_iter()
                    .filter(|i| i.severity == sbml_model::Severity::Error)
                    .collect();
                prop_assert!(errors.is_empty(), "{}: {:?}", part.id, errors);
            }
        }

        #[test]
        fn compose_of_split_restores_network(m in model_strategy()) {
            // Round-trip law: species and reactions all come back.
            let parts = split_components(&m);
            let rebuilt = compose_many(&composer(), &parts);
            prop_assert_eq!(rebuilt.model.species.len(), m.species.len());
            prop_assert_eq!(rebuilt.model.reactions.len(), m.reactions.len());
        }

        #[test]
        fn zoom_is_monotone_in_radius(m in model_strategy(), radius in 0usize..4) {
            if let Some(seed) = m.species.first().map(|s| s.id.clone()) {
                let smaller = sbml_compose::extract_submodel(&m, &[&seed], radius);
                let larger = sbml_compose::extract_submodel(&m, &[&seed], radius + 1);
                prop_assert!(larger.species.len() >= smaller.species.len());
                prop_assert!(larger.reactions.len() >= smaller.reactions.len());
                // zoom never exceeds the whole model
                prop_assert!(larger.species.len() <= m.species.len());
            }
        }
    }
}

mod session_props {
    use super::*;

    use sbml_compose::{
        compose_many, compose_many_owned, compose_many_pairwise, ComposeResult,
        CompositionSession,
    };

    /// The seed implementation of chain composition (left fold of pairwise
    /// `compose`, re-exported by the crate as the single reference
    /// baseline). `CompositionSession` must be indistinguishable from it.
    fn fold_pairwise(models: &[Model]) -> ComposeResult {
        compose_many_pairwise(&composer(), models)
    }

    /// A model exercising *every* component kind the Fig. 4 pipeline
    /// merges — function definitions, unit definitions, compartment and
    /// species types, initial assignments, rules, constraints and events
    /// on top of `model_strategy`'s species/parameters/reactions — drawn
    /// from small overlapping pools so chained models collide in all the
    /// interesting ways (duplicates, content hits, id-clash renames).
    pub(crate) fn rich_model_strategy() -> impl Strategy<Value = Model> {
        (
            model_strategy(),
            proptest::collection::vec((0usize..3, 0usize..2), 0..3), // functions
            proptest::collection::vec(0usize..3, 0..2),              // unit definitions
            proptest::collection::vec(0usize..3, 0..2),              // compartment types
            proptest::collection::vec(0usize..4, 0..2),              // species types
            proptest::collection::vec((0usize..6, 1u32..20), 0..2),  // initial assignments
            proptest::collection::vec((0usize..6, 0usize..2), 0..3), // rules
            proptest::collection::vec(0usize..6, 0..2),              // constraints
            proptest::collection::vec((0usize..3, 0usize..6), 0..2), // events
        )
            .prop_map(|(mut m, fns, units, ctypes, stypes, ias, rules, cons, events)| {
                use sbml_math::infix;
                use sbml_model::{Event, EventAssignment, FunctionDefinition, Rule};
                use sbml_units::{Unit, UnitKind};

                for (idx, variant) in fns {
                    let body = if variant == 0 { "x*2" } else { "x+1" };
                    m.function_definitions.push(FunctionDefinition::new(
                        format!("fn{idx}"),
                        vec!["x".into()],
                        infix::parse(body).unwrap(),
                    ));
                }
                for idx in units {
                    let unit = match idx {
                        0 => Unit::of(UnitKind::Litre),
                        1 => Unit::of(UnitKind::Mole),
                        _ => Unit::of(UnitKind::Second).pow(-1),
                    };
                    m.unit_definitions
                        .push(sbml_units::UnitDefinition::new(format!("u{idx}"), vec![unit]));
                }
                for idx in ctypes {
                    // `ct1` deliberately collides with nothing, `ct0` with a
                    // species-type id below — exercising cross-kind renames.
                    m.compartment_types.push(sbml_model::CompartmentType {
                        id: format!("ct{idx}"),
                        name: (idx == 0).then(|| "membrane".to_owned()),
                    });
                }
                for idx in stypes {
                    m.species_types.push(sbml_model::SpeciesType {
                        id: if idx == 3 { "ct0".to_owned() } else { format!("st{idx}") },
                        name: (idx == 1).then(|| "protein".to_owned()),
                    });
                }
                for (idx, value) in ias {
                    m.initial_assignments.push(sbml_model::InitialAssignment {
                        symbol: format!("S{}", idx % 8),
                        math: infix::parse(&format!("{value} / 2")).unwrap(),
                    });
                }
                for (idx, kind) in rules {
                    let math = infix::parse(&format!("S{} * 3", (idx + 1) % 8)).unwrap();
                    m.rules.push(if kind == 0 {
                        Rule::Rate { variable: format!("S{}", idx % 8), math }
                    } else {
                        Rule::Algebraic { math }
                    });
                }
                for idx in cons {
                    m.constraints.push(sbml_model::rule::Constraint {
                        math: infix::parse(&format!("S{idx} >= 0")).unwrap(),
                        message: None,
                    });
                }
                for (salt, target) in events {
                    let mut ev = Event::new(infix::parse(&format!("time >= {salt}")).unwrap());
                    // Anonymous every other time, to exercise both the
                    // by-id and by-content event paths.
                    if salt % 2 == 0 {
                        ev.id = Some(format!("ev{salt}"));
                    }
                    ev.assignments.push(EventAssignment {
                        variable: format!("S{}", target % 8),
                        math: infix::parse("0").unwrap(),
                    });
                    m.events.push(ev);
                }
                m
            })
    }

    fn run_session(models: &[Model]) -> ComposeResult {
        let options = ComposeOptions::default();
        let mut session = CompositionSession::new(&options);
        for m in models {
            session.push(m);
        }
        session.finish()
    }

    /// Model, merge-log event sequence (hence multiset) and mappings must
    /// all be identical between the two engines.
    fn assert_equivalent(models: &[Model]) -> Result<(), TestCaseError> {
        let folded = fold_pairwise(models);
        let chained = run_session(models);
        prop_assert_eq!(&chained.model, &folded.model);
        prop_assert_eq!(&chained.log.events, &folded.log.events);
        prop_assert_eq!(&chained.mappings, &folded.mappings);

        // compose_many / compose_many_owned ride the same session path.
        let many = compose_many(&composer(), models);
        prop_assert_eq!(&many.model, &folded.model);
        let owned = compose_many_owned(&composer(), models.to_vec());
        prop_assert_eq!(&owned.model, &folded.model);
        prop_assert_eq!(&owned.log.events, &folded.log.events);
        prop_assert_eq!(&owned.mappings, &folded.mappings);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn session_equals_pairwise_fold(
            models in proptest::collection::vec(model_strategy(), 0..6)
        ) {
            assert_equivalent(&models)?;
        }

        #[test]
        fn session_equals_fold_on_self_merge_chains(
            m in model_strategy(),
            repeats in 1usize..6
        ) {
            let chain: Vec<Model> = std::iter::repeat_with(|| m.clone()).take(repeats).collect();
            assert_equivalent(&chain)?;
        }

        #[test]
        fn session_equals_fold_with_empty_models(
            models in proptest::collection::vec(model_strategy(), 1..5),
            empty_at in 0usize..5
        ) {
            // Splice an empty model somewhere in the chain (including the
            // front, where it must surrender the base slot).
            let mut chain = models;
            let at = empty_at % (chain.len() + 1);
            chain.insert(at, Model::new("hole"));
            assert_equivalent(&chain)?;
        }

        #[test]
        fn session_equals_fold_under_every_semantics(
            models in proptest::collection::vec(rich_model_strategy(), 0..4)
        ) {
            for options in [
                ComposeOptions::heavy(),
                ComposeOptions::light(),
                ComposeOptions::none(),
                ComposeOptions::default().with_pattern_cache(false),
                ComposeOptions::default().with_content_key_cache(false),
            ] {
                let cmp = Composer::new(options.clone());
                let folded = compose_many_pairwise(&cmp, &models);
                let mut session = CompositionSession::new(&options);
                for m in &models {
                    session.push(m);
                }
                let chained = session.finish();
                prop_assert_eq!(&chained.model, &folded.model);
                prop_assert_eq!(&chained.log.events, &folded.log.events);
                prop_assert_eq!(&chained.mappings, &folded.mappings);
            }
        }

        #[test]
        fn session_equals_fold_on_all_component_kinds(
            models in proptest::collection::vec(rich_model_strategy(), 0..5)
        ) {
            // Chains over models carrying every Fig. 4 component kind —
            // the delta-index and key-cache machinery for functions,
            // units, types, assignments, rules, constraints and events
            // must match the pairwise fold exactly.
            assert_equivalent(&models)?;
        }

        #[test]
        fn session_equals_fold_on_rich_self_merge(m in rich_model_strategy(), repeats in 1usize..5) {
            let chain: Vec<Model> = std::iter::repeat_with(|| m.clone()).take(repeats).collect();
            assert_equivalent(&chain)?;
        }
    }
}

mod incremental_value_props {
    use super::*;

    use sbml_compose::initial_values::collect;
    use sbml_compose::{compose_many_pairwise, CompositionSession, PreparedModel};

    use crate::session_props::rich_model_strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The satellite invariant: a session interleaving `push` and
        /// `push_prepared` over models whose initial assignments collide
        /// (the rich strategy assigns into the shared S0..S7 alphabet)
        /// reports values identical to a fresh full `collect` over the
        /// accumulator after EVERY push — with the incremental store on,
        /// off, and under every semantics level.
        #[test]
        fn interleaved_push_values_equal_fresh_collect_after_every_push(
            models in proptest::collection::vec(rich_model_strategy(), 1..5),
            prepared_mask in 0u32..32
        ) {
            for options in [
                ComposeOptions::heavy(),
                ComposeOptions::light(),
                ComposeOptions::none(),
                ComposeOptions::default().with_incremental_initial_values(false),
                ComposeOptions::default().with_parallel_push_threshold(0),
            ] {
                let mut session = CompositionSession::new(&options);
                for (i, m) in models.iter().enumerate() {
                    if prepared_mask & (1 << (i % 32)) != 0 {
                        session.push_prepared(&PreparedModel::new(m, &options));
                    } else {
                        session.push(m);
                    }
                    prop_assert_eq!(
                        session.current_initial_values(),
                        collect(session.model()),
                        "push {} under {:?}", i, options.semantics
                    );
                }
            }
        }

        /// The incremental-store and parallel-key ablations are
        /// output-invisible: every combination equals the re-collect,
        /// never-parallel session AND the pairwise fold, per semantics
        /// level.
        #[test]
        fn incremental_and_parallel_knobs_never_change_output(
            models in proptest::collection::vec(rich_model_strategy(), 0..5)
        ) {
            for base in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()] {
                let reference_options = base
                    .clone()
                    .with_incremental_initial_values(false)
                    .with_parallel_push_threshold(usize::MAX);
                let folded =
                    compose_many_pairwise(&Composer::new(reference_options.clone()), &models);
                for options in [
                    base.clone(),
                    base.clone().with_parallel_push_threshold(0),
                    base.clone().with_incremental_initial_values(false),
                    base.clone()
                        .with_initial_values(false)
                        .with_parallel_push_threshold(0),
                ] {
                    let collects_values = options.collect_initial_values;
                    let mut session = CompositionSession::new(&options);
                    for m in &models {
                        session.push(m);
                    }
                    let chained = session.finish();
                    if collects_values {
                        prop_assert_eq!(&chained.model, &folded.model);
                        prop_assert_eq!(&chained.log.events, &folded.log.events);
                        prop_assert_eq!(&chained.mappings, &folded.mappings);
                    } else {
                        // Without value evaluation the merge decisions may
                        // legitimately differ from the reference; compare
                        // against the same options' own pairwise fold
                        // instead.
                        let no_iv_folded =
                            compose_many_pairwise(&Composer::new(options.clone()), &models);
                        prop_assert_eq!(&chained.model, &no_iv_folded.model);
                        prop_assert_eq!(&chained.log.events, &no_iv_folded.log.events);
                        prop_assert_eq!(&chained.mappings, &no_iv_folded.mappings);
                    }
                }
            }
        }

        /// The merge-pass pipeline and the incremental cached-key rename
        /// are output-invisible: for every semantics level, pipelined
        /// sessions (any worker count, raw and prepared pushes) and the
        /// full-recompute ablation all produce the model, log event
        /// sequence and mappings of the serial pass order.
        #[test]
        fn merge_pipeline_and_key_rename_never_change_output(
            models in proptest::collection::vec(rich_model_strategy(), 0..4),
            threads in 1usize..5,
        ) {
            use sbml_compose::PreparedModel;
            for base in [ComposeOptions::heavy(), ComposeOptions::light(), ComposeOptions::none()] {
                // Serial reference: pipeline off, keys still precomputed
                // (threshold 0) so the cached-key paths are exercised.
                let reference = base
                    .clone()
                    .with_merge_pipeline(false)
                    .with_parallel_push_threshold(0);
                let mut serial = CompositionSession::new(&reference);
                for m in &models {
                    serial.push(m);
                }
                let serial = serial.finish();

                for options in [
                    base.clone().with_parallel_push_threshold(0).with_pipeline_threads(threads),
                    base.clone()
                        .with_parallel_push_threshold(0)
                        .with_pipeline_threads(threads)
                        .with_incremental_key_rename(false),
                    base.clone()
                        .with_merge_pipeline(false)
                        .with_parallel_push_threshold(0)
                        .with_incremental_key_rename(false),
                ] {
                    let mut session = CompositionSession::new(&options);
                    for m in &models {
                        session.push(m);
                    }
                    let out = session.finish();
                    prop_assert_eq!(&out.model, &serial.model, "threads={}", threads);
                    prop_assert_eq!(&out.log.events, &serial.log.events, "threads={}", threads);
                    prop_assert_eq!(&out.mappings, &serial.mappings, "threads={}", threads);
                }

                // Prepared pushes ride the pipeline too — and a prepared
                // model built under the serial options must be accepted by
                // the pipelined session (pipeline knobs are fingerprint-
                // neutral).
                let pipelined =
                    base.clone().with_parallel_push_threshold(0).with_pipeline_threads(threads);
                let mut session = CompositionSession::new(&pipelined);
                for m in &models {
                    session.push_prepared(&PreparedModel::new(m, &reference));
                }
                let out = session.finish();
                prop_assert_eq!(&out.model, &serial.model);
                prop_assert_eq!(&out.log.events, &serial.log.events);
                prop_assert_eq!(&out.mappings, &serial.mappings);
            }
        }
    }
}

mod prepared_props {
    use super::*;
    use std::sync::Arc;

    use sbml_compose::{
        compose_many_pairwise, compose_many_prepared, BatchComposer, CompositionSession,
        PreparedModel,
    };

    use crate::session_props::rich_model_strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `compose_prepared` is indistinguishable from raw `compose` —
        /// model, log event sequence and mappings — for every semantics
        /// level and cache ablation.
        #[test]
        fn compose_prepared_equals_compose(
            a in rich_model_strategy(),
            b in rich_model_strategy()
        ) {
            for options in [
                ComposeOptions::heavy(),
                ComposeOptions::light(),
                ComposeOptions::none(),
                ComposeOptions::default().with_pattern_cache(false),
                ComposeOptions::default().with_content_key_cache(false),
                ComposeOptions::default().with_initial_values(false),
                ComposeOptions::default().with_index(sbml_compose::IndexKind::BTree),
                ComposeOptions::default().with_index(sbml_compose::IndexKind::LinearScan),
            ] {
                let cmp = Composer::new(options);
                let raw = cmp.compose(&a, &b);
                let prepared = cmp.compose_prepared(&cmp.prepare(&a), &cmp.prepare(&b));
                prop_assert_eq!(&prepared.model, &raw.model);
                prop_assert_eq!(&prepared.log.events, &raw.log.events);
                prop_assert_eq!(&prepared.mappings, &raw.mappings);
            }
        }

        /// A chain of `push_prepared` calls equals the pairwise fold of
        /// raw `compose`, including empty models anywhere in the chain.
        #[test]
        fn prepared_chain_equals_pairwise_fold(
            models in proptest::collection::vec(rich_model_strategy(), 0..5),
            empty_at in 0usize..6
        ) {
            let mut chain = models;
            let at = empty_at % (chain.len() + 1);
            chain.insert(at, Model::new("hole"));

            let options = ComposeOptions::default();
            let cmp = Composer::new(options.clone());
            let folded = compose_many_pairwise(&cmp, &chain);

            let prepared: Vec<PreparedModel> = chain.iter().map(|m| cmp.prepare(m)).collect();
            let mut session = CompositionSession::new(&options);
            for p in &prepared {
                session.push_prepared(p);
            }
            let chained = session.finish();
            prop_assert_eq!(&chained.model, &folded.model);
            prop_assert_eq!(&chained.log.events, &folded.log.events);
            prop_assert_eq!(&chained.mappings, &folded.mappings);

            let many = compose_many_prepared(&cmp, &prepared);
            prop_assert_eq!(&many.model, &folded.model);
            prop_assert_eq!(&many.log.events, &folded.log.events);
            prop_assert_eq!(&many.mappings, &folded.mappings);
        }

        /// One `Arc`-shared preparation serves many pairs (both as base
        /// and as incoming side) without drifting from the raw path.
        #[test]
        fn shared_preparation_reused_across_pairs(
            hub in rich_model_strategy(),
            spokes in proptest::collection::vec(rich_model_strategy(), 1..4)
        ) {
            let cmp = Composer::default();
            let hub_prepared = Arc::new(cmp.prepare(&hub));
            for spoke in &spokes {
                let spoke_prepared = cmp.prepare(spoke);
                let forward = cmp.compose_prepared(&hub_prepared, &spoke_prepared);
                let forward_raw = cmp.compose(&hub, spoke);
                prop_assert_eq!(&forward.model, &forward_raw.model);
                prop_assert_eq!(&forward.log.events, &forward_raw.log.events);
                prop_assert_eq!(&forward.mappings, &forward_raw.mappings);

                let backward = cmp.compose_prepared(&spoke_prepared, &hub_prepared);
                let backward_raw = cmp.compose(spoke, &hub);
                prop_assert_eq!(&backward.model, &backward_raw.model);
                prop_assert_eq!(&backward.log.events, &backward_raw.log.events);
                prop_assert_eq!(&backward.mappings, &backward_raw.mappings);
            }
        }

        /// The batch all-pairs grid equals the raw per-pair path, whatever
        /// the worker-thread count.
        #[test]
        fn batch_all_pairs_equals_raw_pairs(
            models in proptest::collection::vec(rich_model_strategy(), 2..5),
            threads in 1usize..4
        ) {
            let cmp = Composer::default();
            let batch = BatchComposer::new(cmp.clone()).with_threads(threads);
            let prepared = batch.prepare_corpus(&models);
            let batched = batch.all_pairs_with(&prepared, |i, j, result| (i, j, result));
            let mut expected_index = 0usize;
            for i in 0..models.len() {
                for j in i + 1..models.len() {
                    let (bi, bj, result) = &batched[expected_index];
                    prop_assert_eq!((*bi, *bj), (i, j), "pair order must be deterministic");
                    let raw = cmp.compose(&models[i], &models[j]);
                    prop_assert_eq!(&result.model, &raw.model);
                    prop_assert_eq!(&result.log.events, &raw.log.events);
                    prop_assert_eq!(&result.mappings, &raw.mappings);
                    expected_index += 1;
                }
            }
            prop_assert_eq!(batched.len(), expected_index);
        }
    }
}
