//! End-to-end merge semantics: the paper's Figures 1–3, synonym matching,
//! Fig. 7 math-pattern matching, the parameter policy, conflict handling
//! and Fig. 6 unit reconciliation.

use sbml_compose::{compose_many, ComposeOptions, Composer, EventKind};
use sbml_model::builder::ModelBuilder;
use sbml_model::Model;

fn fig1a() -> Model {
    // A -> B <-> C with k1, k2, k3.
    ModelBuilder::new("fig1a")
        .compartment("cell", 1.0)
        .species("A", 10.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.05)
        .parameter("k3", 0.02)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .build()
}

fn heavy() -> Composer {
    Composer::new(ComposeOptions::default())
}

#[test]
fn fig1_merging_identical_models_yields_the_same_model() {
    let a = fig1a();
    let result = heavy().compose(&a, &a);
    let m = &result.model;
    assert_eq!(m.species.len(), 3, "a + a = a (paper Fig. 1)");
    assert_eq!(m.reactions.len(), 3);
    assert_eq!(m.parameters.len(), 3);
    assert_eq!(m.compartments.len(), 1);
    assert_eq!(result.log.conflict_count(), 0);
    // every component was recognised as a duplicate
    assert!(result.log.of_kind(EventKind::Duplicate).count() >= 7);
}

#[test]
fn fig2_merging_disjoint_models_concatenates() {
    let ab = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.2)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .build();
    let de = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species("D", 1.0)
        .species("E", 0.0)
        .parameter("k3", 0.3)
        .reaction("r3", &["D"], &["E"], "k3*D")
        .build();
    let result = heavy().compose(&ab, &de);
    let m = &result.model;
    assert_eq!(m.species.len(), 5, "A,B,C + D,E (paper Fig. 2)");
    assert_eq!(m.reactions.len(), 3);
    assert_eq!(m.parameters.len(), 3);
    assert_eq!(m.compartments.len(), 1, "shared compartment merges");
    assert_eq!(result.log.conflict_count(), 0);
}

#[test]
fn fig3_merging_overlapping_models_shares_the_common_part() {
    // Model 1: A -> B <-> C -> D; Model 2: A -> B -> C.
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .species("D", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.2)
        .parameter("k3", 0.3)
        .parameter("k4", 0.4)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .reaction("r3", &["C"], &["B"], "k3*C")
        .reaction("r4", &["C"], &["D"], "k4*C")
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 0.0)
        .species("C", 0.0)
        .parameter("k1", 0.1)
        .parameter("k2", 0.2)
        .reaction("r1", &["A"], &["B"], "k1*A")
        .reaction("r2", &["B"], &["C"], "k2*B")
        .build();
    let result = heavy().compose(&m1, &m2);
    let m = &result.model;
    assert_eq!(m.species.len(), 4, "a + b = a (paper Fig. 3)");
    assert_eq!(m.reactions.len(), 4);
    assert_eq!(m.parameters.len(), 4);
    assert_eq!(result.log.conflict_count(), 0);
}

#[test]
fn synonymous_species_merge_across_models() {
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 5.0)
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species_named("sugar", "dextrose", 5.0)
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.species.len(), 1, "glucose == dextrose by synonym table");
    assert_eq!(result.mappings.get("sugar").map(String::as_str), Some("glc"));
    assert_eq!(result.log.of_kind(EventKind::Mapped).count(), 1);
}

#[test]
fn synonym_mapping_rewrites_reaction_references() {
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 5.0)
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species_named("sugar", "dextrose", 5.0)
        .species("P", 0.0)
        .parameter("k", 1.0)
        .reaction("consume", &["sugar"], &["P"], "k*sugar")
        .build();
    let result = heavy().compose(&m1, &m2);
    let r = result.model.reaction_by_id("consume").unwrap();
    assert_eq!(r.reactants[0].species, "glc", "species reference follows the mapping");
    let law = r.kinetic_law.as_ref().unwrap();
    assert!(
        sbml_math::writer::to_infix(&law.math).contains("glc"),
        "kinetic law rewritten through the mapping"
    );
}

#[test]
fn commutative_kinetic_laws_match_fig7() {
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 1.0)
        .species("C", 0.0)
        .parameter("k1", 1.0)
        .reaction("forward", &["A", "B"], &["C"], "k1*A*B")
        .build();
    let mut m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species("A", 1.0)
        .species("B", 1.0)
        .species("C", 0.0)
        .parameter("k1", 1.0)
        .reaction("fwd2", &["B", "A"], &["C"], "B*k1*A")
        .build();
    m2.reactions[0].id = "different_id".into();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(
        result.model.reactions.len(),
        1,
        "operand order must not prevent matching (paper Fig. 7)"
    );
    assert_eq!(result.mappings.get("different_id").map(String::as_str), Some("forward"));

    // Under light semantics the same pair does NOT match.
    let light = Composer::new(ComposeOptions::light());
    let result = light.compose(&m1, &m2);
    assert_eq!(result.model.reactions.len(), 2, "light semantics keeps both");
}

#[test]
fn parameters_with_same_id_and_value_deduplicate() {
    let m1 = ModelBuilder::new("m1").compartment("c", 1.0).parameter("k", 2.0).build();
    let m2 = ModelBuilder::new("m2").compartment("c", 1.0).parameter("k", 2.0).build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.parameters.len(), 1);
}

#[test]
fn conflicting_parameters_are_both_kept_and_renamed() {
    let m1 = ModelBuilder::new("m1").compartment("c", 1.0).parameter("k", 2.0).build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("X", 1.0)
        .parameter("k", 9.0)
        .reaction("r", &["X"], &[], "k*X")
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.parameters.len(), 2, "paper §3: all parameters kept");
    assert!(result.model.parameter_by_id("k").is_some());
    assert!(result.model.parameter_by_id("k_1").is_some());
    assert_eq!(result.model.parameter_by_id("k_1").unwrap().value, Some(9.0));
    // The incoming reaction must now reference the renamed parameter.
    let law = result.model.reaction_by_id("r").unwrap().kinetic_law.as_ref().unwrap();
    assert_eq!(sbml_math::writer::to_infix(&law.math), "k_1 * X");
    assert!(result.log.conflict_count() >= 1);
}

#[test]
fn species_conflict_first_model_wins_with_warning() {
    let m1 = ModelBuilder::new("m1").compartment("c", 1.0).species("A", 10.0).build();
    let m2 = ModelBuilder::new("m2").compartment("c", 1.0).species("A", 99.0).build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.species.len(), 1);
    assert_eq!(result.model.species_by_id("A").unwrap().initial_amount, Some(10.0));
    assert_eq!(result.log.conflict_count(), 1);
    let text = result.log.to_text();
    assert!(text.contains("first model wins"), "{text}");
}

#[test]
fn unit_definitions_merge_by_signature() {
    use sbml_units::{Unit, UnitDefinition, UnitKind};
    let m1 = ModelBuilder::new("m1")
        .unit_definition(UnitDefinition::new("vol_l", vec![Unit::of(UnitKind::Litre)]))
        .build();
    // 0.001 m³ == 1 litre: must be recognised as the same unit.
    let m2 = ModelBuilder::new("m2")
        .unit_definition(UnitDefinition::new(
            "vol_m3",
            vec![Unit::of(UnitKind::Metre).pow(3).times(0.1)],
        ))
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.unit_definitions.len(), 1);
    assert_eq!(result.mappings.get("vol_m3").map(String::as_str), Some("vol_l"));
}

#[test]
fn initial_assignments_merge_by_value() {
    // Different maths, same evaluated value — semanticSBML cannot decide
    // this automatically; SBMLCompose evaluates (paper §2 criticism).
    let m1 = ModelBuilder::new("m1")
        .compartment("c", 1.0)
        .species("A", 0.0)
        .parameter("k", 2.0)
        .initial_assignment("A", "k + k")
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("A", 0.0)
        .parameter("k", 2.0)
        .initial_assignment("A", "2 * k")
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.initial_assignments.len(), 1);
    assert_eq!(result.log.conflict_count(), 0, "{}", result.log.to_text());
}

#[test]
fn conflicting_initial_assignments_first_wins() {
    let m1 = ModelBuilder::new("m1")
        .compartment("c", 1.0)
        .species("A", 0.0)
        .parameter("k", 2.0)
        .initial_assignment("A", "k")
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("A", 0.0)
        .parameter("k", 2.0)
        .initial_assignment("A", "k * 10")
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.initial_assignments.len(), 1);
    assert_eq!(result.log.conflict_count(), 1);
    assert_eq!(
        sbml_math::writer::to_infix(&result.model.initial_assignments[0].math),
        "k",
        "first model wins"
    );
}

#[test]
fn function_definitions_alpha_equivalent_map() {
    let m1 = ModelBuilder::new("m1").function("mm", &["S", "V", "K"], "V*S/(K+S)").build();
    let m2 = ModelBuilder::new("m2").function("mk", &["x", "vm", "km"], "vm*x/(km+x)").build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.function_definitions.len(), 1);
    assert_eq!(result.mappings.get("mk").map(String::as_str), Some("mm"));
}

#[test]
fn rules_and_constraints_deduplicate() {
    let m1 = ModelBuilder::new("m1")
        .compartment("c", 1.0)
        .species("A", 1.0)
        .species("B", 1.0)
        .assignment_rule("B", "A * 2")
        .constraint("A >= 0", None)
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("A", 1.0)
        .species("B", 1.0)
        .assignment_rule("B", "2 * A")
        .constraint("A >= 0", Some("different message, same maths"))
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.rules.len(), 1, "commutative rule maths matches");
    assert_eq!(result.model.constraints.len(), 1);
}

#[test]
fn conflicting_rule_for_same_variable_first_wins() {
    let m1 = ModelBuilder::new("m1")
        .compartment("c", 1.0)
        .species("B", 1.0)
        .assignment_rule("B", "1")
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("B", 1.0)
        .assignment_rule("B", "2")
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.rules.len(), 1);
    assert_eq!(result.log.conflict_count(), 1);
}

#[test]
fn events_merge_by_behaviour() {
    let m1 = ModelBuilder::new("m1")
        .compartment("c", 1.0)
        .species("A", 1.0)
        .event("spike", "time >= 10", &[("A", "A + 5")])
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("A", 1.0)
        .event("boost", "time >= 10", &[("A", "5 + A")])
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.events.len(), 1, "same trigger and effect");
    assert_eq!(result.mappings.get("boost").map(String::as_str), Some("spike"));
}

#[test]
fn id_clash_between_kinds_renames() {
    // "A" is a species in m1 but a parameter in m2 — unrelated entities.
    let m1 = ModelBuilder::new("m1").compartment("c", 1.0).species("A", 1.0).build();
    let m2 = ModelBuilder::new("m2")
        .compartment("c", 1.0)
        .species("X", 1.0)
        .parameter("A", 3.0)
        .reaction("r", &["X"], &[], "A*X")
        .build();
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.species.len(), 2);
    assert_eq!(result.model.parameters.len(), 1);
    let p = &result.model.parameters[0];
    assert_eq!(p.id, "A_1", "parameter renamed away from the species id");
    let law = result.model.reaction_by_id("r").unwrap().kinetic_law.as_ref().unwrap();
    assert_eq!(sbml_math::writer::to_infix(&law.math), "A_1 * X");
}

#[test]
fn fig6_rate_constant_unit_reconciliation() {
    use sbml_model::{KineticLaw, Parameter, Reaction, SpeciesReference};
    // Same second-order reaction; one model's local k is deterministic
    // (per M per s), the other's stochastic (per molecule): c = k/(nA·V).
    let volume = 1e-15;
    let k_det = 1e6;
    let k_stoch = k_det / (sbml_units::AVOGADRO * volume);

    let build = |id: &str, k: f64| -> Model {
        let mut r = Reaction::new("bind");
        r.reactants = vec![SpeciesReference::new("A"), SpeciesReference::new("B")];
        r.products = vec![SpeciesReference::new("AB")];
        let mut kl = KineticLaw::new(sbml_math::infix::parse("k*A*B").unwrap());
        kl.parameters.push(Parameter::new("k", k));
        r.kinetic_law = Some(kl);
        ModelBuilder::new(id)
            .compartment("cell", volume)
            .species("A", 100.0)
            .species("B", 100.0)
            .species("AB", 0.0)
            .reaction_full(r)
            .build()
    };
    let m1 = build("det", k_det);
    let m2 = build("stoch", k_stoch);
    let result = heavy().compose(&m1, &m2);
    assert_eq!(result.model.reactions.len(), 1);
    assert_eq!(result.log.conflict_count(), 0, "{}", result.log.to_text());
    let warnings: Vec<_> = result.log.of_kind(EventKind::Warning).collect();
    assert!(
        warnings.iter().any(|w| w.detail.contains("Fig. 6")),
        "unit reconciliation logged: {}",
        result.log.to_text()
    );
}

#[test]
fn empty_model_shortcuts() {
    let a = fig1a();
    let empty = Model::new("empty");
    let left = heavy().compose(&empty, &a);
    assert_eq!(left.model.species.len(), 3);
    let right = heavy().compose(&a, &empty);
    assert_eq!(right.model, a);
}

#[test]
fn compose_many_folds_a_library() {
    let composer = heavy();
    let chain: Vec<Model> = (0..5)
        .map(|i| {
            let s_in = format!("S{i}");
            let s_out = format!("S{}", i + 1);
            let k = format!("k{i}");
            let r = format!("r{i}");
            ModelBuilder::new(format!("step{i}"))
                .compartment("cell", 1.0)
                .species(&s_in, if i == 0 { 100.0 } else { 0.0 })
                .species(&s_out, 0.0)
                .parameter(&k, 0.1)
                .reaction(&r, &[s_in.as_str()], &[s_out.as_str()], &format!("{k}*{s_in}"))
                .build()
        })
        .collect();
    let result = compose_many(&composer, &chain);
    assert_eq!(result.model.species.len(), 6, "S0..S5 chained");
    assert_eq!(result.model.reactions.len(), 5);
    assert_eq!(result.log.conflict_count(), 0);

    // The composed pathway is a valid model.
    let issues = sbml_model::validate(&result.model);
    assert!(
        issues.iter().all(|i| i.severity != sbml_model::Severity::Error),
        "{issues:?}"
    );
}

#[test]
fn composed_model_is_always_valid_sbml() {
    let a = fig1a();
    let b = ModelBuilder::new("other")
        .compartment("cell", 1.0)
        .species("C", 0.0)
        .species("D", 0.0)
        .parameter("k4", 0.4)
        .reaction("r4", &["C"], &["D"], "k4*C")
        .build();
    let result = heavy().compose(&a, &b);
    let issues = sbml_model::validate(&result.model);
    assert!(
        issues.iter().all(|i| i.severity != sbml_model::Severity::Error),
        "{issues:?}"
    );
    // And it survives an SBML round trip.
    let xml = sbml_model::write_sbml(&result.model);
    let back = sbml_model::parse_sbml(&xml).unwrap();
    assert_eq!(back, result.model);
}

#[test]
fn no_semantics_requires_exact_ids() {
    let m1 = ModelBuilder::new("m1")
        .compartment("cell", 1.0)
        .species_named("glc", "glucose", 5.0)
        .build();
    let m2 = ModelBuilder::new("m2")
        .compartment("cell", 1.0)
        .species_named("sugar", "dextrose", 5.0)
        .build();
    let none = Composer::new(ComposeOptions::none());
    let result = none.compose(&m1, &m2);
    assert_eq!(result.model.species.len(), 2, "no semantics: ids differ, no match");
}

#[test]
fn index_kinds_produce_identical_results() {
    use sbml_compose::IndexKind;
    let a = fig1a();
    let b = ModelBuilder::new("b")
        .compartment("cell", 1.0)
        .species("B", 0.0)
        .species("Z", 4.0)
        .parameter("k9", 0.9)
        .reaction("rz", &["B"], &["Z"], "k9*B")
        .build();
    let baseline = heavy().compose(&a, &b).model;
    for kind in [IndexKind::BTree, IndexKind::LinearScan] {
        let alt = Composer::new(ComposeOptions::default().with_index(kind)).compose(&a, &b).model;
        assert_eq!(alt, baseline, "{kind:?} must not change the result");
    }
}

#[test]
fn pattern_cache_toggle_produces_identical_results() {
    let a = fig1a();
    let mut b = fig1a();
    b.reactions[0].id = "renamed_r1".into();
    let with_cache = heavy().compose(&a, &b).model;
    let without =
        Composer::new(ComposeOptions::default().with_pattern_cache(false)).compose(&a, &b).model;
    assert_eq!(with_cache, without);
}
